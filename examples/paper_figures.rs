//! Reproduces the paper's utility-vs-privacy comparison (Figures 4–7) at
//! example scale through the `p2b::experiments` scenario matrix: every
//! workload × every privacy regime with the paper's LinUCB policy, printing
//! final utility and the achieved (ε, δ) per cell.
//!
//! Run with `cargo run --release --example paper_figures`. For the full
//! harness (policy axis, CSV/JSON emission, streaming cross-check) see
//! `cargo run --release -p p2b-bench --bin figures` and docs/REPRODUCING.md.

use p2b::experiments::{run_matrix, MatrixConfig, PolicyKind, PrivacyRegime, ScenarioKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = MatrixConfig::smoke().with_seed(2020);
    config.num_users = 160;
    let result = run_matrix(&config)?;

    println!("P2B scenario matrix — final cumulative reward per regime");
    println!(
        "({} users x {} rounds per cell, participation p = {}, k = {} codes, threshold l = {})\n",
        config.num_users,
        config.interactions_per_user,
        config.participation,
        config.num_codes,
        config.shuffler_threshold,
    );
    println!(
        "{:>20} {:>12} {:>14} {:>12} {:>22}",
        "scenario", "non-private", "LDP (RR)", "P2B", "P2B (eps, delta)"
    );
    for &scenario in &config.scenarios {
        let reward = |regime| {
            result
                .cell(scenario, regime, PolicyKind::LinUcb)
                .map_or(0.0, |c| c.final_cumulative_reward)
        };
        let p2b = result
            .cell(scenario, PrivacyRegime::P2bShuffle, PolicyKind::LinUcb)
            .expect("matrix covers every regime");
        println!(
            "{:>20} {:>12.1} {:>14.1} {:>12.1} {:>22}",
            scenario.key(),
            reward(PrivacyRegime::NonPrivate),
            reward(PrivacyRegime::LocalDp),
            reward(PrivacyRegime::P2bShuffle),
            format!(
                "({:.3}, {:.2e})",
                p2b.epsilon.unwrap_or(0.0),
                p2b.delta.unwrap_or(0.0)
            ),
        );
    }

    let synthetic = |regime| {
        result
            .cell(ScenarioKind::SyntheticGaussian, regime, PolicyKind::LinUcb)
            .expect("matrix covers every regime")
            .final_cumulative_reward
    };
    println!(
        "\nheadline (synthetic benchmark): P2B retains {:.0}% of the non-private utility; \
         randomized response retains {:.0}%",
        100.0 * synthetic(PrivacyRegime::P2bShuffle) / synthetic(PrivacyRegime::NonPrivate),
        100.0 * synthetic(PrivacyRegime::LocalDp) / synthetic(PrivacyRegime::NonPrivate),
    );
    Ok(())
}
