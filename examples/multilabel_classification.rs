//! Multi-label classification with bandit feedback (Section 5.2 / Figure 6),
//! on a MediaMill-like synthetic dataset: 70 % of the agents train and share,
//! the remaining 30 % are test agents whose accuracy is reported.
//!
//! ```bash
//! cargo run --release --example multilabel_classification
//! ```

use p2b::datasets::MultiLabelDataset;
use p2b::sim::{run_logged_experiment, LoggedExperimentConfig, Regime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_agents = 100;
    let interactions_sweep = [20usize, 50, 100];
    let max_samples = *interactions_sweep.iter().max().unwrap();

    let mut rng = StdRng::seed_from_u64(6);
    let dataset = MultiLabelDataset::mediamill_like(num_agents * max_samples, &mut rng)?;
    println!(
        "MediaMill-like dataset: {} instances, d = {}, A = {} labels",
        dataset.len(),
        dataset.context_dimension(),
        dataset.num_labels()
    );

    println!(
        "\n{:>14} {:>10} {:>20} {:>20}",
        "interactions", "cold", "warm non-private", "warm private (P2B)"
    );
    for &samples_per_agent in &interactions_sweep {
        let agents = dataset.split_agents(num_agents, samples_per_agent, &mut rng)?;
        let mut row = Vec::new();
        for regime in Regime::ALL {
            let config = LoggedExperimentConfig::new(
                regime,
                dataset.context_dimension(),
                dataset.num_labels(),
            )
            .with_num_codes(32)
            .with_shuffler_threshold(5)
            .with_seed(61);
            let outcome = run_logged_experiment(&agents, config)?;
            row.push(outcome.average_reward);
        }
        println!(
            "{:>14} {:>10.4} {:>20.4} {:>20.4}",
            samples_per_agent, row[0], row[1], row[2]
        );
    }
    println!(
        "\nexpected shape (paper Figure 6): warm regimes reach high accuracy with few local \
         interactions, cold agents catch up only slowly; the private/non-private gap is small."
    );
    Ok(())
}
