//! A scaled-down version of the paper's synthetic preference benchmark
//! (Section 5.1 / Figure 4): average reward of the three regimes as the user
//! population grows.
//!
//! ```bash
//! cargo run --release --example synthetic_benchmark
//! ```

use p2b::datasets::SyntheticConfig;
use p2b::sim::{run_synthetic_population, PopulationConfig, Regime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = SyntheticConfig::new(10, 20); // d = 10, A = 20, beta = 0.1
    let populations = [100usize, 300, 1_000, 3_000];

    println!("synthetic preference benchmark: d = 10, A = 20, T = 10 interactions per user");
    println!(
        "{:>10} {:>10} {:>20} {:>20}",
        "users", "cold", "warm non-private", "warm private (P2B)"
    );
    for &num_users in &populations {
        let mut row = Vec::new();
        for regime in Regime::ALL {
            let config = PopulationConfig::new(regime, num_users)
                .with_num_codes(256)
                .with_encoder_corpus_size(1024)
                .with_seed(42);
            let outcome = run_synthetic_population(env, config)?;
            row.push(outcome.average_reward);
        }
        println!(
            "{:>10} {:>10.4} {:>20.4} {:>20.4}",
            num_users, row[0], row[1], row[2]
        );
    }
    println!(
        "\nexpected shape (paper Figure 4): both warm regimes improve with the population size \
         and clearly beat the cold baseline; the private regime trails the non-private one."
    );
    Ok(())
}
