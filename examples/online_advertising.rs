//! Online advertising with a Criteo-like click log (Section 5.3 / Figure 7):
//! click-through rate of the three regimes, with the private agents using
//! k = 2⁵ encoder codes.
//!
//! ```bash
//! cargo run --release --example online_advertising
//! ```

use p2b::datasets::{CriteoConfig, CriteoLikeGenerator};
use p2b::sim::{run_logged_experiment, LoggedExperimentConfig, Regime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_agents = 120;
    let per_agent = 100;

    let mut rng = StdRng::seed_from_u64(70);
    let generator = CriteoLikeGenerator::new(CriteoConfig::new(), &mut rng)?;
    let needed = num_agents * per_agent;
    let mut impressions = generator.generate(needed * 2, &mut rng)?;
    while impressions.len() < needed {
        impressions.extend(generator.generate(needed, &mut rng)?);
    }
    let logged_ctr =
        impressions.iter().filter(|i| i.clicked()).count() as f64 / impressions.len() as f64;
    println!(
        "Criteo-like log: {} retained impressions, logged CTR {:.3}, d = 10, A = 40",
        impressions.len(),
        logged_ctr
    );

    let agents = CriteoLikeGenerator::split_agents(&impressions, num_agents, per_agent)?;
    println!("\n{:>22} {:>10}", "regime", "CTR");
    for regime in Regime::ALL {
        let config = LoggedExperimentConfig::new(regime, 10, 40)
            .with_num_codes(32)
            .with_shuffler_threshold(10)
            .with_seed(71);
        let outcome = run_logged_experiment(&agents, config)?;
        println!(
            "{:>22} {:>10.4}",
            regime.to_string(),
            outcome.average_reward
        );
    }
    println!(
        "\nexpected shape (paper Figure 7): warm regimes beat the cold baseline, and for larger \
         numbers of local interactions the private agents can match or exceed the non-private \
         ones thanks to the smaller (clustered) context space."
    );
    Ok(())
}
