//! Privacy analysis walkthrough: Equation 3's ε(p) curve, the δ bound, the
//! effect of repeated reporting, and a comparison with a RAPPOR-style local
//! randomized-response baseline.
//!
//! ```bash
//! cargo run --example privacy_analysis
//! ```

use p2b::privacy::{
    amplified_delta, amplified_epsilon, epsilon_sweep, participation_for_epsilon, Participation,
    PrivacyAccountant, PrivacyGuarantee, RandomizedResponse,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 3: epsilon as a function of the participation probability.
    println!("epsilon as a function of participation probability p (Equation 3):");
    for point in epsilon_sweep(0.1, 0.9, 9)? {
        println!("  p = {:.1}  ->  epsilon = {:.4}", point.p, point.epsilon);
    }

    // The headline operating point and its delta.
    let p = Participation::new(0.5)?;
    let epsilon = amplified_epsilon(p, 0.0)?;
    println!("\nheadline operating point: p = 0.5, epsilon = {epsilon:.6} (ln 2)");
    for l in [5u64, 10, 20, 50] {
        println!(
            "  shuffler threshold l = {l:>2}: delta = {:.3e}",
            amplified_delta(p, l, 0.1)?
        );
    }

    // Inverse question: what participation achieves a target budget?
    for target in [0.25, 0.5, 1.0] {
        let p = participation_for_epsilon(target)?;
        println!(
            "  to get epsilon = {target:.2}, participate with p = {:.3}",
            p.value()
        );
    }

    // Sequential composition: an agent reporting r tuples spends r * epsilon.
    let per_report = PrivacyGuarantee::pure(epsilon)?;
    let mut accountant = PrivacyAccountant::with_budget(PrivacyGuarantee::pure(3.0)?);
    let mut reports = 0;
    while accountant.spend(per_report, "report").is_ok() {
        reports += 1;
    }
    println!(
        "\nwith a total budget of epsilon = 3.0 an agent can afford {reports} reports \
         (spent {:.3})",
        accountant.total().epsilon()
    );

    // RAPPOR-style local baseline: same epsilon, but the report itself is noisy.
    let rr = RandomizedResponse::new(40, epsilon)?;
    println!(
        "\nlocal randomized response over 40 categories at the same epsilon keeps the \
         true value only {:.1}% of the time,",
        rr.truth_probability() * 100.0
    );
    let mut rng = StdRng::seed_from_u64(1);
    let reports: Vec<usize> = (0..20_000)
        .map(|i| {
            rr.randomize(if i % 5 == 0 { 7 } else { 3 }, &mut rng)
                .unwrap()
        })
        .collect();
    let estimate = rr.estimate_frequencies(&reports);
    println!(
        "which is only useful for aggregate statistics (estimated frequency of category 3: \
         {:.3}, true value 0.8) — the motivation for P2B's shuffler-based design.",
        estimate[3]
    );
    Ok(())
}
