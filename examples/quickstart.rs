//! Quickstart: build a P2B system, run a handful of local agents, and print
//! the privacy guarantee and the central model's progress.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use p2b::core::{P2bConfig, P2bSystem};
use p2b::encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b::linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let dimension = 5;
    let num_actions = 8;

    // 1. Fit the context encoder on a public corpus of normalized contexts.
    let corpus: Vec<Vector> = (0..512)
        .map(|_| {
            let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
            Vector::from(raw)
                .normalized_l1()
                .expect("non-empty context")
        })
        .collect();
    let encoder = Arc::new(KMeansEncoder::fit(
        &corpus,
        KMeansConfig::new(16),
        &mut rng,
    )?);
    println!(
        "fitted a k-means encoder with {} codes (smallest cluster: {} samples)",
        encoder.num_codes(),
        encoder.stats().min_cluster_size
    );

    // 2. Assemble the P2B system with the paper's defaults (p = 0.5, T = 10,
    //    shuffler threshold 10, alpha = 1).
    let config = P2bConfig::new(dimension, num_actions)
        .with_local_interactions(5)
        .with_shuffler_threshold(3);
    let mut system = P2bSystem::new(config, encoder)?;
    println!(
        "differential privacy guarantee per report: {}",
        system.privacy_guarantee()?
    );

    // 3. Simulate a population: the "true" best action is the index of the
    //    largest context entry, modulo the action count.
    let mut total_reward = 0.0;
    let mut interactions = 0u64;
    for _ in 0..200 {
        let mut agent = system.make_agent(&mut rng)?;
        for _ in 0..5 {
            let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
            let context = Vector::from(raw).normalized_l1()?;
            let best = context.argmax().unwrap_or(0) % num_actions;
            let action = agent.select_action(&context, &mut rng)?;
            let reward = if action.index() == best { 1.0 } else { 0.0 };
            agent.observe_reward(&context, action, reward, &mut rng)?;
            total_reward += reward;
            interactions += 1;
        }
        system.collect_from(&mut agent);
        if system.pending_reports() >= 50 {
            let stats = system.flush_round(&mut rng)?;
            println!(
                "shuffling round: received {}, released {}, dropped {} (threshold {})",
                stats.received,
                stats.released,
                stats.dropped,
                system.config().shuffler_threshold
            );
        }
    }
    let stats = system.flush_round(&mut rng)?;
    println!(
        "final round: received {}, released {}, dropped {}",
        stats.received, stats.released, stats.dropped
    );
    println!(
        "population average reward: {:.3} over {} interactions",
        total_reward / interactions as f64,
        interactions
    );
    println!(
        "central model has absorbed {} anonymous reports",
        system.server().ingested_reports()
    );
    Ok(())
}
