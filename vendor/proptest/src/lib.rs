//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the P2B workspace's property tests use: the
//! [`strategy::Strategy`] trait over ranges, tuples, [`strategy::Just`],
//! `prop::collection::vec`, [`arbitrary::any`], `prop_oneof!`, `prop_map`,
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: every test function draws its cases from a [`rand::rngs::StdRng`]
//! seeded from the test's own name, so runs are fully deterministic.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),* $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
    );
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A fixed or bounded collection size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` may be a fixed `usize` or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A deterministic generator seeded from the test's name, so every run
    /// of the suite explores the same cases.
    #[must_use]
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// The `prop::` facade module (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Common imports for property tests.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body over deterministically
/// sampled values of its `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __proptest_rng =
                    $crate::test_runner::deterministic_rng(stringify!($name));
                for __proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the assumption fails. Expands to a
/// `continue` of the case loop the `proptest!` macro generates, so it is
/// only valid directly inside a property-test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::deterministic_rng("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(0.5f64..1.5), &mut rng);
            assert!((0.5..1.5).contains(&x));
            let n = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_honors_sizes() {
        let mut rng = crate::test_runner::deterministic_rng("vec");
        for _ in 0..200 {
            let fixed = Strategy::generate(&prop::collection::vec(0u32..5, 4), &mut rng);
            assert_eq!(fixed.len(), 4);
            let ranged = Strategy::generate(&prop::collection::vec(0u32..5, 1..6), &mut rng);
            assert!((1..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::test_runner::deterministic_rng("oneof");
        let strategy = prop_oneof![Just(1u32), Just(2u32)].prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself drives tuples and `any`.
        #[test]
        fn macro_generates_tuples(pair in (0u32..4, 0u32..4), seed in any::<u64>()) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            let _ = seed;
        }
    }
}
