//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize`, and the `criterion_group!`
//! / `criterion_main!` macros — with a simple mean-wall-clock measurement
//! instead of criterion's statistical machinery. Good enough to keep the
//! `cargo bench` trajectory compiling and producing comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API parity and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Measures closures passed by the benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations after a short
    /// warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERATIONS {
            let _ = black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERATIONS {
            let _ = black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = MEASURE_ITERATIONS;
    }

    /// Times `routine` over freshly set-up inputs; `setup` time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERATIONS.min(3) {
            let input = setup();
            let _ = black_box(routine(input));
        }
        let mut elapsed = Duration::ZERO;
        for _ in 0..MEASURE_ITERATIONS {
            let input = setup();
            let start = Instant::now();
            let _ = black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = MEASURE_ITERATIONS;
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name}: no measurement");
            return;
        }
        let nanos = self.elapsed.as_nanos() / u128::from(self.iterations);
        println!("{name}: {nanos} ns/iter ({} iterations)", self.iterations);
    }
}

const WARMUP_ITERATIONS: u64 = 10;
const MEASURE_ITERATIONS: u64 = 100;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count; accepted for API parity and ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time; accepted for API parity and ignored.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// An identity function that hides a value from the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion;
        let mut calls = 0u64;
        criterion.bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, WARMUP_ITERATIONS + MEASURE_ITERATIONS);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut criterion = Criterion;
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| total += u64::from(x));
        });
        group.bench_with_input(BenchmarkId::new("named", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(total > 0);
    }
}
