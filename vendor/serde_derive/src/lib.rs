//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, which are
//! unavailable offline). Supports the shapes used across the P2B workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype-style: one field serializes transparently,
//!   larger tuples as arrays),
//! * fieldless enums (serialized as the variant-name string).
//!
//! Generics and data-carrying enum variants produce a `compile_error!` with
//! a clear message rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Named { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    Tuple { name: String, arity: usize },
    /// Unit struct.
    Unit { name: String },
    /// Fieldless enum.
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Splits the token-trees of a brace/paren group body at top-level commas,
/// treating `<`/`>` puncts as nesting so commas inside generics don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tree in tokens {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tree.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Drops leading attribute pairs (`#` punct + bracket group) from a chunk.
fn strip_attributes(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut rest = chunk;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(g), tail @ ..]
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                rest = tail;
            }
            _ => return rest,
        }
    }
}

/// The field name: the ident immediately preceding the first top-level `:`.
fn named_field(chunk: &[TokenTree]) -> Option<String> {
    let chunk = strip_attributes(chunk);
    let mut previous: Option<String> = None;
    for tree in chunk {
        match tree {
            TokenTree::Punct(p) if p.as_char() == ':' => return previous,
            TokenTree::Ident(ident) => previous = Some(ident.to_string()),
            _ => previous = None,
        }
    }
    None
}

/// The variant name: the first ident of the chunk. Rejects data-carrying
/// variants (ident followed by a paren/brace group).
fn enum_variant(chunk: &[TokenTree]) -> Result<String, String> {
    let chunk = strip_attributes(chunk);
    match chunk {
        [TokenTree::Ident(ident)] => Ok(ident.to_string()),
        [TokenTree::Ident(ident), TokenTree::Punct(p), ..] if p.as_char() == '=' => {
            Ok(ident.to_string())
        }
        [TokenTree::Ident(ident), ..] => Err(format!(
            "serde stand-in derive: variant `{ident}` carries data, only fieldless enums are supported"
        )),
        _ => Err("serde stand-in derive: unparseable enum variant".to_owned()),
    }
}

fn parse_shape(input: &TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut index = 0;
    // Skip outer attributes and visibility to find `struct` / `enum`.
    let kind = loop {
        match tokens.get(index) {
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    index += 1;
                    break word;
                }
                index += 1;
            }
            Some(_) => index += 1,
            None => return Err("serde stand-in derive: no struct or enum found".to_owned()),
        }
    };
    let name = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("serde stand-in derive: missing type name".to_owned()),
    };
    index += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(index) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive: `{name}` is generic; only concrete types are supported"
            ));
        }
    }
    // Skip anything (e.g. `where` clauses don't occur on concrete types)
    // until the defining group or the `;` of a unit struct.
    let body = loop {
        match tokens.get(index) {
            Some(TokenTree::Group(group)) => break Some(group.clone()),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => index += 1,
            None => break None,
        }
    };
    match (kind.as_str(), body) {
        ("struct", None) => Ok(Shape::Unit { name }),
        ("struct", Some(group)) => {
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let chunks = split_top_level(&inner);
            match group.delimiter() {
                Delimiter::Brace => {
                    let fields: Option<Vec<String>> =
                        chunks.iter().map(|c| named_field(c)).collect();
                    fields
                        .map(|fields| Shape::Named { name, fields })
                        .ok_or_else(|| {
                            "serde stand-in derive: could not parse struct fields".to_owned()
                        })
                }
                Delimiter::Parenthesis => Ok(Shape::Tuple {
                    name,
                    arity: chunks.len(),
                }),
                _ => Err("serde stand-in derive: unexpected struct body".to_owned()),
            }
        }
        ("enum", Some(group)) => {
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let variants: Result<Vec<String>, String> = split_top_level(&inner)
                .iter()
                .map(|c| enum_variant(c))
                .collect();
            variants.map(|variants| Shape::Enum { name, variants })
        }
        _ => Err("serde stand-in derive: unsupported input".to_owned()),
    }
}

/// Derives `serde::Serialize` via the stand-in's `Value` model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(&input) {
        Ok(shape) => shape,
        Err(message) => return compile_error(&message),
    };
    let body = match &shape {
        Shape::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(::std::string::String::from(match self {{ {} }}))\n}}\n}}",
                arms.join(", ")
            )
        }
    };
    body.parse().unwrap()
}

/// Derives `serde::Deserialize` via the stand-in's `Value` model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(&input) {
        Ok(shape) => shape,
        Err(message) => return compile_error(&message),
    };
    let body = match &shape {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         value.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Object(_) => ::std::result::Result::Ok(Self {{ {} }}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"expected object for \", {name:?}))),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))\n}}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {arity} => \
                 ::std::result::Result::Ok(Self({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"expected array for \", {name:?}))),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok(Self)\n}}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"expected string for \", {name:?}))),\n\
                 }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    };
    body.parse().unwrap()
}
