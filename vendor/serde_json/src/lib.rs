//! Offline stand-in for `serde_json`: renders and parses the serde
//! stand-in's [`serde::Value`] model as real JSON text.
//!
//! Supports the API subset used by the workspace: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};

/// Serialization / parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite number.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite number.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, number: &Number) -> Result<(), Error> {
    match *number {
        Number::U64(n) => out.push_str(&n.to_string()),
        Number::I64(n) => out.push_str(&n.to_string()),
        Number::F64(n) => {
            if !n.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            if n.fract() == 0.0 && n.abs() < 1e15 {
                // Match serde_json's choice of emitting integral floats
                // with a trailing `.0` so the type is preserved on re-read.
                out.push_str(&format!("{n:.1}"));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert!(!from_str::<bool>("  false  ").unwrap());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\none \"quoted\" \\ tab\t".to_owned();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn vec_and_option_round_trip() {
        let xs: Vec<Option<f64>> = vec![Some(0.5), None, Some(-3.25)];
        let json = to_string_pretty(&xs).unwrap();
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), xs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
