//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the subset used by the P2B workspace: the [`Distribution`]
//! trait, [`StandardNormal`], and [`Normal`]. Gaussian variates come from the
//! Marsaglia polar method over the deterministic [`rand`] stand-in, so
//! sampled streams are reproducible for a given seed.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that generate values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; the second variate is discarded so sampling
        // is stateless and the output stream depends only on the rng state.
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => write!(f, "standard deviation is negative or not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] when `mean` is not finite or `std_dev` is
    /// negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
