//! Offline stand-in for the `rand` crate.
//!
//! The P2B build environment has no access to crates.io, so this crate
//! implements exactly the subset of the `rand 0.8` API the workspace uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64, so all
//! streams are fully deterministic for a given `u64` seed — which is exactly
//! what the workspace's golden regression tests rely on.

#![forbid(unsafe_code)]

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's raw bits.
///
/// Stands in for `rand::distributions::Standard` coverage of the primitive
/// types; `Rng::gen::<T>()` is bounded on this trait.
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl UniformSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Primitive types with a uniform-in-range sampler.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from the closed range `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = draw_below(rng, span);
                (low as i128 + value as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let value = draw_below(rng, span);
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` (`span > 0`) by rejection sampling, so the
/// distribution is exactly uniform rather than slightly biased by modulo.
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::from(u64::MAX) + 1;
    let limit = zone - zone % span;
    loop {
        let raw = u128::from(rng.next_u64());
        if raw < limit {
            return raw % span;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as UniformSample>::uniform_sample(rng);
                let value = low + (high - low) * unit;
                // Guard against rounding up to the excluded endpoint.
                if value < high { value } else { low }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit = <$t as UniformSample>::uniform_sample(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Seed type (kept for API parity; unused by the stand-in).
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_state(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    /// Trivial generators for testing.
    pub mod mock {
        use super::RngCore;

        /// A generator yielding an arithmetic sequence of `u64`s; useful for
        /// making randomized code paths fully predictable in unit tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts the sequence at `initial`, stepping by `increment`.
            #[must_use]
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                let result = self.value;
                self.value = self.value.wrapping_add(self.increment);
                result
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let equal = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(17);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x: f64 = dynamic.gen();
        assert!((0.0..1.0).contains(&x));
        assert!((0..10).contains(&dynamic.gen_range(0..10)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
