//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this stand-in routes everything
//! through an owned JSON-like [`Value`] model: [`Serialize`] converts a type
//! into a [`Value`], [`Deserialize`] reconstructs it. The companion
//! `serde_derive` proc-macro crate generates both impls for the plain
//! structs and fieldless enums used across the P2B workspace, and the
//! `serde_json` stand-in renders/parses `Value` as real JSON text.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value: the interchange model for the serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A JSON number, kept integer-exact when possible so that `u64`/`i64`
/// fields survive a round trip bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as `u64`, if integral and in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64`, if integral and in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::custom("usize out of range")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::custom("isize out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_exact() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
        let v = (-42i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -42);
    }

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Some(1.5).to_value()).unwrap(),
            Some(1.5)
        );
    }

    #[test]
    fn vec_round_trips() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(String::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::Number(Number::U64(300))).is_err());
    }
}
