//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel` with handles shared by reference
//! across scoped threads, so — unlike `std::sync::mpsc`, whose receiver is
//! `!Sync` — both endpoints here are `Send + Sync`. Two channel flavors are
//! provided, mirroring the real crate's API subset the workspace uses:
//!
//! * [`channel::unbounded`] — unlimited queue, `send` never blocks. Used for
//!   the fan-in stage of the sharded shuffler engine and by the legacy
//!   single-lane pipeline.
//! * [`channel::bounded`] — capacity-limited queue whose `send` blocks while
//!   the queue is full. This is the backpressure primitive: shard ingress
//!   queues use it so producers slow down instead of ballooning memory when
//!   a shard worker falls behind.
//!
//! The implementation is a plain `Mutex<VecDeque>` plus two `Condvar`s
//! (one for "data available", one for "space available"), which is all the
//! single-consumer pipeline stages need. [`channel::Receiver::recv_timeout`]
//! supports the engine's flush-interval trigger.

#![forbid(unsafe_code)]

/// Multi-producer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        available: Condvar,
        /// Signalled when the queue shrinks; only bounded senders wait on it.
        space: Condvar,
        /// `None` for unbounded channels, `Some(cap)` for bounded ones.
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived before the deadline; the channel is still open.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel. Clonable and `Sync`.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// On a [`bounded`] channel this blocks while the queue is at
        /// capacity — the backpressure contract: a slow consumer slows its
        /// producers down rather than letting the queue grow without limit.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back when the receiver
        /// has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if let Some(capacity) = self.inner.capacity {
                while state.receiver_alive && state.queue.len() >= capacity {
                    state = self.inner.space.wait(state).expect("channel poisoned");
                }
            }
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.available.notify_all();
            }
        }
    }

    /// The receiving half of an unbounded channel. `Sync`, single consumer
    /// by convention.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; `None` once the channel is empty
        /// and every sender has been dropped.
        fn recv_opt(&self) -> Option<T> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.space.notify_one();
                    return Some(value);
                }
                if state.senders == 0 {
                    return None;
                }
                state = self.inner.available.wait(state).expect("channel poisoned");
            }
        }

        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every sender
        /// has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.recv_opt().ok_or(RecvError)
        }

        /// Blocks until a value arrives or `timeout` elapses.
        ///
        /// The engine's flush-interval trigger is built on this: a worker
        /// waits one interval for input and flushes its partial batch when
        /// the wait times out.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes with the
        /// channel still open, [`RecvTimeoutError::Disconnected`] once the
        /// channel is empty and every sender has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .inner
                    .available
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// A blocking iterator that ends when the channel is disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking iterator over the values currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner
                .state
                .lock()
                .expect("channel poisoned")
                .receiver_alive = false;
            // Wake senders blocked on a full bounded queue so they observe
            // the disconnect instead of waiting forever.
            self.inner.space.notify_all();
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv_opt()
        }
    }

    /// Non-blocking iterator over queued values.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            let value = self
                .receiver
                .inner
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .pop_front();
            if value.is_some() {
                self.receiver.inner.space.notify_one();
            }
            value
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded multi-producer channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded multi-producer channel holding at most `capacity`
    /// queued values; [`Sender::send`] blocks while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero: the real crossbeam's zero-capacity
    /// rendezvous channel is not implemented by this stand-in.
    #[must_use]
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            capacity > 0,
            "zero-capacity rendezvous channels are not supported by the stand-in"
        );
        channel(Some(capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn multi_producer_delivery() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        tx.send(t * 25 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn endpoints_are_shareable_by_reference() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|scope| {
            let tx_ref = &tx;
            let rx_ref = &rx;
            scope.spawn(move || {
                for i in 0..10 {
                    tx_ref.send(i).unwrap();
                }
            });
            scope.spawn(move || {
                let mut seen = 0;
                while seen < 10 {
                    seen += rx_ref.try_iter().count();
                }
            });
        });
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_iter_ends_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let got: Vec<u8> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_send_blocks_until_space_is_freed() {
        let (tx, rx) = bounded::<usize>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        // The third send must block until the consumer makes room.
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        let mut got = Vec::new();
        for value in rx.iter() {
            got.push(value);
            // Slow consumer: the producer can never run more than
            // `capacity` ahead of us.
            std::thread::sleep(Duration::from_millis(1));
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_send_fails_after_receiver_drop_even_when_full() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(5));
        drop(rx);
        assert!(blocked.join().unwrap().is_err());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn bounded_rejects_zero_capacity() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(2)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(2)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(2)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_returns_disconnected_error() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(4).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(4));
        assert!(rx.recv().is_err());
    }
}
