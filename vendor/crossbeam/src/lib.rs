//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel::{unbounded, Sender, Receiver}`
//! with handles shared by reference across scoped threads, so — unlike
//! `std::sync::mpsc`, whose receiver is `!Sync` — both endpoints here are
//! `Send + Sync`. The implementation is a plain `Mutex<VecDeque>` plus a
//! `Condvar`, which is all the single-consumer pipeline needs.

#![forbid(unsafe_code)]

/// Multi-producer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of an unbounded channel. Clonable and `Sync`.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back when the receiver
        /// has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.available.notify_all();
            }
        }
    }

    /// The receiving half of an unbounded channel. `Sync`, single consumer
    /// by convention.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; `None` once the channel is empty
        /// and every sender has been dropped.
        fn recv_opt(&self) -> Option<T> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Some(value);
                }
                if state.senders == 0 {
                    return None;
                }
                state = self.inner.available.wait(state).expect("channel poisoned");
            }
        }

        /// A blocking iterator that ends when the channel is disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking iterator over the values currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner
                .state
                .lock()
                .expect("channel poisoned")
                .receiver_alive = false;
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv_opt()
        }
    }

    /// Non-blocking iterator over queued values.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver
                .inner
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .pop_front()
        }
    }

    /// Creates an unbounded multi-producer channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn multi_producer_delivery() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        tx.send(t * 25 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn endpoints_are_shareable_by_reference() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|scope| {
            let tx_ref = &tx;
            let rx_ref = &rx;
            scope.spawn(move || {
                for i in 0..10 {
                    tx_ref.send(i).unwrap();
                }
            });
            scope.spawn(move || {
                let mut seen = 0;
                while seen < 10 {
                    seen += rx_ref.try_iter().count();
                }
            });
        });
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_iter_ends_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let got: Vec<u8> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
