//! Enforces the zero-unwrap policy on `crates/shuffler/src` non-test code —
//! the same bar `crates/core` and `crates/linalg` hold by manual audit,
//! made mechanical: request-path code must surface typed
//! `ShufflerError`s, never panic. Test modules (everything at and below the
//! first `#[cfg(test)]` of a file) and comment/doc lines are exempt.

use std::fs;
use std::path::PathBuf;

/// Panic-path constructs forbidden outside test code. `.unwrap_or*` /
/// `.ok_or*` combinators are fine (they are the non-panicking
/// alternatives); the scan matches the exact panicking spellings.
const FORBIDDEN: &[&str] = &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

fn non_test_violations(source: &str) -> Vec<(usize, String)> {
    let mut violations = Vec::new();
    for (number, line) in source.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        if FORBIDDEN.iter().any(|needle| line.contains(needle)) {
            violations.push((number + 1, line.to_owned()));
        }
    }
    violations
}

#[test]
fn no_unwrap_or_expect_in_non_test_source() {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut entries: Vec<PathBuf> = fs::read_dir(&src)
        .expect("read src dir")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no sources found under {}", src.display());
    let mut report = String::new();
    for path in entries {
        let source = fs::read_to_string(&path).expect("read source file");
        for (line, text) in non_test_violations(&source) {
            report.push_str(&format!("{}:{line}: {}\n", path.display(), text.trim()));
        }
    }
    assert!(
        report.is_empty(),
        "panic-path constructs in non-test shuffler code (convert to typed \
         ShufflerError returns):\n{report}"
    );
}

#[test]
fn scanner_catches_the_constructs_it_claims_to() {
    let sample = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }";
    let violations = non_test_violations(sample);
    assert_eq!(violations.len(), 1, "test module is exempt, body is not");
    assert_eq!(violations[0].0, 1);
    assert!(non_test_violations("// x.unwrap()\n/// y.expect(\"\")").is_empty());
    assert!(non_test_violations("let v = x.unwrap_or(0);").is_empty());
}
