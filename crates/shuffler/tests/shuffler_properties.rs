//! Property-based tests for the shuffler: the crowd-blending threshold must
//! hold for every released batch, no matter the input.

use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig, ShufflerPipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn batch_strategy() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0usize..10, 0usize..5, 0.0f64..1.0), 0..120)
}

proptest! {
    /// Every code present in the released batch appears at least `threshold`
    /// times, and no report is invented (released ⊆ received as a multiset).
    #[test]
    fn released_codes_meet_the_threshold(
        raw in batch_strategy(),
        threshold in 1usize..8,
        seed in any::<u64>(),
    ) {
        let shuffler = Shuffler::new(ShufflerConfig::new(threshold)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<RawReport> = raw
            .iter()
            .enumerate()
            .map(|(i, &(code, action, reward))| {
                RawReport::with_timestamp(format!("agent-{i}"), i as u64,
                    EncodedReport::new(code, action, reward).unwrap())
            })
            .collect();
        let input_codes: HashMap<usize, usize> = reports.iter().fold(HashMap::new(), |mut m, r| {
            *m.entry(r.payload().code()).or_insert(0) += 1;
            m
        });

        let out = shuffler.process(reports, &mut rng);

        let released_codes: HashMap<usize, usize> = out.reports().iter().fold(HashMap::new(), |mut m, r| {
            *m.entry(r.code()).or_insert(0) += 1;
            m
        });
        for (&code, &count) in &released_codes {
            prop_assert!(count >= threshold, "code {code} released with only {count} copies");
            // Releases must be exactly the received copies of that code.
            prop_assert_eq!(count, input_codes[&code]);
        }
        // Dropped + released = received.
        prop_assert_eq!(out.stats().released + out.stats().dropped, out.stats().received);
    }

    /// The pipeline releases exactly the same multiset of payloads as a
    /// sequence of synchronous shufflers applied to the same batches when the
    /// threshold is 1 (nothing dropped).
    #[test]
    fn pipeline_conserves_reports_at_threshold_one(
        raw in prop::collection::vec((0usize..6, 0usize..3), 1..60),
        batch_size in 1usize..16,
        seed in any::<u64>(),
    ) {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), batch_size).unwrap();
        let handle = pipeline.spawn(seed);
        for &(code, action) in &raw {
            handle.submit(RawReport::new("a", EncodedReport::new(code, action, 1.0).unwrap())).unwrap();
        }
        let batches = handle.finish();
        let total: usize = batches.iter().map(|b| b.reports().len()).sum();
        prop_assert_eq!(total, raw.len());

        let mut released: Vec<(usize, usize)> = batches
            .iter()
            .flat_map(|b| b.reports().iter().map(|r| (r.code(), r.action())))
            .collect();
        let mut expected = raw.clone();
        released.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(released, expected);
    }
}
