//! Satellite test for the streaming shuffler: many producer threads feed one
//! pipeline, and the released set must be exactly the threshold-surviving
//! multiset — no report lost, none duplicated, none leaked below threshold.

use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerPipeline};
use std::collections::HashMap;

fn raw(agent: usize, code: usize) -> RawReport {
    RawReport::new(
        format!("agent-{agent}"),
        EncodedReport::new(code, code % 3, 1.0).expect("valid report"),
    )
}

/// Multiset of code frequencies in a report list.
fn frequencies(codes: impl Iterator<Item = usize>) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    for code in codes {
        *map.entry(code).or_insert(0) += 1;
    }
    map
}

#[test]
fn concurrent_producers_release_exactly_the_surviving_set() {
    const PRODUCERS: usize = 8;
    const REPORTS_PER_PRODUCER: usize = 125;
    const TOTAL: usize = PRODUCERS * REPORTS_PER_PRODUCER;
    const THRESHOLD: usize = 100;

    // One batch spanning every submission, so thresholding applies to the
    // full multiset and the expected outcome is exact: each producer emits
    // codes 0..=4 with code weights 5:4:3:2:1 per block of 15.
    let code_of = |i: usize| -> usize {
        match i % 15 {
            0..=4 => 0,
            5..=8 => 1,
            9..=11 => 2,
            12..=13 => 3,
            _ => 4,
        }
    };

    let pipeline =
        ShufflerPipeline::new(ShufflerConfig::new(THRESHOLD), TOTAL).expect("valid pipeline");
    let handle = pipeline.spawn(99);
    std::thread::scope(|scope| {
        for producer in 0..PRODUCERS {
            let handle_ref = &handle;
            scope.spawn(move || {
                for i in 0..REPORTS_PER_PRODUCER {
                    handle_ref
                        .submit(raw(producer, code_of(i)))
                        .expect("pipeline accepts submissions while open");
                }
            });
        }
    });
    let batches = handle.finish();

    // All submissions land in a single full batch.
    assert_eq!(batches.len(), 1);
    let stats = batches[0].stats();
    assert_eq!(stats.received, TOTAL);
    assert_eq!(stats.released + stats.dropped, TOTAL);

    let submitted = frequencies((0..REPORTS_PER_PRODUCER).map(code_of))
        .into_iter()
        .map(|(code, count)| (code, count * PRODUCERS))
        .collect::<HashMap<_, _>>();
    let released = frequencies(batches[0].reports().iter().map(|r| r.code()));

    // Exactly the threshold-surviving codes are released, at exactly their
    // submitted multiplicities: nothing lost, nothing duplicated.
    for (&code, &count) in &submitted {
        if count >= THRESHOLD {
            assert_eq!(
                released.get(&code),
                Some(&count),
                "code {code} should survive with its exact multiplicity"
            );
        } else {
            assert!(
                !released.contains_key(&code),
                "code {code} (count {count}) must be suppressed below threshold {THRESHOLD}"
            );
        }
    }
    // And nothing not submitted ever appears.
    for code in released.keys() {
        assert!(submitted.contains_key(code), "unknown code {code} released");
    }
}

#[test]
fn per_batch_thresholding_still_conserves_received_counts() {
    // Smaller batches: batch boundaries depend on arrival interleaving, so
    // the released multiset is not deterministic — but conservation
    // (received = released + dropped, summed to the total) must still hold.
    const PRODUCERS: usize = 4;
    const REPORTS_PER_PRODUCER: usize = 100;

    let pipeline = ShufflerPipeline::new(ShufflerConfig::new(5), 32).expect("valid pipeline");
    let handle = pipeline.spawn(7);
    std::thread::scope(|scope| {
        for producer in 0..PRODUCERS {
            let handle_ref = &handle;
            scope.spawn(move || {
                for i in 0..REPORTS_PER_PRODUCER {
                    handle_ref
                        .submit(raw(producer, i % 7))
                        .expect("pipeline accepts submissions while open");
                }
            });
        }
    });
    let batches = handle.finish();
    let received: usize = batches.iter().map(|b| b.stats().received).sum();
    let accounted: usize = batches
        .iter()
        .map(|b| b.stats().released + b.stats().dropped)
        .sum();
    assert_eq!(received, PRODUCERS * REPORTS_PER_PRODUCER);
    assert_eq!(accounted, received);
    let released: usize = batches.iter().map(|b| b.reports().len()).sum();
    assert_eq!(
        released,
        batches.iter().map(|b| b.stats().released).sum::<usize>()
    );
}
