//! Concurrency exactness suite for the streaming shufflers: many producer
//! threads feed a pipeline or a sharded engine, and the released set must be
//! exactly the threshold-surviving multiset — no report lost, none
//! duplicated, none leaked below threshold. The engine tests repeat every
//! claim for shards ∈ {1, 2, 4}.

use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerEngine, ShufflerPipeline};
use std::collections::HashMap;

fn raw(agent: usize, code: usize) -> RawReport {
    RawReport::new(
        format!("agent-{agent}"),
        EncodedReport::new(code, code % 3, 1.0).expect("valid report"),
    )
}

/// Multiset of code frequencies in a report list.
fn frequencies(codes: impl Iterator<Item = usize>) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    for code in codes {
        *map.entry(code).or_insert(0) += 1;
    }
    map
}

#[test]
fn concurrent_producers_release_exactly_the_surviving_set() {
    const PRODUCERS: usize = 8;
    const REPORTS_PER_PRODUCER: usize = 125;
    const TOTAL: usize = PRODUCERS * REPORTS_PER_PRODUCER;
    const THRESHOLD: usize = 100;

    // One batch spanning every submission, so thresholding applies to the
    // full multiset and the expected outcome is exact: each producer emits
    // codes 0..=4 with code weights 5:4:3:2:1 per block of 15.
    let code_of = |i: usize| -> usize {
        match i % 15 {
            0..=4 => 0,
            5..=8 => 1,
            9..=11 => 2,
            12..=13 => 3,
            _ => 4,
        }
    };

    let pipeline =
        ShufflerPipeline::new(ShufflerConfig::new(THRESHOLD), TOTAL).expect("valid pipeline");
    let handle = pipeline.spawn(99);
    std::thread::scope(|scope| {
        for producer in 0..PRODUCERS {
            let handle_ref = &handle;
            scope.spawn(move || {
                for i in 0..REPORTS_PER_PRODUCER {
                    handle_ref
                        .submit(raw(producer, code_of(i)))
                        .expect("pipeline accepts submissions while open");
                }
            });
        }
    });
    let batches = handle.finish();

    // All submissions land in a single full batch.
    assert_eq!(batches.len(), 1);
    let stats = batches[0].stats();
    assert_eq!(stats.received, TOTAL);
    assert_eq!(stats.released + stats.dropped, TOTAL);

    let submitted = frequencies((0..REPORTS_PER_PRODUCER).map(code_of))
        .into_iter()
        .map(|(code, count)| (code, count * PRODUCERS))
        .collect::<HashMap<_, _>>();
    let released = frequencies(batches[0].reports().iter().map(|r| r.code()));

    // Exactly the threshold-surviving codes are released, at exactly their
    // submitted multiplicities: nothing lost, nothing duplicated.
    for (&code, &count) in &submitted {
        if count >= THRESHOLD {
            assert_eq!(
                released.get(&code),
                Some(&count),
                "code {code} should survive with its exact multiplicity"
            );
        } else {
            assert!(
                !released.contains_key(&code),
                "code {code} (count {count}) must be suppressed below threshold {THRESHOLD}"
            );
        }
    }
    // And nothing not submitted ever appears.
    for code in released.keys() {
        assert!(submitted.contains_key(code), "unknown code {code} released");
    }
}

#[test]
fn per_batch_thresholding_still_conserves_received_counts() {
    // Smaller batches: batch boundaries depend on arrival interleaving, so
    // the released multiset is not deterministic — but conservation
    // (received = released + dropped, summed to the total) must still hold.
    const PRODUCERS: usize = 4;
    const REPORTS_PER_PRODUCER: usize = 100;

    let pipeline = ShufflerPipeline::new(ShufflerConfig::new(5), 32).expect("valid pipeline");
    let handle = pipeline.spawn(7);
    std::thread::scope(|scope| {
        for producer in 0..PRODUCERS {
            let handle_ref = &handle;
            scope.spawn(move || {
                for i in 0..REPORTS_PER_PRODUCER {
                    handle_ref
                        .submit(raw(producer, i % 7))
                        .expect("pipeline accepts submissions while open");
                }
            });
        }
    });
    let batches = handle.finish();
    let received: usize = batches.iter().map(|b| b.stats().received).sum();
    let accounted: usize = batches
        .iter()
        .map(|b| b.stats().released + b.stats().dropped)
        .sum();
    assert_eq!(received, PRODUCERS * REPORTS_PER_PRODUCER);
    assert_eq!(accounted, received);
    let released: usize = batches.iter().map(|b| b.reports().len()).sum();
    assert_eq!(
        released,
        batches.iter().map(|b| b.stats().released).sum::<usize>()
    );
}

/// A report's full identity for multiset comparison: code, action and the
/// bit pattern of the reward.
fn identity(report: &EncodedReport) -> (usize, usize, u64) {
    (report.code(), report.action(), report.reward().to_bits())
}

#[test]
fn engine_delivers_the_exact_multiset_for_one_two_and_four_shards() {
    const PRODUCERS: usize = 8;
    const REPORTS_PER_PRODUCER: usize = 250;
    const TOTAL: usize = PRODUCERS * REPORTS_PER_PRODUCER;

    for shards in [1usize, 2, 4] {
        // Threshold 1: nothing may be suppressed, so the delivered multiset
        // must equal the submitted multiset exactly — across shard splits,
        // within-shard shuffles, the fan-in merge and re-batching.
        let engine = ShufflerEngine::builder(ShufflerConfig::new(1))
            .shards(shards)
            .batch_size(64)
            .build()
            .expect("valid engine");
        let handle = engine.spawn(2024);

        let mut submitted: HashMap<(usize, usize, u64), usize> = HashMap::new();
        for producer in 0..PRODUCERS {
            for i in 0..REPORTS_PER_PRODUCER {
                let global = producer * REPORTS_PER_PRODUCER + i;
                let report =
                    EncodedReport::new(global % 13, global % 3, f64::from((global % 2) as u8))
                        .expect("valid report");
                *submitted.entry(identity(&report)).or_insert(0) += 1;
            }
        }

        std::thread::scope(|scope| {
            for producer in 0..PRODUCERS {
                let handle_ref = &handle;
                scope.spawn(move || {
                    for i in 0..REPORTS_PER_PRODUCER {
                        let global = producer * REPORTS_PER_PRODUCER + i;
                        let report = EncodedReport::new(
                            global % 13,
                            global % 3,
                            f64::from((global % 2) as u8),
                        )
                        .expect("valid report");
                        handle_ref
                            .submit(RawReport::new(format!("agent-{producer}"), report))
                            .expect("engine accepts submissions while open");
                    }
                });
            }
        });
        let output = handle.finish();

        let mut delivered: HashMap<(usize, usize, u64), usize> = HashMap::new();
        let mut received = 0;
        for batch in &output.batches {
            received += batch.batch.stats().received;
            assert_eq!(batch.batch.stats().dropped, 0, "threshold 1 drops nothing");
            for report in batch.batch.reports() {
                *delivered.entry(identity(report)).or_insert(0) += 1;
            }
        }
        assert_eq!(received, TOTAL, "shards={shards}");
        assert_eq!(
            delivered, submitted,
            "delivered multiset must equal submitted multiset at shards={shards}"
        );
        // Merged batches have the configured exact size, final flush aside.
        for batch in &output.batches[..output.batches.len() - 1] {
            assert_eq!(batch.batch.stats().received, 64, "shards={shards}");
        }
    }
}

#[test]
fn engine_thresholding_over_one_merged_batch_is_exact_per_shard_count() {
    const PRODUCERS: usize = 4;
    const REPORTS_PER_PRODUCER: usize = 150;
    const TOTAL: usize = PRODUCERS * REPORTS_PER_PRODUCER;
    const THRESHOLD: usize = 100;

    // Same weighted code mix as the pipeline test: per block of 15, codes
    // 0..=4 with weights 5:4:3:2:1, so global counts are exactly known.
    let code_of = |i: usize| -> usize {
        match i % 15 {
            0..=4 => 0,
            5..=8 => 1,
            9..=11 => 2,
            12..=13 => 3,
            _ => 4,
        }
    };

    for shards in [1usize, 2, 4] {
        // One merged batch spanning every submission: thresholding must act
        // on the *global* multiset even when codes are split across shards
        // (each shard alone sees far fewer than THRESHOLD copies).
        let engine = ShufflerEngine::builder(ShufflerConfig::new(THRESHOLD))
            .shards(shards)
            .batch_size(TOTAL)
            .build()
            .expect("valid engine");
        let handle = engine.spawn(7);
        std::thread::scope(|scope| {
            for producer in 0..PRODUCERS {
                let handle_ref = &handle;
                scope.spawn(move || {
                    for i in 0..REPORTS_PER_PRODUCER {
                        let report = EncodedReport::new(code_of(i), 0, 1.0).expect("valid");
                        handle_ref
                            .submit(RawReport::new(format!("agent-{producer}"), report))
                            .expect("engine accepts submissions while open");
                    }
                });
            }
        });
        let output = handle.finish();
        assert_eq!(output.batches.len(), 1, "shards={shards}");
        let batch = &output.batches[0].batch;
        assert_eq!(batch.stats().received, TOTAL);

        let submitted = frequencies((0..REPORTS_PER_PRODUCER).map(code_of))
            .into_iter()
            .map(|(code, count)| (code, count * PRODUCERS))
            .collect::<HashMap<_, _>>();
        let released = frequencies(batch.reports().iter().map(|r| r.code()));
        for (&code, &count) in &submitted {
            if count >= THRESHOLD {
                assert_eq!(
                    released.get(&code),
                    Some(&count),
                    "code {code} must survive with exact multiplicity at shards={shards}"
                );
            } else {
                assert!(
                    !released.contains_key(&code),
                    "code {code} (count {count}) must be suppressed at shards={shards}"
                );
            }
        }
        for code in released.keys() {
            assert!(submitted.contains_key(code), "unknown code {code} released");
        }
        assert!(batch.min_released_code_frequency() >= THRESHOLD);
    }
}
