//! The secure-aggregation shard engine: `k` workers, each folding only its
//! own additive-share stream.
//!
//! Where the [`ShufflerEngine`](crate::ShufflerEngine) trusts the shuffler
//! with plaintext reports (and buys privacy via anonymity + crowd
//! blending), the [`SecureAggEngine`] removes that trust for the
//! sufficient-statistics ingest path: a submitted contribution is
//! fixed-point encoded and additively secret-shared
//! ([`p2b_privacy::SecretSharer`]) **before** it leaves the submitting
//! side, and each aggregator shard receives — and folds — only its own
//! share stream:
//!
//! ```text
//!  agent leaf ──encode──▶ split ──share 0──▶ shard worker 0 ─┐
//!  [vec(xxᵀ)|r·x|1]        │    ──share 1──▶ shard worker 1 ─┼─▶ recombine
//!                          ⋮         ⋮               ⋮        │   (wrapping Σ)
//!                               ──share k-1▶ shard worker k-1┘      │
//!                                                                   ▼
//!                                                      exact plaintext sum
//! ```
//!
//! Each worker's accumulator is a uniformly-masked value that reveals
//! nothing in isolation; only the wrapping sum of all `k` accumulators
//! equals the plaintext total. Because wrapping `i128` addition is an
//! abelian group operation, the recombined sums are **bit-identical for
//! any shard count and any fold order** — the correctness bar the bench
//! stage and CI byte-diff pin at k ∈ {1, 2, 4}.
//!
//! See the [`p2b_privacy::SecretSharer`] docs for the mask construction
//! and the trust-model caveat (deterministic statistical masks standing in
//! for cryptographic pairwise PRGs).

use crate::ShufflerError;
use crossbeam::channel::{bounded, Receiver, Sender};
use p2b_privacy::{decode_fixed, encode_fixed, SecretSharer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

/// Builder for a [`SecureAggEngine`].
///
/// Obtained from [`SecureAggEngine::builder`]; the minimal spell is
/// `builder(arms, dimension).shards(k).build()`.
#[derive(Debug, Clone)]
pub struct SecureAggBuilder {
    arms: usize,
    dimension: usize,
    shards: usize,
    queue_capacity: usize,
}

impl SecureAggBuilder {
    fn new(arms: usize, dimension: usize) -> Self {
        Self {
            arms,
            dimension,
            shards: 1,
            queue_capacity: 1024,
        }
    }

    /// Number of aggregator shards `k` (default 1). Each shard owns one
    /// worker thread, one bounded share queue and one masked accumulator;
    /// the trust guarantee is that any `k − 1` of them together still see
    /// only uniform noise.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Capacity of each shard's bounded share queue (default 1024).
    /// [`SecureAggHandle::submit`] blocks while a target queue is full —
    /// the same backpressure contract as the shuffler engine.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Validates the configuration and produces the engine description.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidConfig`] when `arms`, `dimension`,
    /// `shards` or the queue capacity is zero — the degenerate
    /// configurations that would otherwise truncate or divide by zero at
    /// runtime.
    pub fn build(self) -> Result<SecureAggEngine, ShufflerError> {
        if self.arms == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "arms",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.dimension == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shards == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "shards",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "queue_capacity",
                message: "must be at least 1".to_owned(),
            });
        }
        // Construct the sharer here, where the error path already exists,
        // so `spawn` stays infallible (`shards ≥ 1` was just checked).
        let sharer = SecretSharer::new(0, self.shards).map_err(|e| {
            ShufflerError::InvalidConfig {
                parameter: "shards",
                message: e.to_string(),
            }
        })?;
        Ok(SecureAggEngine {
            arms: self.arms,
            dimension: self.dimension,
            shards: self.shards,
            queue_capacity: self.queue_capacity,
            sharer,
        })
    }
}

/// One shard's share of one per-arm contribution.
#[derive(Debug)]
struct ShareMessage {
    arm: usize,
    shares: Vec<i128>,
}

/// A `k`-shard secure-aggregation engine description (passive, like
/// [`ShufflerEngine`](crate::ShufflerEngine)); [`SecureAggEngine::spawn`]
/// starts the shard workers and returns a handle.
///
/// # Examples
///
/// ```
/// use p2b_shuffler::SecureAggEngine;
///
/// # fn main() -> Result<(), p2b_shuffler::ShufflerError> {
/// let engine = SecureAggEngine::builder(2, 3).shards(2).build()?;
/// let handle = engine.spawn(7);
/// handle.submit(0, &[1.0, 2.0, 1.0])?;
/// handle.submit(0, &[1.0, 0.0, 1.0])?;
/// handle.submit(1, &[0.5, 0.5, 1.0])?;
/// let output = handle.finish()?;
/// assert_eq!(output.contributions(), 3);
/// assert_eq!(output.decoded_arm(0)?, vec![2.0, 2.0, 2.0]);
/// assert_eq!(output.decoded_arm(1)?, vec![0.5, 0.5, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SecureAggEngine {
    arms: usize,
    dimension: usize,
    shards: usize,
    queue_capacity: usize,
    sharer: SecretSharer,
}

impl SecureAggEngine {
    /// Starts building an engine aggregating `arms` per-arm vectors of the
    /// given `dimension` (e.g. `d² + d + 1` for LinUCB sufficient
    /// statistics).
    #[must_use]
    pub fn builder(arms: usize, dimension: usize) -> SecureAggBuilder {
        SecureAggBuilder::new(arms, dimension)
    }

    /// The number of aggregator shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The per-arm vector dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The number of arms.
    #[must_use]
    pub fn arms(&self) -> usize {
        self.arms
    }

    /// Starts the `k` shard workers. `seed` drives the share-mask lanes;
    /// the **recombined** sums do not depend on it (masks cancel exactly),
    /// only the individual shares do.
    #[must_use]
    pub fn spawn(&self, seed: u64) -> SecureAggHandle {
        let mut txs = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = bounded::<ShareMessage>(self.queue_capacity);
            txs.push(tx);
            let arms = self.arms;
            let dimension = self.dimension;
            workers.push(std::thread::spawn(move || {
                run_shard_worker(&rx, arms, dimension)
            }));
        }
        SecureAggHandle {
            txs: Some(txs),
            counter: AtomicU64::new(0),
            sharer: self.sharer.reseeded(seed),
            arms: self.arms,
            dimension: self.dimension,
            workers,
        }
    }
}

/// One shard worker: folds its own share stream into a flat
/// `arms × dimension` masked accumulator and returns it on channel close.
fn run_shard_worker(rx: &Receiver<ShareMessage>, arms: usize, dimension: usize) -> Vec<i128> {
    let mut accumulator = vec![0i128; arms * dimension];
    for message in rx.iter() {
        let base = message.arm * dimension;
        for (slot, share) in accumulator[base..base + dimension]
            .iter_mut()
            .zip(&message.shares)
        {
            *slot = slot.wrapping_add(*share);
        }
    }
    accumulator
}

/// Handle to a running [`SecureAggEngine`].
///
/// `submit` may be called from any number of threads sharing the handle by
/// reference; the recombined output is independent of submission
/// interleaving (wrapping sums commute). Dropping the handle joins the
/// workers and discards their accumulators.
#[derive(Debug)]
pub struct SecureAggHandle {
    txs: Option<Vec<Sender<ShareMessage>>>,
    counter: AtomicU64,
    sharer: SecretSharer,
    arms: usize,
    dimension: usize,
    workers: Vec<JoinHandle<Vec<i128>>>,
}

impl SecureAggHandle {
    /// Splits one per-arm contribution into `k` shares and sends share `j`
    /// to shard worker `j`. The plaintext leaf never reaches any worker.
    ///
    /// Blocks while a target shard's bounded queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidReport`] when `arm` is out of range,
    /// `leaf` has the wrong dimension, or any coordinate is outside the
    /// fixed-point dynamic range (±[`p2b_privacy::FIXED_POINT_MAX_ABS`]);
    /// [`ShufflerError::PipelineClosed`] after [`Self::finish`].
    pub fn submit(&self, arm: usize, leaf: &[f64]) -> Result<(), ShufflerError> {
        let txs = self.txs.as_ref().ok_or(ShufflerError::PipelineClosed)?;
        if arm >= self.arms {
            return Err(ShufflerError::InvalidReport {
                message: format!("arm {arm} out of range (engine has {} arms)", self.arms),
            });
        }
        if leaf.len() != self.dimension {
            return Err(ShufflerError::InvalidReport {
                message: format!(
                    "leaf dimension mismatch: expected {}, got {}",
                    self.dimension,
                    leaf.len()
                ),
            });
        }
        // Encode every coordinate before claiming a counter slot, so a
        // rejected leaf neither consumes a mask lane nor counts as
        // submitted.
        let mut encoded = Vec::with_capacity(self.dimension);
        for &value in leaf {
            encoded.push(encode_fixed(value).map_err(|e| ShufflerError::InvalidReport {
                message: e.to_string(),
            })?);
        }
        let counter = self.counter.fetch_add(1, Ordering::Relaxed);
        let shards = txs.len();
        let mut messages: Vec<Vec<i128>> = (0..shards)
            .map(|_| vec![0i128; self.dimension])
            .collect();
        let mut shares = vec![0i128; shards];
        for (coord, &value) in encoded.iter().enumerate() {
            self.sharer
                .split_into(counter, coord, value, &mut shares)
                .map_err(|e| ShufflerError::InvalidReport {
                    message: e.to_string(),
                })?;
            for (message, &share) in messages.iter_mut().zip(&shares) {
                message[coord] = share;
            }
        }
        for (tx, shares) in txs.iter().zip(messages) {
            tx.send(ShareMessage { arm, shares })
                .map_err(|_| ShufflerError::PipelineClosed)?;
        }
        Ok(())
    }

    /// Number of contributions submitted through this handle so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Closes the share queues, joins the `k` workers and recombines their
    /// masked accumulators into the exact plaintext sums.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::PipelineClosed`] if a shard worker
    /// terminated abnormally (its accumulator is unrecoverable).
    pub fn finish(mut self) -> Result<SecureAggOutput, ShufflerError> {
        self.txs = None;
        let mut accumulators = Vec::with_capacity(self.workers.len());
        for worker in self.workers.drain(..) {
            let accumulator = worker.join().map_err(|_| ShufflerError::PipelineClosed)?;
            accumulators.push(accumulator);
        }
        let mut sums = vec![0i128; self.arms * self.dimension];
        for accumulator in &accumulators {
            for (sum, &value) in sums.iter_mut().zip(accumulator) {
                *sum = sum.wrapping_add(value);
            }
        }
        Ok(SecureAggOutput {
            arms: self.arms,
            dimension: self.dimension,
            contributions: self.counter.load(Ordering::Relaxed),
            sums,
        })
    }
}

impl Drop for SecureAggHandle {
    fn drop(&mut self) {
        self.txs = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The recombined result of a secure-aggregation run: exact plaintext
/// fixed-point sums, `arms × dimension`, equal bit for bit to what a
/// single trusted accumulator would have computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureAggOutput {
    arms: usize,
    dimension: usize,
    contributions: u64,
    sums: Vec<i128>,
}

impl SecureAggOutput {
    /// Number of contributions aggregated.
    #[must_use]
    pub fn contributions(&self) -> u64 {
        self.contributions
    }

    /// The per-arm vector dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The recombined fixed-point sums of one arm.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidReport`] for an out-of-range arm.
    pub fn arm_sums(&self, arm: usize) -> Result<&[i128], ShufflerError> {
        if arm >= self.arms {
            return Err(ShufflerError::InvalidReport {
                message: format!("arm {arm} out of range (output has {} arms)", self.arms),
            });
        }
        let base = arm * self.dimension;
        Ok(&self.sums[base..base + self.dimension])
    }

    /// The recombined sums of one arm decoded back to f64
    /// ([`p2b_privacy::decode_fixed`] per coordinate).
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidReport`] for an out-of-range arm.
    pub fn decoded_arm(&self, arm: usize) -> Result<Vec<f64>, ShufflerError> {
        Ok(self.arm_sums(arm)?.iter().copied().map(decode_fixed).collect())
    }

    /// FNV-1a digest over the recombined sums (little-endian bytes, arms in
    /// order). Because the sums are exact group elements, the digest is
    /// byte-identical across shard counts, fold orders and reruns — the
    /// value the bench stage asserts on in-process and CI byte-diffs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for value in &self.sums {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_privacy::FIXED_POINT_MAX_ABS;

    #[test]
    fn builder_validates_every_knob() {
        assert!(SecureAggEngine::builder(0, 3).build().is_err());
        assert!(SecureAggEngine::builder(2, 0).build().is_err());
        assert!(SecureAggEngine::builder(2, 3).shards(0).build().is_err());
        assert!(SecureAggEngine::builder(2, 3)
            .queue_capacity(0)
            .build()
            .is_err());
        assert!(SecureAggEngine::builder(2, 3).shards(4).build().is_ok());
    }

    #[test]
    fn submit_validates_arm_dimension_and_range() {
        let handle = SecureAggEngine::builder(2, 3)
            .shards(2)
            .build()
            .unwrap()
            .spawn(1);
        assert!(handle.submit(2, &[0.0; 3]).is_err(), "arm out of range");
        assert!(handle.submit(0, &[0.0; 2]).is_err(), "dimension mismatch");
        assert!(
            handle.submit(0, &[FIXED_POINT_MAX_ABS * 2.0, 0.0, 0.0]).is_err(),
            "out-of-range coordinate errors rather than wraps"
        );
        assert!(handle.submit(0, &[1.0, 2.0, 3.0]).is_ok());
        assert_eq!(handle.submitted(), 1);
    }

    #[test]
    fn recombined_sums_are_bit_identical_across_shard_counts() {
        let run = |shards: usize, seed: u64| {
            let handle = SecureAggEngine::builder(3, 4)
                .shards(shards)
                .build()
                .unwrap()
                .spawn(seed);
            for i in 0..50u32 {
                let arm = (i % 3) as usize;
                let x = f64::from(i) * 0.125 - 3.0;
                handle.submit(arm, &[x * x, x, -x, 1.0]).unwrap();
            }
            handle.finish().unwrap()
        };
        let reference = run(1, 11);
        for shards in [2usize, 4] {
            // Different seeds produce different masks, but masks cancel:
            // the recombined output is identical regardless.
            let output = run(shards, 997 * shards as u64);
            assert_eq!(output, reference, "shards={shards}");
            assert_eq!(output.digest(), reference.digest());
        }
    }

    #[test]
    fn single_shard_matches_plaintext_fixed_point_sums() {
        let handle = SecureAggEngine::builder(1, 2)
            .shards(1)
            .build()
            .unwrap()
            .spawn(5);
        handle.submit(0, &[1.5, 2.0]).unwrap();
        handle.submit(0, &[0.25, -1.0]).unwrap();
        let output = handle.finish().unwrap();
        assert_eq!(output.decoded_arm(0).unwrap(), vec![1.75, 1.0]);
        assert!(output.decoded_arm(1).is_err());
        assert!(output.arm_sums(1).is_err());
    }

    #[test]
    fn submissions_interleaved_across_threads_recombine_identically() {
        let sequential = {
            let handle = SecureAggEngine::builder(2, 2)
                .shards(2)
                .build()
                .unwrap()
                .spawn(9);
            for i in 0..200u32 {
                handle
                    .submit((i % 2) as usize, &[f64::from(i) * 0.5, 1.0])
                    .unwrap();
            }
            handle.finish().unwrap()
        };
        let threaded = {
            let handle = SecureAggEngine::builder(2, 2)
                .shards(2)
                .build()
                .unwrap()
                .spawn(31);
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let handle_ref = &handle;
                    scope.spawn(move || {
                        for i in (t * 50)..(t * 50 + 50) {
                            handle_ref
                                .submit((i % 2) as usize, &[f64::from(i) * 0.5, 1.0])
                                .unwrap();
                        }
                    });
                }
            });
            handle.finish().unwrap()
        };
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn empty_run_yields_zero_sums() {
        let output = SecureAggEngine::builder(2, 3)
            .shards(3)
            .build()
            .unwrap()
            .spawn(0)
            .finish()
            .unwrap();
        assert_eq!(output.contributions(), 0);
        assert_eq!(output.arm_sums(0).unwrap(), &[0i128; 3]);
        assert_eq!(output.arm_sums(1).unwrap(), &[0i128; 3]);
    }

    #[test]
    fn submit_after_finish_is_rejected_via_fresh_handle_semantics() {
        let engine = SecureAggEngine::builder(1, 1).shards(2).build().unwrap();
        let first = engine.spawn(1);
        first.submit(0, &[1.0]).unwrap();
        let _ = first.finish();
        let second = engine.spawn(2);
        second.submit(0, &[2.0]).unwrap();
        let output = second.finish().unwrap();
        assert_eq!(output.decoded_arm(0).unwrap(), vec![2.0]);
    }
}
