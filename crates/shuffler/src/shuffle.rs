//! The synchronous shuffler: anonymize, shuffle, threshold.

use crate::{EncodedReport, RawReport, ShufflerError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a [`Shuffler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShufflerConfig {
    /// Minimum number of occurrences of an encoded context code within a
    /// batch for its reports to be released (the crowd-blending `l`).
    pub threshold: usize,
}

impl ShufflerConfig {
    /// Creates a configuration with the given frequency threshold.
    #[must_use]
    pub fn new(threshold: usize) -> Self {
        Self { threshold }
    }

    fn validate(&self) -> Result<(), ShufflerError> {
        if self.threshold == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "threshold",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Statistics of one shuffling round, useful for experiments and auditing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShufflerStats {
    /// Reports received in the batch.
    pub received: usize,
    /// Reports released after thresholding.
    pub released: usize,
    /// Reports dropped because their code was below the threshold.
    pub dropped: usize,
    /// Number of distinct codes observed in the batch.
    pub distinct_codes: usize,
    /// Number of distinct codes that survived thresholding.
    pub released_codes: usize,
    /// Smallest per-code frequency among the released reports (0 when the
    /// batch released nothing) — the empirical crowd-blending `l` the batch
    /// actually achieved, never below the configured threshold.
    pub min_released_frequency: usize,
}

/// The output of one shuffling round: anonymous, order-randomized,
/// threshold-filtered reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffledBatch {
    reports: Vec<EncodedReport>,
    stats: ShufflerStats,
}

impl ShuffledBatch {
    /// The released reports, in shuffled order.
    #[must_use]
    pub fn reports(&self) -> &[EncodedReport] {
        &self.reports
    }

    /// Consumes the batch and returns the released reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<EncodedReport> {
        self.reports
    }

    /// Statistics of the round that produced this batch.
    #[must_use]
    pub fn stats(&self) -> ShufflerStats {
        self.stats
    }

    /// Smallest per-code frequency among the released reports; this is the
    /// empirical crowd-blending `l` actually achieved by the batch.
    /// Equivalent to [`ShufflerStats::min_released_frequency`], which is
    /// where the value is computed.
    #[must_use]
    pub fn min_released_code_frequency(&self) -> usize {
        self.stats.min_released_frequency
    }
}

/// The trusted shuffler of the ESA architecture.
///
/// See the [crate-level documentation](crate) for the three-step contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shuffler {
    config: ShufflerConfig,
}

impl Shuffler {
    /// Creates a shuffler.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidConfig`] when the threshold is zero.
    pub fn new(config: ShufflerConfig) -> Result<Self, ShufflerError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configured frequency threshold.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.config.threshold
    }

    /// Processes one batch of raw reports: strips metadata, shuffles the
    /// order and removes reports whose code appears fewer than
    /// `threshold` times in the batch.
    #[must_use]
    pub fn process<R: Rng + ?Sized>(&self, batch: Vec<RawReport>, rng: &mut R) -> ShuffledBatch {
        // 1. Anonymization: drop every byte of metadata.
        let anonymous: Vec<EncodedReport> =
            batch.into_iter().map(RawReport::into_anonymous).collect();
        shuffle_and_threshold(self.config.threshold, anonymous, rng)
    }
}

/// The shared post-anonymization core of the synchronous [`Shuffler`] and
/// the sharded engine's merge stage: uniform shuffle followed by the
/// crowd-blending threshold. The batch's empirical crowd size is available
/// through [`ShuffledBatch::min_released_code_frequency`].
pub(crate) fn shuffle_and_threshold<R: Rng + ?Sized>(
    threshold: usize,
    mut anonymous: Vec<EncodedReport>,
    rng: &mut R,
) -> ShuffledBatch {
    let received = anonymous.len();

    // 2. Shuffling: uniformly random permutation.
    anonymous.shuffle(rng);

    // 3. Thresholding: count code frequencies, then retain codes that
    //    clear the crowd-blending threshold.
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for report in &anonymous {
        *counts.entry(report.code()).or_insert(0) += 1;
    }
    let distinct_codes = counts.len();
    let released: Vec<EncodedReport> = anonymous
        .into_iter()
        .filter(|r| counts[&r.code()] >= threshold)
        .collect();
    let released_codes = counts.values().filter(|&&c| c >= threshold).count();
    let min_released_frequency = counts
        .values()
        .filter(|&&c| c >= threshold)
        .min()
        .copied()
        .unwrap_or(0);

    let stats = ShufflerStats {
        received,
        released: released.len(),
        dropped: received - released.len(),
        distinct_codes,
        released_codes,
        min_released_frequency,
    };
    ShuffledBatch {
        reports: released,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn raw(sender: &str, code: usize, reward: f64) -> RawReport {
        RawReport::new(sender, EncodedReport::new(code, 0, reward).unwrap())
    }

    #[test]
    fn rejects_zero_threshold() {
        assert!(Shuffler::new(ShufflerConfig::new(0)).is_err());
        assert!(Shuffler::new(ShufflerConfig::new(1)).is_ok());
    }

    #[test]
    fn thresholding_removes_rare_codes() {
        let shuffler = Shuffler::new(ShufflerConfig::new(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = Vec::new();
        // Code 0 appears 5 times, code 1 twice, code 2 three times.
        for i in 0..5 {
            batch.push(raw(&format!("a{i}"), 0, 1.0));
        }
        for i in 0..2 {
            batch.push(raw(&format!("b{i}"), 1, 1.0));
        }
        for i in 0..3 {
            batch.push(raw(&format!("c{i}"), 2, 1.0));
        }
        let out = shuffler.process(batch, &mut rng);
        assert_eq!(out.stats().received, 10);
        assert_eq!(out.stats().released, 8);
        assert_eq!(out.stats().dropped, 2);
        assert_eq!(out.stats().distinct_codes, 3);
        assert_eq!(out.stats().released_codes, 2);
        assert!(out.reports().iter().all(|r| r.code() != 1));
        assert!(out.min_released_code_frequency() >= 3);
    }

    #[test]
    fn threshold_one_releases_everything() {
        let shuffler = Shuffler::new(ShufflerConfig::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let batch: Vec<RawReport> = (0..10).map(|i| raw(&format!("a{i}"), i, 0.5)).collect();
        let out = shuffler.process(batch, &mut rng);
        assert_eq!(out.reports().len(), 10);
        assert_eq!(out.stats().dropped, 0);
    }

    #[test]
    fn empty_batch_is_handled() {
        let shuffler = Shuffler::new(ShufflerConfig::new(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = shuffler.process(Vec::new(), &mut rng);
        assert_eq!(out.reports().len(), 0);
        assert_eq!(out.stats(), ShufflerStats::default());
        assert_eq!(out.min_released_code_frequency(), 0);
    }

    #[test]
    fn shuffling_changes_order_but_preserves_multiset() {
        let shuffler = Shuffler::new(ShufflerConfig::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let batch: Vec<RawReport> = (0..200)
            .map(|i| raw(&format!("a{i}"), i % 4, (i % 2) as f64))
            .collect();
        let original_codes: Vec<usize> = batch.iter().map(|r| r.payload().code()).collect();
        let out = shuffler.process(batch, &mut rng);
        let shuffled_codes: Vec<usize> = out.reports().iter().map(|r| r.code()).collect();
        assert_ne!(original_codes, shuffled_codes, "order should be randomized");
        let mut a = original_codes.clone();
        let mut b = shuffled_codes.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "no report may be lost or duplicated at threshold 1");
    }

    #[test]
    fn released_batches_satisfy_the_crowd_blending_threshold() {
        let threshold = 4;
        let shuffler = Shuffler::new(ShufflerConfig::new(threshold)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let batch: Vec<RawReport> = (0..100)
            .map(|i| raw(&format!("a{i}"), i % 13, 1.0))
            .collect();
        let out = shuffler.process(batch, &mut rng);
        if !out.reports().is_empty() {
            assert!(out.min_released_code_frequency() >= threshold);
        }
    }

    #[test]
    fn batch_output_contains_no_metadata_strings() {
        let shuffler = Shuffler::new(ShufflerConfig::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let batch = vec![raw("very-identifying-sender", 0, 1.0)];
        let out = shuffler.process(batch, &mut rng);
        let debug = format!("{out:?}");
        assert!(!debug.contains("very-identifying-sender"));
    }
}
