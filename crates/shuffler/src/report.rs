//! Report tuples flowing from local agents through the shuffler.

use crate::ShufflerError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The anonymous interaction tuple `(y, a, r)` of the paper: encoded context
/// code, proposed action and observed reward.
///
/// This is the *only* payload that ever reaches the server; it deliberately
/// contains no agent-identifying fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodedReport {
    code: usize,
    action: usize,
    reward: f64,
}

impl EncodedReport {
    /// Creates a report tuple.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidReport`] when the reward is not a
    /// finite number in `[0, 1]`.
    pub fn new(code: usize, action: usize, reward: f64) -> Result<Self, ShufflerError> {
        if !reward.is_finite() || !(0.0..=1.0).contains(&reward) {
            return Err(ShufflerError::InvalidReport {
                message: format!("reward {reward} outside the [0, 1] range"),
            });
        }
        Ok(Self {
            code,
            action,
            reward,
        })
    }

    /// The encoded context code `y`.
    #[must_use]
    pub fn code(&self) -> usize {
        self.code
    }

    /// The proposed action `a`.
    #[must_use]
    pub fn action(&self) -> usize {
        self.action
    }

    /// The observed reward `r ∈ [0, 1]`.
    #[must_use]
    pub fn reward(&self) -> f64 {
        self.reward
    }
}

impl fmt::Display for EncodedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(y={}, a={}, r={:.3})",
            self.code, self.action, self.reward
        )
    }
}

/// Metadata that accompanies a report on the wire and must be destroyed by
/// the shuffler before anything reaches the analyzer.
///
/// The fields model what a real collection endpoint would inevitably see:
/// a sender identifier (here a string agent id standing in for an IP
/// address / TLS session) and a client timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReportMetadata {
    /// Identifier of the sending agent (stand-in for IP address, device id…).
    pub sender: String,
    /// Client-side timestamp in arbitrary units (e.g. interaction round).
    pub timestamp: u64,
}

/// A report as received from a local agent: payload plus identifying
/// metadata. Only the shuffler ever sees this type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawReport {
    metadata: ReportMetadata,
    payload: EncodedReport,
}

impl RawReport {
    /// Wraps a payload with sender metadata (timestamp 0).
    #[must_use]
    pub fn new(sender: impl Into<String>, payload: EncodedReport) -> Self {
        Self {
            metadata: ReportMetadata {
                sender: sender.into(),
                timestamp: 0,
            },
            payload,
        }
    }

    /// Wraps a payload with sender metadata and a client timestamp.
    #[must_use]
    pub fn with_timestamp(
        sender: impl Into<String>,
        timestamp: u64,
        payload: EncodedReport,
    ) -> Self {
        Self {
            metadata: ReportMetadata {
                sender: sender.into(),
                timestamp,
            },
            payload,
        }
    }

    /// Borrows the attached metadata.
    #[must_use]
    pub fn metadata(&self) -> &ReportMetadata {
        &self.metadata
    }

    /// Borrows the payload.
    #[must_use]
    pub fn payload(&self) -> &EncodedReport {
        &self.payload
    }

    /// Discards the metadata and returns the bare payload — the shuffler's
    /// anonymization step.
    #[must_use]
    pub fn into_anonymous(self) -> EncodedReport {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_report_validates_reward() {
        assert!(EncodedReport::new(1, 2, 0.5).is_ok());
        assert!(EncodedReport::new(1, 2, 0.0).is_ok());
        assert!(EncodedReport::new(1, 2, 1.0).is_ok());
        assert!(EncodedReport::new(1, 2, -0.1).is_err());
        assert!(EncodedReport::new(1, 2, 1.1).is_err());
        assert!(EncodedReport::new(1, 2, f64::NAN).is_err());
    }

    #[test]
    fn accessors_round_trip() {
        let r = EncodedReport::new(7, 3, 0.25).unwrap();
        assert_eq!(r.code(), 7);
        assert_eq!(r.action(), 3);
        assert!((r.reward() - 0.25).abs() < 1e-12);
        assert!(r.to_string().contains("y=7"));
    }

    #[test]
    fn anonymization_strips_all_metadata() {
        let payload = EncodedReport::new(1, 2, 1.0).unwrap();
        let raw = RawReport::with_timestamp("10.0.0.42", 99, payload);
        assert_eq!(raw.metadata().sender, "10.0.0.42");
        assert_eq!(raw.metadata().timestamp, 99);
        let anonymous = raw.into_anonymous();
        assert_eq!(anonymous, payload);
        // The anonymous type has no way to name the sender: this is enforced
        // statically, the assertion below merely documents the intent.
        let serialized = serde_json_like_debug(&anonymous);
        assert!(!serialized.contains("10.0.0.42"));
        assert!(!serialized.contains("99"));
    }

    fn serde_json_like_debug(report: &EncodedReport) -> String {
        format!("{report:?}")
    }
}
