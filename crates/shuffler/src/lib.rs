//! ESA-style trusted shuffler for Privacy-Preserving Bandits.
//!
//! The shuffler sits between the local agents and the central server
//! (Section 3.3 of the paper, following the PROCHLO/ESA architecture). In the
//! real deployment it runs inside a trusted enclave; here it is an in-process
//! component that performs the same three tasks:
//!
//! 1. **Anonymization** — all metadata attached to incoming reports (agent
//!    identifiers, network addresses, timestamps) is stripped
//!    ([`RawReport`] → [`EncodedReport`]).
//! 2. **Shuffling** — reports are gathered into batches and their order is
//!    randomized (Fisher–Yates), severing any ordering side channel.
//! 3. **Thresholding** — reports whose encoded context code appears fewer
//!    than `threshold` times in the batch are removed, enforcing the
//!    crowd-blending parameter `l`.
//!
//! A multi-threaded [`ShufflerPipeline`] built on crossbeam channels is
//! provided for streaming operation; the synchronous [`Shuffler`] is what the
//! simulation harness uses.
//!
//! # Example
//!
//! ```
//! use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), p2b_shuffler::ShufflerError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let shuffler = Shuffler::new(ShufflerConfig::new(2))?;
//! let reports: Vec<RawReport> = (0..6)
//!     .map(|i| RawReport::new(format!("agent-{i}"), EncodedReport::new(i % 2, 0, 1.0).unwrap()))
//!     .collect();
//! let batch = shuffler.process(reports, &mut rng);
//! assert_eq!(batch.reports().len(), 6); // both codes appear ≥ 2 times
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod pipeline;
mod report;
mod shuffle;

pub use error::ShufflerError;
pub use pipeline::{PipelineHandle, ShufflerPipeline};
pub use report::{EncodedReport, RawReport, ReportMetadata};
pub use shuffle::{ShuffledBatch, Shuffler, ShufflerConfig, ShufflerStats};
