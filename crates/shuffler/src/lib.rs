//! ESA-style trusted shuffler for Privacy-Preserving Bandits.
//!
//! The shuffler sits between the local agents and the central server
//! (Section 3.3 of the paper, following the PROCHLO/ESA architecture). In the
//! real deployment it runs inside a trusted enclave; here it is an in-process
//! component that performs the same three tasks:
//!
//! 1. **Anonymization** — all metadata attached to incoming reports (agent
//!    identifiers, network addresses, timestamps) is stripped
//!    ([`RawReport`] → [`EncodedReport`]).
//! 2. **Shuffling** — reports are gathered into batches and their order is
//!    randomized (Fisher–Yates), severing any ordering side channel.
//! 3. **Thresholding** — reports whose encoded context code appears fewer
//!    than `threshold` times in the batch are removed, enforcing the
//!    crowd-blending parameter `l`.
//!
//! Three execution shapes share that contract:
//!
//! * [`Shuffler`] — synchronous, single batch per call; what the
//!   single-threaded simulation harness and the golden determinism tests
//!   use.
//! * [`ShufflerPipeline`] — one background worker fed through a crossbeam
//!   channel; the original streaming shape, kept for single-lane
//!   deployments and as the baseline the throughput benchmarks compare
//!   against.
//! * [`ShufflerEngine`] — the sharded, batched engine: reports are
//!   partitioned across N shard workers (by hashing the anonymous batch
//!   slot, never the sender), shuffled within and across shards through a
//!   fan-in merge stage, thresholded per merged batch, and delivered with
//!   per-batch (ε, δ) amplification records. See [`engine`] for the stage
//!   diagram. This is the serving-scale path.
//!
//! A fourth shape drops the trusted-shuffler assumption altogether for the
//! sufficient-statistics ingest path: the [`SecureAggEngine`] aggregates
//! additively secret-shared fixed-point contributions across `k`
//! independent shard workers, none of which ever sees a plaintext value;
//! only the recombined sum — exact at any shard count — leaves the engine.
//! See [`secure`] for the stage diagram and the trust model.
//!
//! # Example
//!
//! ```
//! use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), p2b_shuffler::ShufflerError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let shuffler = Shuffler::new(ShufflerConfig::new(2))?;
//! let reports: Vec<RawReport> = (0..6)
//!     .map(|i| RawReport::new(format!("agent-{i}"), EncodedReport::new(i % 2, 0, 1.0).unwrap()))
//!     .collect();
//! let batch = shuffler.process(reports, &mut rng);
//! assert_eq!(batch.reports().len(), 6); // both codes appear ≥ 2 times
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
mod error;
mod pipeline;
mod report;
pub mod secure;
mod shard;
mod shuffle;

pub use engine::{
    splitmix64, EngineBatch, EngineBuilder, EngineHandle, EngineOutput, ShufflerEngine,
};
pub use error::ShufflerError;
pub use secure::{SecureAggBuilder, SecureAggEngine, SecureAggHandle, SecureAggOutput};
pub use pipeline::{PipelineHandle, ShufflerPipeline};
pub use report::{EncodedReport, RawReport, ReportMetadata};
pub use shuffle::{ShuffledBatch, Shuffler, ShufflerConfig, ShufflerStats};
