//! Multi-threaded streaming shuffler pipeline.

use crate::{RawReport, ShuffledBatch, Shuffler, ShufflerConfig, ShufflerError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread::JoinHandle;

/// A single-lane streaming shuffler: reports submitted from any thread are
/// gathered into fixed-size batches by **one** background worker, which
/// anonymizes, shuffles and thresholds each batch before handing it
/// downstream.
///
/// This mirrors the deployment shape of the ESA architecture, where the
/// shuffler runs asynchronously from both the clients and the analyzer. The
/// synchronous [`Shuffler`] remains the right tool inside single-threaded
/// simulations. For concurrent serving-scale ingestion, prefer the sharded
/// [`ShufflerEngine`](crate::ShufflerEngine), which parallelizes this
/// worker across N shards and adds backpressure and per-batch privacy
/// accounting; the pipeline is kept as the single-lane baseline that the
/// `throughput` scaling binary compares against.
///
/// # Example
///
/// ```
/// use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerPipeline};
///
/// # fn main() -> Result<(), p2b_shuffler::ShufflerError> {
/// let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), 4)?;
/// let handle = pipeline.spawn(42);
/// for i in 0..8 {
///     handle.submit(RawReport::new("agent", EncodedReport::new(i % 2, 0, 1.0)?))?;
/// }
/// let batches = handle.finish();
/// assert_eq!(batches.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShufflerPipeline {
    shuffler: Shuffler,
    batch_size: usize,
}

impl ShufflerPipeline {
    /// Creates a pipeline description.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidConfig`] when the shuffler config is
    /// invalid or `batch_size` is zero.
    pub fn new(config: ShufflerConfig, batch_size: usize) -> Result<Self, ShufflerError> {
        // Build (and thereby validate) the shuffler once, here: `spawn`
        // clones the stored instance instead of re-validating the config,
        // so it has no failure — and no panic — path.
        let shuffler = Shuffler::new(config)?;
        if batch_size == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "batch_size",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(Self {
            shuffler,
            batch_size,
        })
    }

    /// Starts the background worker and returns a handle for submitting
    /// reports and collecting shuffled batches.
    #[must_use]
    pub fn spawn(&self, seed: u64) -> PipelineHandle {
        let (report_tx, report_rx) = unbounded::<RawReport>();
        let (batch_tx, batch_rx) = unbounded::<ShuffledBatch>();
        let shuffler = self.shuffler.clone();
        let batch_size = self.batch_size;

        let worker = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pending: Vec<RawReport> = Vec::with_capacity(batch_size);
            for report in report_rx.iter() {
                pending.push(report);
                if pending.len() >= batch_size {
                    let batch = shuffler.process(std::mem::take(&mut pending), &mut rng);
                    if batch_tx.send(batch).is_err() {
                        return;
                    }
                }
            }
            // Input channel closed: flush whatever is left as a final batch.
            if !pending.is_empty() {
                let batch = shuffler.process(pending, &mut rng);
                let _ = batch_tx.send(batch);
            }
        });

        PipelineHandle {
            report_tx: Some(report_tx),
            batch_rx,
            worker: Some(worker),
        }
    }
}

/// Handle to a running [`ShufflerPipeline`] worker.
#[derive(Debug)]
pub struct PipelineHandle {
    report_tx: Option<Sender<RawReport>>,
    batch_rx: Receiver<ShuffledBatch>,
    worker: Option<JoinHandle<()>>,
}

impl PipelineHandle {
    /// Submits one raw report to the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::PipelineClosed`] after [`Self::finish`] has
    /// been called or if the worker terminated.
    pub fn submit(&self, report: RawReport) -> Result<(), ShufflerError> {
        match &self.report_tx {
            Some(tx) => tx.send(report).map_err(|_| ShufflerError::PipelineClosed),
            None => Err(ShufflerError::PipelineClosed),
        }
    }

    /// Non-blocking drain of the batches produced so far.
    #[must_use]
    pub fn drain_ready(&self) -> Vec<ShuffledBatch> {
        self.batch_rx.try_iter().collect()
    }

    /// Closes the input, waits for the worker to flush, and returns every
    /// batch the pipeline produced (including previously undrained ones).
    #[must_use]
    pub fn finish(mut self) -> Vec<ShuffledBatch> {
        self.close();
        self.batch_rx.iter().collect()
    }

    fn close(&mut self) {
        // Dropping the sender closes the input channel, letting the worker
        // flush its final partial batch and exit.
        self.report_tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for PipelineHandle {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedReport;

    fn raw(code: usize) -> RawReport {
        RawReport::new("agent", EncodedReport::new(code, 0, 1.0).unwrap())
    }

    #[test]
    fn validates_configuration() {
        assert!(ShufflerPipeline::new(ShufflerConfig::new(0), 4).is_err());
        assert!(ShufflerPipeline::new(ShufflerConfig::new(1), 0).is_err());
        assert!(ShufflerPipeline::new(ShufflerConfig::new(1), 4).is_ok());
    }

    #[test]
    fn batches_are_emitted_at_the_configured_size() {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), 5).unwrap();
        let handle = pipeline.spawn(7);
        for i in 0..12 {
            handle.submit(raw(i % 3)).unwrap();
        }
        let batches = handle.finish();
        // 12 reports with batch size 5: two full batches plus a final flush of 2.
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].stats().received, 5);
        assert_eq!(batches[1].stats().received, 5);
        assert_eq!(batches[2].stats().received, 2);
        let total_released: usize = batches.iter().map(|b| b.reports().len()).sum();
        assert_eq!(total_released, 12);
    }

    #[test]
    fn thresholding_applies_per_batch() {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(3), 6).unwrap();
        let handle = pipeline.spawn(8);
        // Batch of 6: code 0 x4 (released), code 1 x2 (dropped).
        for _ in 0..4 {
            handle.submit(raw(0)).unwrap();
        }
        for _ in 0..2 {
            handle.submit(raw(1)).unwrap();
        }
        let batches = handle.finish();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].reports().len(), 4);
        assert!(batches[0].reports().iter().all(|r| r.code() == 0));
    }

    #[test]
    fn submitting_after_finish_is_rejected() {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), 2).unwrap();
        let handle = pipeline.spawn(9);
        handle.submit(raw(0)).unwrap();
        let _ = handle.finish();
        // `finish` consumes the handle; a freshly spawned handle stays usable
        // until it, too, is finished.
        let handle2 = pipeline.spawn(10);
        handle2.submit(raw(1)).unwrap();
        let batches = handle2.finish();
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn concurrent_submissions_from_multiple_threads() {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), 50).unwrap();
        let handle = pipeline.spawn(11);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle_ref = &handle;
                scope.spawn(move || {
                    for i in 0..100 {
                        handle_ref.submit(raw((t * 100 + i) % 7)).unwrap();
                    }
                });
            }
        });
        let batches = handle.finish();
        let total: usize = batches.iter().map(|b| b.stats().received).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn drain_ready_returns_completed_batches_without_closing() {
        let pipeline = ShufflerPipeline::new(ShufflerConfig::new(1), 2).unwrap();
        let handle = pipeline.spawn(12);
        handle.submit(raw(0)).unwrap();
        handle.submit(raw(1)).unwrap();
        // Give the worker a moment to process the full batch.
        let mut drained = Vec::new();
        for _ in 0..100 {
            drained = handle.drain_ready();
            if !drained.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(drained.len(), 1);
        // The pipeline is still usable afterwards.
        handle.submit(raw(2)).unwrap();
        let rest = handle.finish();
        assert_eq!(rest.len(), 1);
    }
}
