//! Shard workers of the sharded shuffler engine.
//!
//! Each shard owns one worker thread and one *bounded* ingress queue. The
//! bounded queue is the engine's backpressure mechanism: when a shard falls
//! behind, producers calling [`crate::EngineHandle::submit`] block instead of
//! letting unprocessed reports pile up without limit.
//!
//! A shard performs the parallelizable half of the shuffler's work:
//!
//! 1. **Anonymization** — metadata is stripped from every report the moment
//!    it is taken off the ingress queue ([`crate::RawReport::into_anonymous`]),
//!    so identifying information never crosses the fan-in stage.
//! 2. **Within-shard shuffling** — each accumulated chunk is Fisher–Yates
//!    shuffled before it is forwarded, so no downstream stage (including the
//!    merger) ever observes arrival order.
//!
//! Thresholding is deliberately *not* done per shard: a code split across
//! shards could be suppressed even though it clears the crowd-blending
//! threshold globally. The merge stage applies the threshold over each
//! merged batch instead.

use crate::{EncodedReport, RawReport};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A within-shard pre-shuffled chunk of anonymized reports on its way to the
/// fan-in merge stage.
#[derive(Debug)]
pub(crate) struct SubBatch {
    /// Index of the shard that produced this chunk.
    #[allow(dead_code)] // read by the concurrency tests and debug output
    pub(crate) shard: usize,
    /// Anonymized reports in within-shard shuffled order.
    pub(crate) reports: Vec<EncodedReport>,
}

/// One shard's worker loop: drain the bounded ingress queue, accumulate
/// `batch_size` reports (or whatever arrived within `flush_interval`),
/// anonymize + shuffle the chunk, and forward it to the merger.
pub(crate) struct ShardWorker {
    shard: usize,
    input: Receiver<RawReport>,
    output: Sender<SubBatch>,
    batch_size: usize,
    flush_interval: Option<Duration>,
    rng: StdRng,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        input: Receiver<RawReport>,
        output: Sender<SubBatch>,
        batch_size: usize,
        flush_interval: Option<Duration>,
        seed: u64,
    ) -> Self {
        Self {
            shard,
            input,
            output,
            batch_size,
            flush_interval,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs until the ingress queue disconnects (all producer handles
    /// dropped) or the merger goes away; flushes the final partial chunk on
    /// the way out.
    pub(crate) fn run(mut self) {
        let mut pending: Vec<RawReport> = Vec::with_capacity(self.batch_size);
        // Deadline anchored to the *oldest* pending report (set when the
        // chunk starts, never pushed back by later arrivals), so a steady
        // trickle cannot postpone a flush indefinitely. `None` while the
        // chunk is empty or no flush interval is configured.
        let mut deadline: Option<Instant> = None;
        loop {
            let next = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        if !self.flush(&mut pending) {
                            return;
                        }
                        deadline = None;
                        continue;
                    }
                    match self.input.recv_timeout(d - now) {
                        Ok(report) => Some(report),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => None,
                    }
                }
                None => self.input.recv().ok(),
            };
            match next {
                Some(report) => {
                    if pending.is_empty() {
                        deadline = self
                            .flush_interval
                            .map(|interval| Instant::now() + interval);
                    }
                    pending.push(report);
                    if pending.len() >= self.batch_size {
                        if !self.flush(&mut pending) {
                            return;
                        }
                        deadline = None;
                    }
                }
                None => break,
            }
        }
        let _ = self.flush(&mut pending);
    }

    /// Anonymizes, shuffles and forwards the pending chunk. Returns `false`
    /// when the merger has shut down and the worker should stop.
    fn flush(&mut self, pending: &mut Vec<RawReport>) -> bool {
        if pending.is_empty() {
            return true;
        }
        let mut reports: Vec<EncodedReport> =
            pending.drain(..).map(RawReport::into_anonymous).collect();
        reports.shuffle(&mut self.rng);
        self.output
            .send(SubBatch {
                shard: self.shard,
                reports,
            })
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, unbounded};

    fn raw(code: usize) -> RawReport {
        RawReport::new("agent", EncodedReport::new(code, 0, 1.0).unwrap())
    }

    #[test]
    fn worker_batches_anonymizes_and_flushes_remainder() {
        let (in_tx, in_rx) = bounded::<RawReport>(16);
        let (out_tx, out_rx) = unbounded::<SubBatch>();
        let worker = ShardWorker::new(3, in_rx, out_tx, 4, None, 7);
        let handle = std::thread::spawn(move || worker.run());
        for i in 0..10 {
            in_tx.send(raw(i)).unwrap();
        }
        drop(in_tx);
        handle.join().unwrap();
        let subs: Vec<SubBatch> = out_rx.iter().collect();
        assert_eq!(subs.len(), 3); // 4 + 4 + final flush of 2
        assert_eq!(subs[0].reports.len(), 4);
        assert_eq!(subs[1].reports.len(), 4);
        assert_eq!(subs[2].reports.len(), 2);
        assert!(subs.iter().all(|s| s.shard == 3));
        let mut codes: Vec<usize> = subs
            .iter()
            .flat_map(|s| s.reports.iter().map(EncodedReport::code))
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_stops_when_merger_disconnects() {
        let (in_tx, in_rx) = bounded::<RawReport>(16);
        let (out_tx, out_rx) = unbounded::<SubBatch>();
        drop(out_rx);
        let worker = ShardWorker::new(0, in_rx, out_tx, 2, None, 1);
        let handle = std::thread::spawn(move || worker.run());
        // The worker exits as soon as it fails to forward a full chunk,
        // instead of spinning forever.
        let _ = in_tx.send(raw(0));
        let _ = in_tx.send(raw(1));
        handle.join().unwrap();
    }

    #[test]
    fn flush_interval_emits_partial_chunks() {
        let (in_tx, in_rx) = bounded::<RawReport>(16);
        let (out_tx, out_rx) = unbounded::<SubBatch>();
        let worker = ShardWorker::new(0, in_rx, out_tx, 1_000, Some(Duration::from_millis(2)), 5);
        let handle = std::thread::spawn(move || worker.run());
        in_tx.send(raw(0)).unwrap();
        in_tx.send(raw(1)).unwrap();
        // Well under batch_size, so only the interval can trigger the flush.
        let sub = out_rx.recv().unwrap();
        assert_eq!(sub.reports.len(), 2);
        drop(in_tx);
        handle.join().unwrap();
    }
}
