//! The sharded, batched shuffler engine.
//!
//! [`ShufflerPipeline`](crate::ShufflerPipeline) processes one report at a
//! time on a single worker thread, which caps throughput well below a
//! serving-scale deployment. The [`ShufflerEngine`] replaces that single
//! lane with a two-stage design:
//!
//! ```text
//!  producers ──submit──▶ shard 0 ─┐
//!  (any thread)          shard 1 ─┼─▶ fan-in merger ──▶ EngineBatch stream
//!            ⋮               ⋮    │   (cross-shard shuffle,
//!                        shard N ─┘    threshold, (ε, δ) ledger)
//! ```
//!
//! * **Sharding** — [`EngineHandle::submit`] routes each report to a shard
//!   by hashing its *anonymous batch slot* (a per-engine arrival counter).
//!   The key is never derived from the sender: shard assignment therefore
//!   carries zero information about the user, unlike a user-id hash which
//!   would pin every user to one shard and leak membership through shard
//!   load.
//! * **Batching** — each shard accumulates a chunk (configurable size),
//!   anonymizes + shuffles it, and forwards it to the merger; the merger
//!   re-batches the fan-in stream into merged batches of exactly
//!   [`EngineBuilder::batch_size`] (the final flush may be smaller).
//! * **Backpressure** — shard ingress queues are bounded; `submit` blocks
//!   while the target shard's queue is full, so a slow engine slows its
//!   producers instead of buffering without limit.
//! * **Flush interval** — optionally, a shard or the merger flushes a
//!   partial batch once its oldest buffered report has waited the
//!   configured interval, bounding the delivery latency of a trickling
//!   report stream (the deadline is anchored to the oldest report, so a
//!   steady trickle cannot postpone the flush).
//! * **Privacy bookkeeping** — with [`EngineBuilder::privacy_accounting`]
//!   enabled, the merger records every delivered batch in an
//!   [`AmplificationLedger`], attaching the per-batch (ε, δ) amplification
//!   record to the [`EngineBatch`].
//!
//! With `shards = 1`, a single producer and no flush interval configured,
//! the engine is fully deterministic for a fixed seed: batch boundaries are
//! count-triggered and every RNG is seeded from the spawn seed. (A flush
//! interval makes batch boundaries wall-clock-dependent and therefore
//! non-reproducible.)

use crate::shard::{ShardWorker, SubBatch};
use crate::shuffle::shuffle_and_threshold;
use crate::{EncodedReport, RawReport, ShuffledBatch, Shuffler, ShufflerConfig, ShufflerError};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use p2b_privacy::{AmplificationLedger, BatchAmplification, Participation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// SplitMix64: a cheap, well-mixed 64-bit hash. The engine uses it for
/// slot→shard routing and for deriving per-shard RNG seeds from the engine
/// seed; the agent pool, the pooled population driver and the experiment
/// matrix reuse the same mixer (re-exported as
/// [`crate::splitmix64`]) so every shard/seed derivation in the workspace
/// shares one load-bearing set of constants.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Builder for a [`ShufflerEngine`].
///
/// Obtained from [`ShufflerEngine::builder`]; every knob has a sensible
/// default, so the minimal spell is `builder(config).batch_size(n).build()`.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: ShufflerConfig,
    shards: usize,
    batch_size: usize,
    shard_batch_size: Option<usize>,
    shard_queue_capacity: usize,
    flush_interval: Option<Duration>,
    accounting: Option<(Participation, f64)>,
}

impl EngineBuilder {
    fn new(config: ShufflerConfig) -> Self {
        Self {
            config,
            shards: 1,
            batch_size: 64,
            shard_batch_size: None,
            shard_queue_capacity: 1024,
            flush_interval: None,
            accounting: None,
        }
    }

    /// Number of shard workers (default 1). Each shard owns one thread and
    /// one bounded ingress queue.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Size of the merged batches delivered downstream (default 64). Every
    /// batch except the final flush contains exactly this many received
    /// reports.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Per-shard accumulation chunk size before a sub-batch is forwarded to
    /// the merger. Defaults to `batch_size / shards` (rounded up), so the
    /// shards collectively fill one merged batch per chunk round.
    #[must_use]
    pub fn shard_batch_size(mut self, shard_batch_size: usize) -> Self {
        self.shard_batch_size = Some(shard_batch_size);
        self
    }

    /// Capacity of each shard's bounded ingress queue (default 1024).
    /// [`EngineHandle::submit`] blocks while the target shard's queue holds
    /// this many un-consumed reports — the engine's backpressure contract.
    #[must_use]
    pub fn shard_queue_capacity(mut self, capacity: usize) -> Self {
        self.shard_queue_capacity = capacity;
        self
    }

    /// Maximum time a buffered report may wait before its shard (or the
    /// merger) flushes the partial batch holding it (default: no interval —
    /// batches are only ever count-triggered, which keeps single-shard runs
    /// deterministic). The deadline anchors to the oldest buffered report,
    /// so it holds even under a steady trickle of arrivals.
    #[must_use]
    pub fn flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = Some(interval);
        self
    }

    /// Enables per-batch (ε, δ) amplification bookkeeping: the merger
    /// records every delivered batch in an [`AmplificationLedger`] under the
    /// given participation probability and δ-bound constant Ω, and attaches
    /// the record to each [`EngineBatch`].
    #[must_use]
    pub fn privacy_accounting(mut self, participation: Participation, omega: f64) -> Self {
        self.accounting = Some((participation, omega));
        self
    }

    /// Validates the configuration and produces the engine description.
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::InvalidConfig`] when the shuffler threshold
    /// is zero, any size/capacity knob is zero, the flush interval is zero,
    /// or the privacy-accounting Ω is not a finite positive number.
    pub fn build(self) -> Result<ShufflerEngine, ShufflerError> {
        // Validate the threshold eagerly, exactly like the pipeline does.
        let _ = Shuffler::new(self.config)?;
        if self.shards == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "shards",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.batch_size == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "batch_size",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shard_batch_size == Some(0) {
            return Err(ShufflerError::InvalidConfig {
                parameter: "shard_batch_size",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shard_queue_capacity == 0 {
            return Err(ShufflerError::InvalidConfig {
                parameter: "shard_queue_capacity",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.flush_interval == Some(Duration::ZERO) {
            return Err(ShufflerError::InvalidConfig {
                parameter: "flush_interval",
                message: "must be a positive duration".to_owned(),
            });
        }
        let ledger = match self.accounting {
            Some((participation, omega)) => {
                Some(AmplificationLedger::new(participation, omega).map_err(|e| {
                    ShufflerError::InvalidConfig {
                        parameter: "privacy_accounting",
                        message: e.to_string(),
                    }
                })?)
            }
            None => None,
        };
        let shard_batch_size = self
            .shard_batch_size
            .unwrap_or_else(|| self.batch_size.div_ceil(self.shards));
        Ok(ShufflerEngine {
            config: self.config,
            shards: self.shards,
            batch_size: self.batch_size,
            shard_batch_size,
            shard_queue_capacity: self.shard_queue_capacity,
            flush_interval: self.flush_interval,
            ledger,
        })
    }
}

/// One merged batch delivered by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBatch {
    /// Zero-based delivery index of the batch.
    pub index: u64,
    /// The anonymized, cross-shard-shuffled, threshold-filtered batch.
    pub batch: ShuffledBatch,
    /// Per-batch (ε, δ) amplification record, present when
    /// [`EngineBuilder::privacy_accounting`] was enabled.
    pub amplification: Option<BatchAmplification>,
}

/// Everything a finished engine run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// The delivered batches not yet consumed via
    /// [`EngineHandle::drain_ready`], in delivery order. Check
    /// [`EngineBatch::index`] when interleaving with drained batches.
    pub batches: Vec<EngineBatch>,
    /// The amplification ledger accumulated by the merger, when accounting
    /// was enabled.
    pub ledger: Option<AmplificationLedger>,
}

/// A sharded, batched, multi-threaded shuffler.
///
/// See the [module documentation](self) for the stage diagram and the
/// design rationale. The engine value itself is a passive description (like
/// [`ShufflerPipeline`](crate::ShufflerPipeline)); [`ShufflerEngine::spawn`]
/// starts the shard workers and the merger and returns a handle.
///
/// # Examples
///
/// ```
/// use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerEngine};
///
/// # fn main() -> Result<(), p2b_shuffler::ShufflerError> {
/// let engine = ShufflerEngine::builder(ShufflerConfig::new(1))
///     .shards(2)
///     .batch_size(8)
///     .build()?;
/// let handle = engine.spawn(42);
/// for i in 0..16 {
///     let report = EncodedReport::new(i % 2, 0, 1.0)?;
///     handle.submit(RawReport::new(format!("agent-{i}"), report))?;
/// }
/// let output = handle.finish();
/// // 16 reports at batch size 8: two full merged batches, nothing lost.
/// assert_eq!(output.batches.len(), 2);
/// let delivered: usize = output.batches.iter().map(|b| b.batch.reports().len()).sum();
/// assert_eq!(delivered, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShufflerEngine {
    config: ShufflerConfig,
    shards: usize,
    batch_size: usize,
    shard_batch_size: usize,
    shard_queue_capacity: usize,
    flush_interval: Option<Duration>,
    ledger: Option<AmplificationLedger>,
}

impl ShufflerEngine {
    /// Starts building an engine around a shuffler configuration.
    #[must_use]
    pub fn builder(config: ShufflerConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// The number of shard workers.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The merged batch size delivered downstream.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Starts the shard workers and the fan-in merger. All randomness
    /// (within-shard shuffles, cross-shard shuffle) derives from `seed`, so
    /// a single-shard, single-producer run with no flush interval is
    /// reproducible bit for bit (a flush interval makes batch boundaries
    /// wall-clock-dependent).
    #[must_use]
    pub fn spawn(&self, seed: u64) -> EngineHandle {
        let (fan_tx, fan_rx) = unbounded::<SubBatch>();
        let (batch_tx, batch_rx) = unbounded::<EngineBatch>();

        let mut shard_txs = Vec::with_capacity(self.shards);
        let mut shard_workers = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (tx, rx) = bounded::<RawReport>(self.shard_queue_capacity);
            shard_txs.push(tx);
            let worker = ShardWorker::new(
                shard,
                rx,
                fan_tx.clone(),
                self.shard_batch_size,
                self.flush_interval,
                splitmix64(seed ^ splitmix64(shard as u64 + 1)),
            );
            shard_workers.push(std::thread::spawn(move || worker.run()));
        }
        // Drop the original fan-in sender so the merger disconnects as soon
        // as the last shard worker exits.
        drop(fan_tx);

        let threshold = self.config.threshold;
        let batch_size = self.batch_size;
        let flush_interval = self.flush_interval;
        let ledger = self.ledger.clone();
        // A fixed tag keeps the merger's RNG stream distinct from every
        // shard's (shard seeds mix small integers, not this constant).
        let merger_seed = splitmix64(seed ^ 0x5EED_BA7C_4E61_4E00);
        let merger = std::thread::spawn(move || {
            run_merger(
                &fan_rx,
                &batch_tx,
                threshold,
                batch_size,
                flush_interval,
                StdRng::seed_from_u64(merger_seed),
                ledger,
            )
        });

        EngineHandle {
            shard_txs: Some(shard_txs),
            slot: AtomicU64::new(0),
            batch_rx,
            shard_workers,
            merger: Some(merger),
        }
    }
}

/// The fan-in merge stage: accumulates shard sub-batches, re-batches them
/// into merged batches of exactly `batch_size`, shuffles across shards,
/// applies the crowd-blending threshold, and records amplification.
fn run_merger(
    fan_rx: &Receiver<SubBatch>,
    batch_tx: &Sender<EngineBatch>,
    threshold: usize,
    batch_size: usize,
    flush_interval: Option<Duration>,
    mut rng: StdRng,
    mut ledger: Option<AmplificationLedger>,
) -> Option<AmplificationLedger> {
    let mut pending: Vec<EncodedReport> = Vec::with_capacity(batch_size);
    let mut next_index = 0u64;
    // Deadline anchored to the oldest pending report, so a steady trickle of
    // sub-batches cannot postpone a flush indefinitely.
    let mut deadline: Option<Instant> = None;
    loop {
        let sub = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    let chunk = std::mem::take(&mut pending);
                    deadline = None;
                    if !emit(
                        chunk,
                        batch_tx,
                        threshold,
                        &mut rng,
                        &mut ledger,
                        &mut next_index,
                    ) {
                        return ledger;
                    }
                    continue;
                }
                match fan_rx.recv_timeout(d - now) {
                    Ok(sub) => Some(sub),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => fan_rx.recv().ok(),
        };
        match sub {
            Some(sub) => {
                if pending.is_empty() {
                    deadline = flush_interval.map(|interval| Instant::now() + interval);
                }
                pending.extend(sub.reports);
                while pending.len() >= batch_size {
                    let chunk: Vec<EncodedReport> = pending.drain(..batch_size).collect();
                    // The remainder (if any) arrived just now; restart its
                    // staleness clock.
                    deadline = if pending.is_empty() {
                        None
                    } else {
                        flush_interval.map(|interval| Instant::now() + interval)
                    };
                    if !emit(
                        chunk,
                        batch_tx,
                        threshold,
                        &mut rng,
                        &mut ledger,
                        &mut next_index,
                    ) {
                        return ledger;
                    }
                }
            }
            None => break,
        }
    }
    if !pending.is_empty() {
        emit(
            pending,
            batch_tx,
            threshold,
            &mut rng,
            &mut ledger,
            &mut next_index,
        );
    }
    ledger
}

/// Processes one merged chunk and sends it downstream. Returns `false` when
/// the downstream receiver is gone and the merger should stop.
fn emit(
    chunk: Vec<EncodedReport>,
    batch_tx: &Sender<EngineBatch>,
    threshold: usize,
    rng: &mut StdRng,
    ledger: &mut Option<AmplificationLedger>,
    next_index: &mut u64,
) -> bool {
    // Cross-shard shuffle + crowd-blending threshold over the *merged* batch
    // (codes split across shards must be counted globally), via the same
    // core the synchronous shuffler uses. The shards already anonymized.
    let batch = shuffle_and_threshold(threshold, chunk, rng);
    let stats = batch.stats();
    // `released > 0` implies a crowd ≥ threshold ≥ 1, so recording cannot
    // fail for batches this merger produces — but the accounting hook must
    // not be a panic path: a batch whose record is rejected is delivered
    // with no amplification claim (`None`) instead of crashing the merger.
    // The `u64::try_from` keeps the usize → u64 conversion lossless on any
    // platform instead of silently truncating.
    let amplification = ledger.as_mut().and_then(|ledger| {
        let crowd = u64::try_from(stats.min_released_frequency).unwrap_or(u64::MAX);
        ledger.record_batch(stats.released, crowd).ok()
    });
    let batch = EngineBatch {
        index: *next_index,
        batch,
        amplification,
    };
    *next_index += 1;
    batch_tx.send(batch).is_ok()
}

/// Handle to a running [`ShufflerEngine`].
///
/// `submit` may be called from any number of threads sharing the handle by
/// reference. Dropping the handle (or calling [`EngineHandle::finish`])
/// closes the ingress, flushes every stage and joins the worker threads.
#[derive(Debug)]
pub struct EngineHandle {
    shard_txs: Option<Vec<Sender<RawReport>>>,
    slot: AtomicU64,
    batch_rx: Receiver<EngineBatch>,
    shard_workers: Vec<JoinHandle<()>>,
    merger: Option<JoinHandle<Option<AmplificationLedger>>>,
}

impl EngineHandle {
    /// Submits one raw report.
    ///
    /// The report is routed to a shard by hashing its anonymous batch slot
    /// (the engine-wide arrival counter) — never anything derived from the
    /// sender, so shard assignment reveals nothing about the user. Blocks
    /// while the target shard's bounded queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ShufflerError::PipelineClosed`] after [`Self::finish`] or
    /// if the engine's workers have shut down.
    pub fn submit(&self, report: RawReport) -> Result<(), ShufflerError> {
        let txs = self
            .shard_txs
            .as_ref()
            .ok_or(ShufflerError::PipelineClosed)?;
        let slot = self.slot.fetch_add(1, Ordering::Relaxed);
        // The builder guarantees at least one shard; `checked_rem` makes the
        // routing arithmetic panic-free even so (an impossible empty shard
        // set reads as a closed pipeline, not a divide-by-zero).
        let shard = splitmix64(slot)
            .checked_rem(txs.len() as u64)
            .ok_or(ShufflerError::PipelineClosed)? as usize;
        txs.get(shard)
            .ok_or(ShufflerError::PipelineClosed)?
            .send(report)
            .map_err(|_| ShufflerError::PipelineClosed)
    }

    /// Number of reports submitted through this handle so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.slot.load(Ordering::Relaxed)
    }

    /// Non-blocking drain of the merged batches delivered so far.
    #[must_use]
    pub fn drain_ready(&self) -> Vec<EngineBatch> {
        self.batch_rx.try_iter().collect()
    }

    /// Closes the ingress, waits for every stage to flush, and returns the
    /// remaining (undrained) batches together with the amplification ledger.
    #[must_use]
    pub fn finish(mut self) -> EngineOutput {
        let ledger = self.close();
        let batches = self.batch_rx.try_iter().collect();
        EngineOutput { batches, ledger }
    }

    fn close(&mut self) -> Option<AmplificationLedger> {
        // Dropping the shard senders closes every ingress queue; each shard
        // flushes its partial chunk and drops its fan-in sender; the merger
        // then flushes its partial merged batch and returns the ledger.
        self.shard_txs = None;
        for worker in self.shard_workers.drain(..) {
            let _ = worker.join();
        }
        self.merger
            .take()
            .and_then(|merger| merger.join().ok())
            .flatten()
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(code: usize) -> RawReport {
        RawReport::new("agent", EncodedReport::new(code, 0, 1.0).unwrap())
    }

    fn engine(threshold: usize, shards: usize, batch_size: usize) -> ShufflerEngine {
        ShufflerEngine::builder(ShufflerConfig::new(threshold))
            .shards(shards)
            .batch_size(batch_size)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_every_knob() {
        let ok = ShufflerConfig::new(1);
        assert!(ShufflerEngine::builder(ShufflerConfig::new(0))
            .build()
            .is_err());
        assert!(ShufflerEngine::builder(ok).shards(0).build().is_err());
        assert!(ShufflerEngine::builder(ok).batch_size(0).build().is_err());
        assert!(ShufflerEngine::builder(ok)
            .shard_batch_size(0)
            .build()
            .is_err());
        assert!(ShufflerEngine::builder(ok)
            .shard_queue_capacity(0)
            .build()
            .is_err());
        assert!(ShufflerEngine::builder(ok)
            .flush_interval(Duration::ZERO)
            .build()
            .is_err());
        assert!(ShufflerEngine::builder(ok)
            .privacy_accounting(Participation::new(0.5).unwrap(), 0.0)
            .build()
            .is_err());
        assert!(ShufflerEngine::builder(ok).build().is_ok());
    }

    #[test]
    fn default_shard_batch_size_splits_the_merged_batch() {
        let engine = ShufflerEngine::builder(ShufflerConfig::new(1))
            .shards(4)
            .batch_size(10)
            .build()
            .unwrap();
        assert_eq!(engine.shard_batch_size, 3); // ceil(10 / 4)
        assert_eq!(engine.shards(), 4);
        assert_eq!(engine.batch_size(), 10);
    }

    #[test]
    fn merged_batches_have_exact_sizes_and_conserve_reports() {
        for shards in [1usize, 2, 4] {
            let handle = engine(1, shards, 10).spawn(3);
            for i in 0..37 {
                handle.submit(raw(i % 5)).unwrap();
            }
            assert_eq!(handle.submitted(), 37);
            let output = handle.finish();
            let sizes: Vec<usize> = output
                .batches
                .iter()
                .map(|b| b.batch.stats().received)
                .collect();
            assert_eq!(sizes, vec![10, 10, 10, 7], "shards={shards}");
            let total: usize = output.batches.iter().map(|b| b.batch.reports().len()).sum();
            assert_eq!(total, 37, "threshold 1 releases everything");
            // Delivery indices are consecutive.
            let indices: Vec<u64> = output.batches.iter().map(|b| b.index).collect();
            assert_eq!(indices, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn thresholding_applies_to_the_merged_batch_not_per_shard() {
        // 4 shards, 8 copies of one code: any per-shard threshold of 8 would
        // suppress everything (each shard sees ~2), but the merged batch
        // clears it.
        let handle = engine(8, 4, 8).spawn(11);
        for _ in 0..8 {
            handle.submit(raw(42)).unwrap();
        }
        let output = handle.finish();
        assert_eq!(output.batches.len(), 1);
        assert_eq!(output.batches[0].batch.reports().len(), 8);
        assert!(output.batches[0]
            .batch
            .reports()
            .iter()
            .all(|r| r.code() == 42));
    }

    #[test]
    fn single_shard_runs_are_deterministic() {
        let run = || {
            let handle = engine(2, 1, 16).spawn(1234);
            for i in 0..50 {
                handle.submit(raw(i % 7)).unwrap();
            }
            handle.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn amplification_records_accompany_batches() {
        let engine = ShufflerEngine::builder(ShufflerConfig::new(2))
            .shards(2)
            .batch_size(12)
            .privacy_accounting(Participation::new(0.5).unwrap(), 0.1)
            .build()
            .unwrap();
        let handle = engine.spawn(5);
        // Codes 0 and 1 six times each: both clear threshold 2, crowd = 6.
        for i in 0..12 {
            handle.submit(raw(i % 2)).unwrap();
        }
        let output = handle.finish();
        assert_eq!(output.batches.len(), 1);
        let record = output.batches[0].amplification.expect("accounting enabled");
        assert_eq!(record.crowd_size, 6);
        assert_eq!(record.released, 12);
        assert!((record.guarantee.epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
        let ledger = output.ledger.expect("accounting enabled");
        assert_eq!(ledger.records(), &[record]);
        assert_eq!(ledger.total_released(), 12);
    }

    #[test]
    fn fully_suppressed_batches_record_the_perfect_guarantee_without_panicking() {
        // Every code below threshold: the merged batch releases nothing, so
        // the accounting hook records (released = 0, crowd = 0) — the edge
        // the old `expect` claimed unreachable. It must yield a (0, 0)
        // record, not a panic.
        let engine = ShufflerEngine::builder(ShufflerConfig::new(10))
            .shards(2)
            .batch_size(6)
            .privacy_accounting(Participation::new(0.5).unwrap(), 0.1)
            .build()
            .unwrap();
        let handle = engine.spawn(21);
        for i in 0..6 {
            handle.submit(raw(i)).unwrap(); // six distinct codes, crowd 1 < 10
        }
        let output = handle.finish();
        assert_eq!(output.batches.len(), 1);
        assert!(output.batches[0].batch.reports().is_empty());
        let record = output.batches[0].amplification.expect("accounting enabled");
        assert_eq!(record.released, 0);
        assert_eq!(record.crowd_size, 0);
        assert_eq!(record.guarantee.epsilon(), 0.0);
        assert_eq!(record.guarantee.delta(), 0.0);
    }

    #[test]
    fn single_shard_routing_is_panic_free() {
        // `checked_rem` routing: the smallest legal shard set must route
        // every slot without arithmetic panics.
        let handle = engine(1, 1, 4).spawn(2);
        for i in 0..9 {
            handle.submit(raw(i % 2)).unwrap();
        }
        let output = handle.finish();
        let total: usize = output.batches.iter().map(|b| b.batch.stats().received).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn empty_run_produces_no_batches() {
        let output = engine(1, 4, 8).spawn(0).finish();
        assert!(output.batches.is_empty());
    }

    #[test]
    fn submit_after_finish_is_rejected_via_fresh_handle_semantics() {
        let engine = engine(1, 2, 4);
        let first = engine.spawn(1);
        first.submit(raw(0)).unwrap();
        let _ = first.finish();
        // The engine description is reusable; each spawned handle is
        // independent.
        let second = engine.spawn(2);
        second.submit(raw(1)).unwrap();
        let output = second.finish();
        assert_eq!(output.batches.len(), 1);
    }

    #[test]
    fn flush_interval_delivers_partial_batches_while_open() {
        let engine = ShufflerEngine::builder(ShufflerConfig::new(1))
            .shards(2)
            .batch_size(1_000)
            .flush_interval(Duration::from_millis(2))
            .build()
            .unwrap();
        let handle = engine.spawn(9);
        for i in 0..5 {
            handle.submit(raw(i)).unwrap();
        }
        // Far below batch_size: only the flush interval can deliver these.
        let mut drained = Vec::new();
        for _ in 0..500 {
            drained.extend(handle.drain_ready());
            if drained
                .iter()
                .map(|b| b.batch.reports().len())
                .sum::<usize>()
                == 5
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let total: usize = drained.iter().map(|b| b.batch.reports().len()).sum();
        assert_eq!(total, 5, "flush interval must deliver partial batches");
        let rest = handle.finish();
        assert!(rest.batches.is_empty());
    }

    #[test]
    fn flush_deadline_holds_under_a_steady_trickle() {
        // Reports arrive faster than the flush interval. Because the
        // deadline anchors to the oldest buffered report (not the last
        // arrival), batches must still be delivered while the stream is
        // live — a quiet-period debounce would buffer until batch_size.
        let engine = ShufflerEngine::builder(ShufflerConfig::new(1))
            .shards(1)
            .batch_size(1_000_000)
            .flush_interval(Duration::from_millis(5))
            .build()
            .unwrap();
        let handle = engine.spawn(13);
        let mut delivered = 0usize;
        for i in 0..100 {
            handle.submit(raw(i % 3)).unwrap();
            std::thread::sleep(Duration::from_millis(1));
            delivered += handle
                .drain_ready()
                .iter()
                .map(|b| b.batch.stats().received)
                .sum::<usize>();
        }
        assert!(
            delivered > 0,
            "deadline must fire while the trickle is still arriving"
        );
        let rest = handle.finish();
        let total: usize = rest
            .batches
            .iter()
            .map(|b| b.batch.stats().received)
            .sum::<usize>()
            + delivered;
        assert_eq!(total, 100);
    }

    #[test]
    fn concurrent_producers_do_not_lose_reports() {
        let handle = engine(1, 4, 32).spawn(77);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle_ref = &handle;
                scope.spawn(move || {
                    for i in 0..200 {
                        handle_ref.submit(raw((t * 200 + i) % 9)).unwrap();
                    }
                });
            }
        });
        let output = handle.finish();
        let total: usize = output
            .batches
            .iter()
            .map(|b| b.batch.stats().received)
            .sum();
        assert_eq!(total, 800);
    }
}
