//! Error type for the shuffler crate.

use std::error::Error;
use std::fmt;

/// Error returned by shuffler construction and pipeline operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShufflerError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// A report carried an invalid reward (outside `[0, 1]` or non-finite).
    InvalidReport {
        /// Description of what was wrong with the report.
        message: String,
    },
    /// The streaming pipeline was already shut down.
    PipelineClosed,
}

impl fmt::Display for ShufflerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShufflerError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            ShufflerError::InvalidReport { message } => {
                write!(f, "invalid report: {message}")
            }
            ShufflerError::PipelineClosed => write!(f, "shuffler pipeline is closed"),
        }
    }
}

impl Error for ShufflerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ShufflerError::InvalidConfig {
            parameter: "threshold",
            message: "must be at least 1".to_owned(),
        };
        assert!(e.to_string().contains("threshold"));
        assert!(ShufflerError::PipelineClosed.to_string().contains("closed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ShufflerError>();
    }
}
