//! Seeded open-loop arrival process for the serving harness.
//!
//! `p2b-serve` drives the closed loop (pool → select → shuffle → ingest →
//! join) with traffic from this module. Two properties matter more than
//! realism:
//!
//! 1. **Pure indexing.** Event `i` is a pure function of `(seed, i)` — no
//!    shared RNG stream, no state carried between events. This is what makes
//!    the harness's deterministic summary byte-identical at *any* worker
//!    count: workers can materialize disjoint index ranges in parallel and
//!    the concatenation equals the sequential stream.
//! 2. **Skew.** Real code popularity is heavy-tailed. We model the
//!    paper-relevant shape with a two-tier Zipf-like split: a *hot head*
//!    (`hot_code_fraction` of codes) receives `hot_traffic_share` of the
//!    traffic (the classic 80/20 at the defaults), the cold tail splits the
//!    rest uniformly.
//!
//! Timestamps are open-loop: event `i` arrives at
//! `i * mean_interarrival_nanos + jitter(i)` with `jitter < mean`, so the
//! stream is strictly monotone and the offered load never adapts to the
//! system's response time (queueing delay is visible, not hidden).
//!
//! Beyond the event fields, [`ArrivalProcess::noise`] exposes the raw
//! counter-based noise lanes so consumers (the serve harness) can derive
//! *additional* per-event randomness — reward coin flips, join delays,
//! per-decision RNG seeds — from the same pure source. Lanes `0..8` are
//! reserved for the fields of [`ArrivalEvent`]; consumers should use lanes
//! `>= 8`.

use crate::error::SimError;
use crate::parallel::parallel_map;
use p2b_shuffler::splitmix64;
use serde::{Deserialize, Serialize};

/// Noise lane for the user id draw.
const LANE_USER: u64 = 0;
/// Noise lane for the hot/cold tier coin.
const LANE_TIER: u64 = 1;
/// Noise lane for the code pick within the tier.
const LANE_CODE: u64 = 2;
/// Noise lane for the inter-arrival jitter.
const LANE_JITTER: u64 = 3;

/// First noise lane free for consumers of the process (the serve harness
/// derives reward presence, join delay and per-decision RNG seeds from
/// these).
pub const LANE_CONSUMER_BASE: u64 = 8;

/// Configuration for an [`ArrivalProcess`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Number of distinct simulated users.
    pub num_users: u64,
    /// Number of distinct context codes.
    pub num_codes: u64,
    /// Fraction of codes forming the hot head (`0 < f <= 1`).
    pub hot_code_fraction: f64,
    /// Share of traffic landing on the hot head (`0 <= s <= 1`).
    pub hot_traffic_share: f64,
    /// Mean inter-arrival gap in nanoseconds (`>= 1`).
    pub mean_interarrival_nanos: u64,
    /// Seed for all noise lanes.
    pub seed: u64,
}

impl ArrivalConfig {
    /// A Zipf-like 80/20 default: 20% of codes carry 80% of traffic.
    pub fn new(num_users: u64, num_codes: u64, seed: u64) -> Self {
        Self {
            num_users,
            num_codes,
            hot_code_fraction: 0.2,
            hot_traffic_share: 0.8,
            mean_interarrival_nanos: 1_000,
            seed,
        }
    }

    /// Overrides the hot head size (fraction of codes).
    pub fn with_hot_code_fraction(mut self, fraction: f64) -> Self {
        self.hot_code_fraction = fraction;
        self
    }

    /// Overrides the share of traffic landing on the hot head.
    pub fn with_hot_traffic_share(mut self, share: f64) -> Self {
        self.hot_traffic_share = share;
        self
    }

    /// Overrides the mean inter-arrival gap in nanoseconds.
    pub fn with_mean_interarrival_nanos(mut self, nanos: u64) -> Self {
        self.mean_interarrival_nanos = nanos;
        self
    }
}

/// One arrival: user `user` presents context code `code` at
/// `timestamp_nanos` on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Position in the stream (the pure-function argument).
    pub index: u64,
    /// Simulated user id in `0..num_users`.
    pub user: u64,
    /// Context code in `0..num_codes`.
    pub code: u64,
    /// Open-loop arrival time in nanoseconds; strictly increasing in
    /// `index`.
    pub timestamp_nanos: u64,
}

/// Seeded open-loop arrival stream with two-tier Zipf-like code skew.
///
/// Every event is a pure function of `(config.seed, index)`; see the module
/// docs for why.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
    hot_codes: u64,
}

impl ArrivalProcess {
    /// Validates `config` and builds the process.
    pub fn new(config: ArrivalConfig) -> Result<Self, SimError> {
        if config.num_users == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_users",
                message: "must be at least 1".to_owned(),
            });
        }
        if config.num_codes == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_codes",
                message: "must be at least 1".to_owned(),
            });
        }
        if !(config.hot_code_fraction > 0.0 && config.hot_code_fraction <= 1.0) {
            return Err(SimError::InvalidConfig {
                parameter: "hot_code_fraction",
                message: format!("must be in (0, 1], got {}", config.hot_code_fraction),
            });
        }
        if !(0.0..=1.0).contains(&config.hot_traffic_share) {
            return Err(SimError::InvalidConfig {
                parameter: "hot_traffic_share",
                message: format!("must be in [0, 1], got {}", config.hot_traffic_share),
            });
        }
        if config.mean_interarrival_nanos == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "mean_interarrival_nanos",
                message: "must be at least 1 (timestamps must strictly increase)".to_owned(),
            });
        }
        let hot_codes = ((config.num_codes as f64 * config.hot_code_fraction).round() as u64)
            .clamp(1, config.num_codes);
        Ok(Self { config, hot_codes })
    }

    /// The configuration the process was built from.
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// Number of codes in the hot head; the hot set is `0..hot_codes()`.
    pub fn hot_codes(&self) -> u64 {
        self.hot_codes
    }

    /// Whether `code` belongs to the hot head.
    pub fn is_hot(&self, code: u64) -> bool {
        code < self.hot_codes
    }

    /// Counter-based noise: a uniform `u64` that is a pure function of
    /// `(seed, index, lane)`.
    ///
    /// Distinct lanes of the same index are independent draws, which lets
    /// consumers attach as many per-event random variables as they need
    /// without perturbing the stream itself. Lanes below
    /// [`LANE_CONSUMER_BASE`] are reserved for [`ArrivalEvent`] fields.
    pub fn noise(&self, index: u64, lane: u64) -> u64 {
        let base = splitmix64(self.config.seed ^ splitmix64(index.wrapping_add(0x51ED_270B)));
        splitmix64(base ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Materializes event `index` of the stream.
    pub fn event(&self, index: u64) -> ArrivalEvent {
        let user = bounded(self.noise(index, LANE_USER), self.config.num_users);
        let code = self.pick_code(index);
        let mean = self.config.mean_interarrival_nanos;
        // jitter < mean keeps consecutive timestamps strictly increasing:
        // t(i+1) - t(i) = mean + j(i+1) - j(i) > mean - mean = 0.
        let jitter = bounded(self.noise(index, LANE_JITTER), mean);
        ArrivalEvent {
            index,
            user,
            code,
            timestamp_nanos: index.saturating_mul(mean).saturating_add(jitter),
        }
    }

    fn pick_code(&self, index: u64) -> u64 {
        let cold_codes = self.config.num_codes - self.hot_codes;
        let hot =
            cold_codes == 0 || unit(self.noise(index, LANE_TIER)) < self.config.hot_traffic_share;
        if hot {
            bounded(self.noise(index, LANE_CODE), self.hot_codes)
        } else {
            self.hot_codes + bounded(self.noise(index, LANE_CODE), cold_codes)
        }
    }

    /// Materializes events `start..end` sequentially.
    pub fn events(&self, start: u64, end: u64) -> Vec<ArrivalEvent> {
        (start..end).map(|i| self.event(i)).collect()
    }

    /// Materializes events `start..end` on up to `workers` threads.
    ///
    /// The result is guaranteed identical to [`ArrivalProcess::events`] for
    /// every worker count — the stream is a pure function of the index, so
    /// parallelism only changes who computes each event, never its value.
    pub fn events_parallel(&self, start: u64, end: u64, workers: usize) -> Vec<ArrivalEvent> {
        let total = end.saturating_sub(start);
        if total == 0 {
            return Vec::new();
        }
        let workers = workers.max(1).min(total as usize);
        let chunk = total.div_ceil(workers as u64);
        let ranges: Vec<(u64, u64)> = (0..workers as u64)
            .map(|w| {
                let lo = start + w * chunk;
                (lo, (lo + chunk).min(end))
            })
            .filter(|(lo, hi)| lo < hi)
            .collect();
        parallel_map(ranges, workers, |(lo, hi)| self.events(lo, hi))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Maps a uniform `u64` onto `0..n` without modulo bias (fixed-point
/// multiply).
fn bounded(noise: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(noise) * u128::from(n)) >> 64) as u64
}

/// Maps a uniform `u64` onto `[0, 1)` with 53 bits of precision.
fn unit(noise: u64) -> f64 {
    (noise >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(seed: u64) -> ArrivalProcess {
        ArrivalProcess::new(ArrivalConfig::new(10_000, 50, seed)).unwrap()
    }

    #[test]
    fn validates_configuration() {
        assert!(ArrivalProcess::new(ArrivalConfig::new(0, 10, 1)).is_err());
        assert!(ArrivalProcess::new(ArrivalConfig::new(10, 0, 1)).is_err());
        assert!(
            ArrivalProcess::new(ArrivalConfig::new(10, 10, 1).with_hot_code_fraction(0.0)).is_err()
        );
        assert!(
            ArrivalProcess::new(ArrivalConfig::new(10, 10, 1).with_hot_traffic_share(1.5)).is_err()
        );
        assert!(
            ArrivalProcess::new(ArrivalConfig::new(10, 10, 1).with_mean_interarrival_nanos(0))
                .is_err()
        );
    }

    #[test]
    fn events_stay_in_range_and_timestamps_increase() {
        let p = process(7);
        let events = p.events(0, 2_000);
        for pair in events.windows(2) {
            assert!(pair[0].timestamp_nanos < pair[1].timestamp_nanos);
        }
        for e in &events {
            assert!(e.user < 10_000);
            assert!(e.code < 50);
        }
    }

    #[test]
    fn hot_head_size_is_rounded_and_clamped() {
        let p = process(1);
        assert_eq!(p.hot_codes(), 10); // 20% of 50
        let tiny =
            ArrivalProcess::new(ArrivalConfig::new(10, 3, 1).with_hot_code_fraction(0.01)).unwrap();
        assert_eq!(tiny.hot_codes(), 1);
        let all =
            ArrivalProcess::new(ArrivalConfig::new(10, 4, 1).with_hot_code_fraction(1.0)).unwrap();
        assert_eq!(all.hot_codes(), 4);
    }

    #[test]
    fn different_seeds_differ() {
        let a = process(1).events(0, 64);
        let b = process(2).events(0, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_lanes_are_independent() {
        let p = process(3);
        let a = p.noise(42, LANE_CONSUMER_BASE);
        let b = p.noise(42, LANE_CONSUMER_BASE + 1);
        let c = p.noise(43, LANE_CONSUMER_BASE);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable: same (index, lane) always yields the same draw.
        assert_eq!(a, p.noise(42, LANE_CONSUMER_BASE));
    }
}
