//! The three sharing regimes compared by the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Who shares what with the central server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// No communication at all: every agent learns from a cold start using
    /// only its own feedback (full privacy).
    Cold,
    /// Agents share raw `(x, a, r)` tuples after every interaction and
    /// warm-start from the central model (no privacy).
    WarmNonPrivate,
    /// The P2B pipeline: encoded tuples, randomized reporting, shuffler,
    /// differential privacy per Section 4.
    WarmPrivate,
}

impl Regime {
    /// All three regimes in the order the paper's figures present them.
    pub const ALL: [Regime; 3] = [Regime::Cold, Regime::WarmNonPrivate, Regime::WarmPrivate];

    /// Whether this regime involves any data leaving the device.
    #[must_use]
    pub fn shares_data(&self) -> bool {
        !matches!(self, Regime::Cold)
    }

    /// Whether this regime provides a differential-privacy guarantee.
    /// (Cold is trivially private: nothing is shared.)
    #[must_use]
    pub fn is_private(&self) -> bool {
        !matches!(self, Regime::WarmNonPrivate)
    }

    /// Stable identifier used in result files.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Regime::Cold => "cold",
            Regime::WarmNonPrivate => "warm_non_private",
            Regime::WarmPrivate => "warm_private",
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            Regime::Cold => "cold",
            Regime::WarmNonPrivate => "warm & non-private",
            Regime::WarmPrivate => "warm & private (P2B)",
        };
        f.write_str(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_regimes() {
        assert!(!Regime::Cold.shares_data());
        assert!(Regime::WarmNonPrivate.shares_data());
        assert!(Regime::WarmPrivate.shares_data());
        assert!(Regime::Cold.is_private());
        assert!(!Regime::WarmNonPrivate.is_private());
        assert!(Regime::WarmPrivate.is_private());
    }

    #[test]
    fn keys_are_distinct() {
        let keys: std::collections::HashSet<_> = Regime::ALL.iter().map(Regime::key).collect();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn display_names_mention_privacy() {
        assert_eq!(Regime::Cold.to_string(), "cold");
        assert!(Regime::WarmPrivate.to_string().contains("P2B"));
    }
}
