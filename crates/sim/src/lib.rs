//! Multi-agent simulation engine and experiment harness for P2B.
//!
//! The paper compares three regimes (Section 5):
//!
//! * **Cold** — every agent learns only from its own interactions
//!   (full privacy, no sharing).
//! * **Warm & non-private** — agents share raw `(x, a, r)` tuples with the
//!   server and warm-start from the central model (no privacy).
//! * **Warm & private (P2B)** — agents share encoded tuples `(y, a, r)`
//!   through randomized reporting and the trusted shuffler.
//!
//! This crate drives populations of agents through the three regimes over the
//! workloads from [`p2b_datasets`] and produces the metric series behind every
//! figure of the paper:
//!
//! * [`run_synthetic_population`] — average reward over a growing user
//!   population (Figures 4 and 5),
//! * [`run_logged_experiment`] — accuracy / CTR over per-agent sample streams
//!   with a train/test agent split (Figures 6 and 7),
//! * [`run_streaming_population`] — the serving-scale shape: parallel
//!   producers submitting to the sharded shuffler engine,
//! * [`outcome::SeriesPoint`] and [`write_series_json`] — serialization of
//!   result series for plotting and for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arrival;
mod error;
mod logged;
mod outcome;
mod parallel;
mod population;
mod regime;
mod streaming;
mod synthetic;

pub use arrival::{ArrivalConfig, ArrivalEvent, ArrivalProcess, LANE_CONSUMER_BASE};
pub use error::SimError;
pub use logged::{run_logged_experiment, LoggedExample, LoggedExperimentConfig};
pub use outcome::{write_series_json, RegimeOutcome, SeriesPoint};
pub use parallel::parallel_map;
pub use population::PopulationRoundPoint;
pub use regime::Regime;
pub use streaming::{run_streaming_population, StreamingConfig, StreamingOutcome};
pub use synthetic::{run_synthetic_population, PopulationConfig};
