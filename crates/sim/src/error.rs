//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

/// Error returned by experiment runners.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// An underlying P2B system operation failed.
    Core(p2b_core::CoreError),
    /// An underlying bandit operation failed.
    Bandit(p2b_bandit::BanditError),
    /// An underlying encoding operation failed.
    Encoding(p2b_encoding::EncodingError),
    /// An underlying dataset operation failed.
    Dataset(p2b_datasets::DatasetError),
    /// An underlying privacy computation failed.
    Privacy(p2b_privacy::PrivacyError),
    /// An underlying shuffler (engine) operation failed.
    Shuffler(p2b_shuffler::ShufflerError),
    /// Writing an experiment result file failed.
    Io(std::io::Error),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            SimError::Core(e) => write!(f, "p2b system failure: {e}"),
            SimError::Bandit(e) => write!(f, "bandit failure: {e}"),
            SimError::Encoding(e) => write!(f, "encoding failure: {e}"),
            SimError::Dataset(e) => write!(f, "dataset failure: {e}"),
            SimError::Privacy(e) => write!(f, "privacy failure: {e}"),
            SimError::Shuffler(e) => write!(f, "shuffler failure: {e}"),
            SimError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Bandit(e) => Some(e),
            SimError::Encoding(e) => Some(e),
            SimError::Dataset(e) => Some(e),
            SimError::Privacy(e) => Some(e),
            SimError::Shuffler(e) => Some(e),
            SimError::Io(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<p2b_core::CoreError> for SimError {
    fn from(e: p2b_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<p2b_bandit::BanditError> for SimError {
    fn from(e: p2b_bandit::BanditError) -> Self {
        SimError::Bandit(e)
    }
}

impl From<p2b_encoding::EncodingError> for SimError {
    fn from(e: p2b_encoding::EncodingError) -> Self {
        SimError::Encoding(e)
    }
}

impl From<p2b_datasets::DatasetError> for SimError {
    fn from(e: p2b_datasets::DatasetError) -> Self {
        SimError::Dataset(e)
    }
}

impl From<p2b_privacy::PrivacyError> for SimError {
    fn from(e: p2b_privacy::PrivacyError) -> Self {
        SimError::Privacy(e)
    }
}

impl From<p2b_shuffler::ShufflerError> for SimError {
    fn from(e: p2b_shuffler::ShufflerError) -> Self {
        SimError::Shuffler(e)
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::InvalidConfig {
            parameter: "num_users",
            message: "must be at least 1".to_owned(),
        };
        assert!(e.to_string().contains("num_users"));
        assert!(Error::source(&e).is_none());

        let e = SimError::from(p2b_privacy::PrivacyError::InvalidProbability {
            name: "p",
            value: 7.0,
        });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
