//! Experiments driven by logged per-agent sample streams: multi-label
//! classification (Figure 6) and Criteo-like advertising (Figure 7).

use crate::{Regime, RegimeOutcome, SimError};
use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig, RewardTracker};
use p2b_core::{P2bConfig, P2bSystem};
use p2b_datasets::{LoggedImpression, MultiLabelInstance};
use p2b_encoding::{KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_privacy::{amplified_epsilon, Participation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One logged example an agent can interact with: a context plus the reward
/// of every possible action.
///
/// Both multi-label instances (reward 1 when the proposed label is among the
/// true labels) and Criteo impressions (reward 1 when the proposed action
/// matches the logged, clicked action) satisfy this interface, which lets a
/// single experiment driver cover Figures 6 and 7.
pub trait LoggedExample: Send + Sync {
    /// The observed context.
    fn context(&self) -> &Vector;
    /// Reward of proposing `action` for this example, in `[0, 1]`.
    fn reward(&self, action: usize) -> f64;
}

impl LoggedExample for MultiLabelInstance {
    fn context(&self) -> &Vector {
        MultiLabelInstance::context(self)
    }
    fn reward(&self, action: usize) -> f64 {
        MultiLabelInstance::reward(self, action)
    }
}

impl LoggedExample for LoggedImpression {
    fn context(&self) -> &Vector {
        LoggedImpression::context(self)
    }
    fn reward(&self, action: usize) -> f64 {
        LoggedImpression::reward(self, action)
    }
}

/// Configuration of a logged-data experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggedExperimentConfig {
    /// Sharing regime to simulate.
    pub regime: Regime,
    /// Context dimension of the examples.
    pub context_dimension: usize,
    /// Number of actions (labels / product codes).
    pub num_actions: usize,
    /// Fraction of agents that participate in training / sharing; the rest
    /// are test agents whose accuracy (average reward) is reported
    /// (paper: 0.7).
    pub train_fraction: f64,
    /// Number of encoder codes `k` (paper: 2⁵ for Figures 6 and 7, 2⁷ for the
    /// second Criteo setting).
    pub num_codes: usize,
    /// Participation probability `p`.
    pub participation: f64,
    /// Local interactions `T` between reporting opportunities.
    pub local_interactions: u64,
    /// Shuffler threshold / crowd-blending `l` (paper: 10).
    pub shuffler_threshold: usize,
    /// Run a shuffling round whenever this many reports are pending.
    pub flush_every_reports: usize,
    /// LinUCB exploration parameter α.
    pub alpha: f64,
    /// Random seed.
    pub seed: u64,
}

impl LoggedExperimentConfig {
    /// Creates a configuration with the paper's defaults for the logged-data
    /// experiments: 70 % train agents, `k = 2⁵`, `p = 0.5`, `T = 10`,
    /// threshold 10, α = 1.
    #[must_use]
    pub fn new(regime: Regime, context_dimension: usize, num_actions: usize) -> Self {
        Self {
            regime,
            context_dimension,
            num_actions,
            train_fraction: 0.7,
            num_codes: 1 << 5,
            participation: 0.5,
            local_interactions: 10,
            shuffler_threshold: 10,
            // Large shuffling batches: at the scales this crate simulates, the
            // crowd-blending threshold is only meaningful when reports from
            // many agents are shuffled together, so by default (almost) all
            // training reports land in a single batch.
            flush_every_reports: 4096,
            alpha: 1.0,
            seed: 0,
        }
    }

    /// Sets the number of encoder codes `k`.
    #[must_use]
    pub fn with_num_codes(mut self, num_codes: usize) -> Self {
        self.num_codes = num_codes;
        self
    }

    /// Sets the shuffler threshold.
    #[must_use]
    pub fn with_shuffler_threshold(mut self, threshold: usize) -> Self {
        self.shuffler_threshold = threshold;
        self
    }

    /// Sets the train fraction.
    #[must_use]
    pub fn with_train_fraction(mut self, train_fraction: f64) -> Self {
        self.train_fraction = train_fraction;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.context_dimension == 0 || self.num_actions == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "dimensions",
                message: "context_dimension and num_actions must be at least 1".to_owned(),
            });
        }
        if !(0.0..1.0).contains(&self.train_fraction) || self.train_fraction <= 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "train_fraction",
                message: format!(
                    "must lie strictly inside (0, 1), got {}",
                    self.train_fraction
                ),
            });
        }
        if self.num_codes == 0 || self.local_interactions == 0 || self.flush_every_reports == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_codes/local_interactions/flush_every_reports",
                message: "must all be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Runs one regime over per-agent streams of logged examples and returns the
/// test-agent outcome (accuracy for multi-label data, CTR for Criteo data).
///
/// `agent_samples[i]` is the sequence of examples agent `i` interacts with.
/// The first `train_fraction` of the agents are training agents: in the warm
/// regimes they share data (raw or via P2B) and build the central model. The
/// remaining agents are test agents: they start from the final central model
/// (or cold, in the cold regime) and their average reward is what the figure
/// reports.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for invalid configurations or when
/// fewer than two agents are provided, and propagates system errors.
pub fn run_logged_experiment<E: LoggedExample>(
    agent_samples: &[Vec<E>],
    config: LoggedExperimentConfig,
) -> Result<RegimeOutcome, SimError> {
    config.validate()?;
    if agent_samples.len() < 2 {
        return Err(SimError::InvalidConfig {
            parameter: "agent_samples",
            message: "need at least two agents (one train, one test)".to_owned(),
        });
    }
    let num_train = ((agent_samples.len() as f64) * config.train_fraction)
        .round()
        .clamp(1.0, (agent_samples.len() - 1) as f64) as usize;
    let (train_agents, test_agents) = agent_samples.split_at(num_train);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tracker = RewardTracker::new();
    let local_config =
        LinUcbConfig::new(config.context_dimension, config.num_actions).with_alpha(config.alpha);

    let (reports_to_server, epsilon) = match config.regime {
        Regime::Cold => {
            for samples in test_agents {
                let mut policy = LinUcb::new(local_config)?;
                run_agent_locally(&mut policy, samples, &mut tracker, &mut rng)?;
            }
            (0, Some(0.0))
        }
        Regime::WarmNonPrivate => {
            let mut central = LinUcb::new(local_config)?;
            let mut shared = 0u64;
            let participation = Participation::new(config.participation)?;
            for samples in train_agents {
                let mut policy = LinUcb::new(local_config)?;
                policy.merge(&central)?;
                for (step, example) in samples.iter().enumerate() {
                    let context = example.context();
                    let action = policy.select_action(context, &mut rng)?;
                    let reward = example.reward(action.index());
                    policy.update(context, action, reward)?;
                    // Same reporting cadence as P2B (every T interactions,
                    // with probability p), but the raw context is shared;
                    // see DESIGN.md for the rationale.
                    if (step as u64 + 1) % config.local_interactions == 0
                        && rand::Rng::gen::<f64>(&mut rng) < participation.value()
                    {
                        central.update(context, action, reward)?;
                        shared += 1;
                    }
                }
            }
            for samples in test_agents {
                let mut policy = LinUcb::new(local_config)?;
                policy.merge(&central)?;
                run_agent_locally(&mut policy, samples, &mut tracker, &mut rng)?;
            }
            (shared, None)
        }
        Regime::WarmPrivate => {
            // Fit the encoder on the training agents' contexts (public side
            // information in the paper's setup: the encoder is fitted once and
            // shipped to devices).
            let corpus: Vec<Vector> = train_agents
                .iter()
                .flat_map(|samples| samples.iter().map(|e| e.context().clone()))
                .collect();
            if corpus.len() < config.num_codes {
                return Err(SimError::InvalidConfig {
                    parameter: "num_codes",
                    message: format!(
                        "training corpus has {} contexts, fewer than num_codes = {}",
                        corpus.len(),
                        config.num_codes
                    ),
                });
            }
            let encoder = KMeansEncoder::fit(
                &corpus,
                KMeansConfig::new(config.num_codes).with_iterations(30),
                &mut rng,
            )?;
            let p2b_config = P2bConfig::new(config.context_dimension, config.num_actions)
                .with_alpha(config.alpha)
                .with_participation(config.participation)
                .with_local_interactions(config.local_interactions)
                .with_shuffler_threshold(config.shuffler_threshold);
            let mut system = P2bSystem::new(p2b_config, Arc::new(encoder))?;

            for samples in train_agents {
                let mut agent = system.make_agent(&mut rng)?;
                for example in samples {
                    let context = example.context();
                    let action = agent.select_action(context, &mut rng)?;
                    let reward = example.reward(action.index());
                    agent.observe_reward(context, action, reward, &mut rng)?;
                }
                system.collect_from(&mut agent);
                if system.pending_reports() >= config.flush_every_reports {
                    system.flush_round(&mut rng)?;
                }
            }
            system.flush_round(&mut rng)?;

            for samples in test_agents {
                let mut agent = system.make_agent(&mut rng)?;
                for example in samples {
                    let context = example.context();
                    let action = agent.select_action(context, &mut rng)?;
                    let reward = example.reward(action.index());
                    agent.observe_reward(context, action, reward, &mut rng)?;
                    tracker.record(reward);
                }
            }
            let epsilon = amplified_epsilon(Participation::new(config.participation)?, 0.0)?;
            (system.server().ingested_reports(), Some(epsilon))
        }
    };

    Ok(RegimeOutcome {
        regime: config.regime,
        average_reward: tracker.average_reward(),
        reward_stddev: tracker.reward_stddev(),
        cumulative_regret: tracker.cumulative_regret(),
        interactions: tracker.count(),
        reports_to_server,
        epsilon,
    })
}

/// Runs one agent over its samples with a standalone policy, recording rewards.
fn run_agent_locally<E: LoggedExample>(
    policy: &mut LinUcb,
    samples: &[E],
    tracker: &mut RewardTracker,
    rng: &mut StdRng,
) -> Result<(), SimError> {
    for example in samples {
        let context = example.context();
        let action = policy.select_action(context, rng)?;
        let reward = example.reward(action.index());
        policy.update(context, action, reward)?;
        tracker.record(reward);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_datasets::{MultiLabelConfig, MultiLabelDataset};

    /// Builds per-agent sample lists from a small clustered multi-label dataset.
    fn agent_samples(
        num_agents: usize,
        per_agent: usize,
        seed: u64,
    ) -> Vec<Vec<MultiLabelInstance>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = MultiLabelDataset::generate(
            MultiLabelConfig::new(num_agents * per_agent, 6, 5),
            &mut rng,
        )
        .unwrap();
        dataset
            .split_agents(num_agents, per_agent, &mut rng)
            .unwrap()
    }

    fn config(regime: Regime) -> LoggedExperimentConfig {
        LoggedExperimentConfig::new(regime, 6, 5)
            .with_num_codes(8)
            .with_shuffler_threshold(2)
            .with_seed(7)
    }

    #[test]
    fn validates_configuration_and_inputs() {
        let samples = agent_samples(4, 10, 0);
        let mut bad = config(Regime::Cold);
        bad.train_fraction = 1.5;
        assert!(run_logged_experiment(&samples, bad).is_err());
        let single: Vec<Vec<MultiLabelInstance>> = samples[..1].to_vec();
        assert!(run_logged_experiment(&single, config(Regime::Cold)).is_err());
        // Too many codes for the tiny training corpus.
        let too_many_codes = config(Regime::WarmPrivate).with_num_codes(10_000);
        assert!(run_logged_experiment(&samples, too_many_codes).is_err());
    }

    #[test]
    fn all_regimes_produce_valid_outcomes() {
        let samples = agent_samples(20, 25, 1);
        for regime in Regime::ALL {
            let outcome = run_logged_experiment(&samples, config(regime)).unwrap();
            assert!(outcome.average_reward >= 0.0 && outcome.average_reward <= 1.0);
            assert!(outcome.interactions > 0);
            match regime {
                Regime::Cold => {
                    assert_eq!(outcome.reports_to_server, 0);
                    assert_eq!(outcome.epsilon, Some(0.0));
                }
                Regime::WarmNonPrivate => {
                    assert!(outcome.reports_to_server > 0);
                    assert_eq!(outcome.epsilon, None);
                }
                Regime::WarmPrivate => {
                    assert!(outcome.epsilon.unwrap() > 0.0);
                }
            }
        }
    }

    #[test]
    fn test_interactions_only_cover_test_agents() {
        let samples = agent_samples(10, 20, 2);
        let outcome = run_logged_experiment(&samples, config(Regime::Cold)).unwrap();
        // 10 agents, 70% train → 7 train, 3 test agents × 20 samples each.
        assert_eq!(outcome.interactions, 60);
    }

    #[test]
    fn warm_non_private_beats_cold_on_clustered_data() {
        let samples = agent_samples(80, 40, 3);
        let cold = run_logged_experiment(&samples, config(Regime::Cold)).unwrap();
        let warm = run_logged_experiment(&samples, config(Regime::WarmNonPrivate)).unwrap();
        assert!(
            warm.average_reward > cold.average_reward,
            "warm {:.3} should beat cold {:.3}",
            warm.average_reward,
            cold.average_reward
        );
    }

    #[test]
    fn reproducible_for_a_fixed_seed() {
        let samples = agent_samples(12, 15, 4);
        let a = run_logged_experiment(&samples, config(Regime::WarmPrivate)).unwrap();
        let b = run_logged_experiment(&samples, config(Regime::WarmPrivate)).unwrap();
        assert_eq!(a, b);
    }
}
