//! Streaming collection: many parallel producers feeding the sharded
//! shuffler engine.
//!
//! [`crate::run_synthetic_population`] drives the *synchronous* round-based
//! pipeline one agent at a time — the right shape for reproducing the
//! paper's figures deterministically. This module exercises the
//! serving-scale shape instead: agent populations are simulated on
//! [`crate::parallel_map`] worker threads, every worker submits its reports
//! straight into the [`p2b_shuffler::ShufflerEngine`] spawned from the
//! system configuration, and the engine's merged, threshold-filtered batches
//! are folded into the central model with per-batch (ε, δ) accounting.
//!
//! Model-side, every delivered batch goes through the coalescing ingester
//! ([`p2b_core::P2bSystem::ingest_engine_batch`]): reports are grouped by
//! `(code, action)` and dispatched to the model service's ingest shards
//! ([`p2b_core::P2bConfig::ingest_shards`]) as weighted sufficient-statistics
//! updates, and the agents created for the wave all share the epoch's
//! central-model snapshot instead of merging their own copy.

use crate::{parallel_map, PopulationRoundPoint, SimError};
use p2b_core::{JoinStats, P2bSystem, PoolStats, RoundStats};
use p2b_datasets::{
    ChurnConfig, ContextualEnvironment, DriftConfig, SyntheticConfig,
    SyntheticPreferenceEnvironment,
};
use p2b_privacy::AmplificationLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one streaming collection wave.
///
/// The wave runs in one of two shapes, selected by the non-stationary
/// knobs ([`StreamingConfig::is_non_stationary`]):
///
/// * **Stationary** (all knobs off — the default): one long-lived agent per
///   user, simulated on parallel producer threads; `interactions_per_user`
///   sequential interactions each. This is the historical shape and is
///   bit-for-bit unchanged by the knobs' existence.
/// * **Non-stationary / pooled** (any knob set): a round-based serving
///   simulation where `interactions_per_user` becomes the number of
///   *rounds*, each active user interacts once per round, agents live in a
///   bounded [`p2b_core::AgentPool`] keyed by context code, rewards join
///   late through a [`p2b_core::RewardJoinBuffer`], and the population
///   evolves under churn while preferences drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Number of users simulated in this wave (the *initial* population
    /// when churn is enabled).
    pub num_users: usize,
    /// Local interactions per user (stationary shape) or rounds of the wave
    /// (non-stationary shape, one interaction per active user per round).
    pub interactions_per_user: u64,
    /// Producer threads submitting to the engine concurrently (stationary
    /// shape only; the pooled shape is a deterministic sequential driver).
    pub producers: usize,
    /// Seed for the engine and every per-user RNG.
    pub seed: u64,
    /// Residency budget of the agent pool (`None` = unbounded). Setting it
    /// selects the pooled shape.
    pub max_resident_agents: Option<usize>,
    /// Storage shards of the agent pool.
    pub pool_shards: usize,
    /// Join window for delayed rewards, in rounds. `0` joins everything
    /// in-round; larger windows deliver rewards late (and lose some —
    /// see [`crate::run_streaming_population`]). Non-zero selects the
    /// pooled shape.
    pub max_reward_delay: u64,
    /// User churn knobs (`initial_users` is overridden by `num_users`).
    /// Setting them selects the pooled shape.
    pub churn: Option<ChurnConfig>,
    /// Preference-drift knobs. Setting them selects the pooled shape.
    pub drift: Option<DriftConfig>,
}

impl StreamingConfig {
    /// Creates a configuration with `T = 10` interactions, 4 producers and
    /// every non-stationary knob off.
    #[must_use]
    pub fn new(num_users: usize) -> Self {
        Self {
            num_users,
            interactions_per_user: 10,
            producers: 4,
            seed: 0,
            max_resident_agents: None,
            pool_shards: 1,
            max_reward_delay: 0,
            churn: None,
            drift: None,
        }
    }

    /// Sets the local interactions per user.
    #[must_use]
    pub fn with_interactions_per_user(mut self, interactions: u64) -> Self {
        self.interactions_per_user = interactions;
        self
    }

    /// Sets the number of producer threads.
    #[must_use]
    pub fn with_producers(mut self, producers: usize) -> Self {
        self.producers = producers;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the agent pool's residency (selects the pooled shape).
    #[must_use]
    pub fn with_max_resident_agents(mut self, budget: usize) -> Self {
        self.max_resident_agents = Some(budget);
        self
    }

    /// Sets the agent pool's storage-shard count.
    #[must_use]
    pub fn with_pool_shards(mut self, shards: usize) -> Self {
        self.pool_shards = shards;
        self
    }

    /// Sets the delayed-reward join window (selects the pooled shape when
    /// non-zero).
    #[must_use]
    pub fn with_max_reward_delay(mut self, rounds: u64) -> Self {
        self.max_reward_delay = rounds;
        self
    }

    /// Enables user churn (selects the pooled shape).
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enables preference drift (selects the pooled shape).
    #[must_use]
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Whether any non-stationary knob selects the pooled round-based shape.
    #[must_use]
    pub fn is_non_stationary(&self) -> bool {
        self.max_resident_agents.is_some()
            || self.max_reward_delay > 0
            || self.churn.is_some()
            || self.drift.is_some()
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_users",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.interactions_per_user == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "interactions_per_user",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.pool_shards == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "pool_shards",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Everything one streaming collection wave produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingOutcome {
    /// Per-delivered-batch statistics, in delivery order.
    pub round_stats: Vec<RoundStats>,
    /// The engine's per-batch (ε, δ) amplification ledger.
    pub ledger: AmplificationLedger,
    /// Average realized reward over every simulated interaction.
    pub average_reward: f64,
    /// Total simulated interactions.
    pub interactions: u64,
    /// Reports submitted to the engine across all producers.
    pub submitted: u64,
    /// Per-round reward/regret/population series (pooled shape only;
    /// empty for the stationary shape).
    pub series: Vec<PopulationRoundPoint>,
    /// Agent-pool counters (pooled shape only).
    pub pool: Option<PoolStats>,
    /// Delayed-reward join counters (pooled shape only).
    pub joins: Option<JoinStats>,
}

/// Per-user result accumulated on the producer threads.
struct UserRun {
    reward_sum: f64,
    interactions: u64,
    submitted: u64,
}

/// Simulates a population of users on `producers` threads, streams their
/// reports through the system's sharded shuffler engine, and folds every
/// delivered batch into the central model.
///
/// The engine's shard count and batch size come from the system
/// configuration ([`p2b_core::P2bConfig::shuffler_shards`] /
/// [`p2b_core::P2bConfig::shuffler_batch_size`]). Report *submission* is
/// concurrent and unordered — which is exactly what the shuffler is designed
/// to absorb — so aggregate statistics (reports conserved, rewards averaged)
/// are reproducible while batch contents are not.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for invalid configurations and
/// propagates environment, engine and server errors.
pub fn run_streaming_population(
    system: &mut P2bSystem,
    env_config: SyntheticConfig,
    config: StreamingConfig,
) -> Result<StreamingOutcome, SimError> {
    config.validate()?;
    if config.is_non_stationary() {
        return crate::population::run_pooled_population(system, env_config, config);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Agents are created up front (they snapshot the current central model);
    // their interactions then run embarrassingly parallel.
    let agents = (0..config.num_users)
        .map(|_| system.make_agent(&mut rng))
        .collect::<Result<Vec<_>, _>>()?;

    let handle = system.spawn_engine(config.seed)?;
    let handle_ref = &handle;
    let interactions = config.interactions_per_user;
    let seed = config.seed;

    // One shared preference model for the whole population: built once,
    // cloned per user (the clone carries the preference matrices; each
    // user's interaction randomness comes from its own RNG stream).
    let env_prototype =
        SyntheticPreferenceEnvironment::new(env_config, &mut StdRng::seed_from_u64(seed))?;
    let env_ref = &env_prototype;

    let runs = parallel_map(
        agents.into_iter().enumerate().collect(),
        config.producers,
        move |(user, mut agent)| -> Result<UserRun, SimError> {
            let mut env = env_ref.clone();
            let mut user_rng = StdRng::seed_from_u64(
                seed ^ (user as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(1),
            );
            let mut reward_sum = 0.0f64;
            for _ in 0..interactions {
                let context = env.sample_context(&mut user_rng);
                let action = agent.select_action(&context, &mut user_rng)?;
                let reward = env.sample_reward(&context, action.index(), &mut user_rng)?;
                agent.observe_reward(&context, action, reward, &mut user_rng)?;
                reward_sum += reward;
            }
            let reports = agent.take_reports();
            let submitted = reports.len() as u64;
            for report in reports {
                handle_ref.submit(report)?;
            }
            Ok(UserRun {
                reward_sum,
                interactions,
                submitted,
            })
        },
    );

    let mut reward_sum = 0.0f64;
    let mut total_interactions = 0u64;
    let mut submitted = 0u64;
    for run in runs {
        let run = run?;
        reward_sum += run.reward_sum;
        total_interactions += run.interactions;
        submitted += run.submitted;
    }

    let output = handle.finish();
    let mut round_stats = Vec::with_capacity(output.batches.len());
    for batch in &output.batches {
        round_stats.push(system.ingest_engine_batch(batch)?);
    }
    let ledger = output
        .ledger
        .expect("P2bSystem::spawn_engine always enables accounting");

    Ok(StreamingOutcome {
        round_stats,
        ledger,
        average_reward: if total_interactions == 0 {
            0.0
        } else {
            reward_sum / total_interactions as f64
        },
        interactions: total_interactions,
        submitted,
        series: Vec::new(),
        pool: None,
        joins: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_core::P2bConfig;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use p2b_linalg::Vector;
    use std::sync::Arc;

    fn system(shards: usize, threshold: usize) -> P2bSystem {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus: Vec<Vector> = (0..256)
            .map(|_| {
                let env_config = SyntheticConfig::new(4, 3);
                let mut env = SyntheticPreferenceEnvironment::new(env_config, &mut rng).unwrap();
                env.sample_context(&mut rng)
            })
            .collect();
        let encoder =
            Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(8), &mut rng).unwrap());
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(2)
            .with_shuffler_threshold(threshold)
            .with_shuffler_shards(shards)
            .with_shuffler_batch_size(32)
            // Scale the model service together with the shuffler so the
            // wave exercises the full sharded ingestion path.
            .with_ingest_shards(shards);
        P2bSystem::new(config, encoder).unwrap()
    }

    #[test]
    fn validates_configuration() {
        let mut sys = system(1, 1);
        let env = SyntheticConfig::new(4, 3);
        assert!(run_streaming_population(&mut sys, env, StreamingConfig::new(0)).is_err());
        assert!(run_streaming_population(
            &mut sys,
            env,
            StreamingConfig::new(5).with_interactions_per_user(0)
        )
        .is_err());
    }

    #[test]
    fn streaming_wave_conserves_reports_across_shard_counts() {
        for shards in [1usize, 2, 4] {
            let mut sys = system(shards, 1);
            let env = SyntheticConfig::new(4, 3);
            let outcome = run_streaming_population(
                &mut sys,
                env,
                StreamingConfig::new(40)
                    .with_interactions_per_user(4)
                    .with_producers(4)
                    .with_seed(9),
            )
            .unwrap();
            assert_eq!(outcome.interactions, 160);
            assert!(outcome.average_reward >= 0.0 && outcome.average_reward <= 1.0);
            let received: u64 = outcome.round_stats.iter().map(|s| s.received as u64).sum();
            assert_eq!(
                received, outcome.submitted,
                "engine must conserve reports at {shards} shards"
            );
            // Threshold 1: everything released and accepted by the server.
            let accepted: u64 = outcome.round_stats.iter().map(|s| s.accepted).sum();
            assert_eq!(accepted, outcome.submitted);
            assert_eq!(sys.server().ingested_reports(), accepted);
            assert_eq!(outcome.ledger.total_released() as u64, accepted);
        }
    }

    #[test]
    fn ledger_records_every_delivered_batch() {
        let mut sys = system(2, 2);
        let env = SyntheticConfig::new(4, 3);
        let outcome = run_streaming_population(
            &mut sys,
            env,
            StreamingConfig::new(60)
                .with_interactions_per_user(2)
                .with_producers(3)
                .with_seed(4),
        )
        .unwrap();
        assert_eq!(outcome.ledger.records().len(), outcome.round_stats.len());
        assert!(
            (outcome.ledger.per_report_epsilon() - std::f64::consts::LN_2).abs() < 1e-12,
            "p = 0.5 must give the paper's headline ε = ln 2"
        );
        // Any batch that released reports achieved at least the configured
        // crowd-blending threshold.
        for record in outcome.ledger.records() {
            if record.released > 0 {
                assert!(record.crowd_size >= 2);
            }
        }
    }
}
