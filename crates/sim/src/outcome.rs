//! Experiment outcome types and result-file helpers.

use crate::{Regime, SimError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The aggregate outcome of running one regime over one workload setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeOutcome {
    /// The regime that produced this outcome.
    pub regime: Regime,
    /// Mean observed reward (average reward / accuracy / CTR depending on the
    /// workload).
    pub average_reward: f64,
    /// Standard deviation of the observed rewards.
    pub reward_stddev: f64,
    /// Cumulative regret against the per-round optimum, when the workload can
    /// expose it (synthetic benchmark); 0 otherwise.
    pub cumulative_regret: f64,
    /// Total interactions simulated.
    pub interactions: u64,
    /// Number of report tuples that reached the central server.
    pub reports_to_server: u64,
    /// The per-report ε of the privacy guarantee: `Some(0.0)` for the cold
    /// regime (nothing is shared), `Some(ε)` for P2B, and `None` for the
    /// non-private regime, which offers no differential-privacy guarantee.
    pub epsilon: Option<f64>,
}

/// One point of a figure's data series: an x value (population size, context
/// dimension, local interactions, …) plus the outcome of every regime at that
/// x value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Name of the swept parameter (e.g. `"num_users"`).
    pub parameter: String,
    /// Value of the swept parameter at this point.
    pub value: f64,
    /// Outcomes, one per regime.
    pub outcomes: Vec<RegimeOutcome>,
}

impl SeriesPoint {
    /// Creates a series point.
    #[must_use]
    pub fn new(parameter: impl Into<String>, value: f64, outcomes: Vec<RegimeOutcome>) -> Self {
        Self {
            parameter: parameter.into(),
            value,
            outcomes,
        }
    }

    /// The outcome of a specific regime at this point, if present.
    #[must_use]
    pub fn outcome(&self, regime: Regime) -> Option<&RegimeOutcome> {
        self.outcomes.iter().find(|o| o.regime == regime)
    }
}

/// Writes a result series as pretty-printed JSON, creating parent directories
/// as needed. Figure binaries use this to persist the data behind each plot.
///
/// # Errors
///
/// Returns [`SimError::Io`] for filesystem failures.
pub fn write_series_json(path: &Path, series: &[SeriesPoint]) -> Result<(), SimError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(series).map_err(|e| SimError::InvalidConfig {
        parameter: "series",
        message: format!("serialization failed: {e}"),
    })?;
    std::fs::write(path, json)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(regime: Regime, reward: f64) -> RegimeOutcome {
        RegimeOutcome {
            regime,
            average_reward: reward,
            reward_stddev: 0.0,
            cumulative_regret: 0.0,
            interactions: 10,
            reports_to_server: 5,
            epsilon: Some(0.693),
        }
    }

    #[test]
    fn series_point_lookup_by_regime() {
        let point = SeriesPoint::new(
            "num_users",
            100.0,
            vec![
                outcome(Regime::Cold, 0.1),
                outcome(Regime::WarmPrivate, 0.2),
            ],
        );
        assert_eq!(point.outcome(Regime::Cold).unwrap().average_reward, 0.1);
        assert!(point.outcome(Regime::WarmNonPrivate).is_none());
    }

    #[test]
    fn json_round_trip_via_file() {
        let dir = std::env::temp_dir().join("p2b_sim_outcome_test");
        let path = dir.join("nested").join("series.json");
        let series = vec![SeriesPoint::new(
            "d",
            6.0,
            vec![outcome(Regime::WarmPrivate, 0.05)],
        )];
        write_series_json(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<SeriesPoint> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, series);
        std::fs::remove_dir_all(&dir).ok();
    }
}
