//! Minimal scoped-thread parallel map for experiment sweeps.

/// Applies `f` to every item of `inputs`, running up to `max_threads` items
/// concurrently, and returns the results in input order.
///
/// Experiment sweeps (over population sizes, context dimensions or action
/// counts) are embarrassingly parallel because each setting owns its own
/// environment, encoder and server; this helper keeps the figure binaries'
/// wall-clock time reasonable without pulling in a task-scheduling
/// dependency.
///
/// `max_threads == 0` is treated as 1. Panics inside `f` propagate.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let max_threads = max_threads.max(1);
    let total = inputs.len();
    if total == 0 {
        return Vec::new();
    }
    if max_threads == 1 || total == 1 {
        return inputs.into_iter().map(f).collect();
    }

    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    // Work items carry their original index so results keep input order.
    let work: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(inputs.into_iter().enumerate().rev().collect());
    let results_mutex = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..max_threads.min(total) {
            scope.spawn(|| loop {
                let item = work.lock().expect("work queue poisoned").pop();
                match item {
                    Some((index, input)) => {
                        let output = f(input);
                        results_mutex.lock().expect("results poisoned")[index] = Some(output);
                    }
                    None => break,
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index is filled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let outputs = parallel_map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(outputs, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![1, 2, 3], 0, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(vec![7], 16, |x| x - 7), vec![0]);
    }

    #[test]
    fn actually_runs_work_from_multiple_threads() {
        let ids = parallel_map((0..64).collect::<Vec<_>>(), 8, |_| {
            // Keep each work item busy long enough that a single worker cannot
            // drain the whole queue before the others have started.
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected more than one worker thread");
    }
}
