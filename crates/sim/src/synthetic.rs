//! Population simulation over the synthetic preference benchmark
//! (Figures 4 and 5 of the paper).

use crate::{Regime, RegimeOutcome, SimError};
use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig, RewardTracker};
use p2b_core::{P2bConfig, P2bSystem};
use p2b_datasets::{ContextualEnvironment, SyntheticConfig, SyntheticPreferenceEnvironment};
use p2b_encoding::{KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_privacy::{amplified_epsilon, Participation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of one population run (one regime at one population size).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Sharing regime to simulate.
    pub regime: Regime,
    /// Number of users `U`.
    pub num_users: usize,
    /// Local interactions per user `T`.
    pub interactions_per_user: u64,
    /// Number of encoder codes `k` (paper: 2¹⁰ for the synthetic benchmark).
    pub num_codes: usize,
    /// Participation probability `p`.
    pub participation: f64,
    /// Shuffler threshold / crowd-blending `l`.
    pub shuffler_threshold: usize,
    /// Run a shuffling round whenever this many reports are pending.
    pub flush_every_reports: usize,
    /// Number of contexts sampled to fit the k-means encoder.
    pub encoder_corpus_size: usize,
    /// LinUCB exploration parameter α.
    pub alpha: f64,
    /// Random seed (environment, encoder and all agents derive from it).
    pub seed: u64,
}

impl PopulationConfig {
    /// Creates a configuration with the paper's synthetic-benchmark defaults:
    /// `T = 10`, `k = 2¹⁰`, `p = 0.5`, threshold 10, α = 1.
    #[must_use]
    pub fn new(regime: Regime, num_users: usize) -> Self {
        Self {
            regime,
            num_users,
            interactions_per_user: 10,
            num_codes: 1 << 10,
            participation: 0.5,
            shuffler_threshold: 10,
            flush_every_reports: 256,
            encoder_corpus_size: 4096,
            alpha: 1.0,
            seed: 0,
        }
    }

    /// Sets the number of local interactions per user.
    #[must_use]
    pub fn with_interactions_per_user(mut self, interactions: u64) -> Self {
        self.interactions_per_user = interactions;
        self
    }

    /// Sets the number of encoder codes `k`.
    #[must_use]
    pub fn with_num_codes(mut self, num_codes: usize) -> Self {
        self.num_codes = num_codes;
        self
    }

    /// Sets the shuffler threshold.
    #[must_use]
    pub fn with_shuffler_threshold(mut self, threshold: usize) -> Self {
        self.shuffler_threshold = threshold;
        self
    }

    /// Sets the encoder training corpus size.
    #[must_use]
    pub fn with_encoder_corpus_size(mut self, size: usize) -> Self {
        self.encoder_corpus_size = size;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_users",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.interactions_per_user == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "interactions_per_user",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_codes == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_codes",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.flush_every_reports == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "flush_every_reports",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.encoder_corpus_size < self.num_codes {
            return Err(SimError::InvalidConfig {
                parameter: "encoder_corpus_size",
                message: format!(
                    "must be at least num_codes ({}), got {}",
                    self.num_codes, self.encoder_corpus_size
                ),
            });
        }
        Ok(())
    }
}

/// Runs one regime over the synthetic preference benchmark with a population
/// of `U` users, each observing `T` interactions, and returns the aggregate
/// outcome. This is the primitive behind Figures 4 and 5.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for invalid configurations and
/// propagates environment / system errors.
pub fn run_synthetic_population(
    env_config: SyntheticConfig,
    config: PopulationConfig,
) -> Result<RegimeOutcome, SimError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut env = SyntheticPreferenceEnvironment::new(env_config, &mut rng)?;
    let mut tracker = RewardTracker::new();
    // Pseudo-regret is measured against *expected* rewards so that reward
    // noise (which can push a realized reward above the optimal mean) never
    // makes the cumulative regret negative.
    let mut regret = 0.0f64;

    let local_config = LinUcbConfig::new(env_config.context_dimension, env_config.num_actions)
        .with_alpha(config.alpha);

    let (reports_to_server, epsilon) = match config.regime {
        Regime::Cold => {
            for _ in 0..config.num_users {
                let mut policy = LinUcb::new(local_config)?;
                simulate_user(
                    &mut env,
                    &mut policy,
                    config.interactions_per_user,
                    &mut tracker,
                    &mut regret,
                    &mut rng,
                )?;
            }
            (0, Some(0.0))
        }
        Regime::WarmNonPrivate => {
            let mut central = LinUcb::new(local_config)?;
            let mut shared = 0u64;
            let participation = Participation::new(config.participation)?;
            for _ in 0..config.num_users {
                let mut policy = LinUcb::new(local_config)?;
                policy.merge(&central)?;
                for step in 0..config.interactions_per_user {
                    let context = env.sample_context(&mut rng);
                    let action = policy.select_action(&context, &mut rng)?;
                    let reward = env.sample_reward(&context, action.index(), &mut rng)?;
                    let expected = env.expected_reward(&context, action.index())?;
                    let optimum = env.optimal_reward(&context)?;
                    policy.update(&context, action, reward)?;
                    // Non-private agents follow the same reporting cadence as
                    // P2B (one opportunity every T interactions, taken with
                    // probability p) but send the *raw* context vector. This
                    // isolates the cost of the encoding + shuffling privacy
                    // machinery from the amount of shared data; see DESIGN.md.
                    if (step + 1) % config.interactions_per_user.min(10) == 0
                        && rand::Rng::gen::<f64>(&mut rng) < participation.value()
                    {
                        central.update(&context, action, reward)?;
                        shared += 1;
                    }
                    tracker.record(reward);
                    regret += optimum - expected;
                }
            }
            (shared, None)
        }
        Regime::WarmPrivate => {
            // Fit the encoder on a public corpus of contexts drawn from the
            // same distribution (uniform over the simplex).
            let corpus: Vec<Vector> = (0..config.encoder_corpus_size)
                .map(|_| env.sample_context(&mut rng))
                .collect();
            let encoder = KMeansEncoder::fit(
                &corpus,
                KMeansConfig::new(config.num_codes).with_iterations(30),
                &mut rng,
            )?;
            let p2b_config = P2bConfig::new(env_config.context_dimension, env_config.num_actions)
                .with_alpha(config.alpha)
                .with_participation(config.participation)
                .with_local_interactions(config.interactions_per_user.min(10))
                .with_shuffler_threshold(config.shuffler_threshold);
            let mut system = P2bSystem::new(p2b_config, Arc::new(encoder))?;
            for _ in 0..config.num_users {
                let mut agent = system.make_agent(&mut rng)?;
                for _ in 0..config.interactions_per_user {
                    let context = env.sample_context(&mut rng);
                    let action = agent.select_action(&context, &mut rng)?;
                    let reward = env.sample_reward(&context, action.index(), &mut rng)?;
                    let expected = env.expected_reward(&context, action.index())?;
                    let optimum = env.optimal_reward(&context)?;
                    agent.observe_reward(&context, action, reward, &mut rng)?;
                    tracker.record(reward);
                    regret += optimum - expected;
                }
                system.collect_from(&mut agent);
                if system.pending_reports() >= config.flush_every_reports {
                    system.flush_round(&mut rng)?;
                }
            }
            system.flush_round(&mut rng)?;
            let epsilon = amplified_epsilon(Participation::new(config.participation)?, 0.0)?;
            (system.server().ingested_reports(), Some(epsilon))
        }
    };

    Ok(RegimeOutcome {
        regime: config.regime,
        average_reward: tracker.average_reward(),
        reward_stddev: tracker.reward_stddev(),
        cumulative_regret: regret,
        interactions: tracker.count(),
        reports_to_server,
        epsilon,
    })
}

/// Runs one user's local interactions with a standalone policy (cold regime).
fn simulate_user(
    env: &mut SyntheticPreferenceEnvironment,
    policy: &mut LinUcb,
    interactions: u64,
    tracker: &mut RewardTracker,
    regret: &mut f64,
    rng: &mut StdRng,
) -> Result<(), SimError> {
    for _ in 0..interactions {
        let context = env.sample_context(rng);
        let action = policy.select_action(&context, rng)?;
        let reward = env.sample_reward(&context, action.index(), rng)?;
        let expected = env.expected_reward(&context, action.index())?;
        let optimum = env.optimal_reward(&context)?;
        policy.update(&context, action, reward)?;
        tracker.record(reward);
        *regret += optimum - expected;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(regime: Regime, users: usize) -> PopulationConfig {
        PopulationConfig::new(regime, users)
            .with_interactions_per_user(10)
            .with_num_codes(16)
            .with_encoder_corpus_size(256)
            .with_shuffler_threshold(2)
            .with_seed(42)
    }

    #[test]
    fn validates_configuration() {
        let env = SyntheticConfig::new(4, 5);
        assert!(run_synthetic_population(env, small_config(Regime::Cold, 0)).is_err());
        let mut bad = small_config(Regime::WarmPrivate, 10);
        bad.encoder_corpus_size = 4;
        assert!(run_synthetic_population(env, bad).is_err());
    }

    #[test]
    fn all_regimes_produce_rewards_in_range() {
        let env = SyntheticConfig::new(4, 5);
        for regime in Regime::ALL {
            let outcome = run_synthetic_population(env, small_config(regime, 30)).unwrap();
            assert_eq!(outcome.interactions, 300);
            assert!(outcome.average_reward >= 0.0 && outcome.average_reward <= 0.2);
            assert!(outcome.cumulative_regret >= -1e-9);
        }
    }

    #[test]
    fn epsilon_reporting_follows_the_regime() {
        let env = SyntheticConfig::new(4, 5);
        let cold = run_synthetic_population(env, small_config(Regime::Cold, 5)).unwrap();
        assert_eq!(cold.epsilon, Some(0.0));
        assert_eq!(cold.reports_to_server, 0);

        let non_private =
            run_synthetic_population(env, small_config(Regime::WarmNonPrivate, 5)).unwrap();
        assert_eq!(non_private.epsilon, None);
        // One reporting opportunity per user (T = 10), taken with p = 0.5.
        assert!(non_private.reports_to_server <= 5);

        let private = run_synthetic_population(env, small_config(Regime::WarmPrivate, 20)).unwrap();
        let eps = private.epsilon.unwrap();
        assert!((eps - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(private.reports_to_server <= 20);
    }

    #[test]
    fn warm_non_private_beats_cold_for_moderate_populations() {
        // The paper's headline qualitative result at small scale: with enough
        // users, warm models beat cold ones because each user only sees T=10
        // interactions. A stronger reward scale than the paper's beta = 0.1 is
        // used so the ordering is unambiguous with only a few hundred users.
        let env = SyntheticConfig::new(5, 10)
            .with_beta(0.8)
            .with_noise_variance(0.0025);
        let cold = run_synthetic_population(env, small_config(Regime::Cold, 400)).unwrap();
        let warm =
            run_synthetic_population(env, small_config(Regime::WarmNonPrivate, 400)).unwrap();
        assert!(
            warm.average_reward > cold.average_reward,
            "warm {:.4} should beat cold {:.4}",
            warm.average_reward,
            cold.average_reward
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let env = SyntheticConfig::new(4, 6);
        let a = run_synthetic_population(env, small_config(Regime::WarmPrivate, 25)).unwrap();
        let b = run_synthetic_population(env, small_config(Regime::WarmPrivate, 25)).unwrap();
        assert_eq!(a, b);
    }
}
