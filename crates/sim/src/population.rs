//! The pooled, non-stationary population wave: bounded agent residency,
//! user churn, preference drift and delayed rewards.
//!
//! Where the stationary streaming wave materializes one agent per user,
//! this driver runs the serving-layer shape end to end:
//!
//! 1. Every round, each *active* user (the set evolves under a
//!    [`p2b_datasets::ChurnProcess`]) observes a context, which is encoded
//!    and routed to the per-code agent held by a bounded
//!    [`p2b_core::AgentPool`] — evicting and rehydrating under the
//!    residency budget.
//! 2. The selected action becomes a pending decision in a
//!    [`p2b_core::RewardJoinBuffer`]; its reward is delivered up to
//!    `max_reward_delay` rounds later (or never — conversions get lost),
//!    and only *finalized* joins feed the agents' local updates and the
//!    randomized reporter path.
//! 3. Reports funneled through the pool stream into the sharded shuffler
//!    engine; delivered batches fold into the central model with (ε, δ)
//!    accounting, exactly like the stationary wave.
//!
//! The driver is deterministic: rounds are sequential, users are visited in
//! id order, the churn schedule owns its seeded RNG, reward-delivery delays
//! are a hash of the decision ticket, and join finalization is ticket-
//! ordered by construction.

use crate::{SimError, StreamingConfig, StreamingOutcome};
use p2b_bandit::Action;
use p2b_core::{AgentPool, AgentPoolConfig, P2bSystem, RewardJoinBuffer};
use p2b_datasets::{
    ChurnConfig, ChurnProcess, ContextualEnvironment, DriftConfig, DriftingPreferenceEnvironment,
    SyntheticConfig,
};
use p2b_linalg::Vector;
use p2b_shuffler::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded round of a pooled population wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationRoundPoint {
    /// One-based round index.
    pub round: u64,
    /// Users active (and interacting) this round.
    pub active_users: usize,
    /// Agents resident in the pool after the round.
    pub resident_agents: usize,
    /// Cumulative realized reward up to this round.
    pub cumulative_reward: f64,
    /// Cumulative pseudo-regret (vs. the per-round expected optimum).
    pub cumulative_regret: f64,
    /// Decisions finalized with a joined reward so far.
    pub joined: u64,
    /// Decisions expired without a reward so far.
    pub expired: u64,
}

/// The reward-side payload of a pending decision.
struct PendingFeedback {
    code: u64,
    context: Vector,
    action: Action,
}

fn user_rng(seed: u64, user: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
}

/// The delivery delay of a decision's reward: deterministic in the ticket.
/// With a zero join window every reward arrives in-round; otherwise delays
/// are uniform over `[0, max_delay + 1]`, where the `max_delay + 1` case
/// models feedback that never arrives (a lost conversion) and exercises the
/// buffer's expiry path.
fn delivery_delay(seed: u64, ticket: u64, max_delay: u64) -> Option<u64> {
    if max_delay == 0 {
        return Some(0);
    }
    let delay = splitmix64(seed ^ ticket.wrapping_mul(0xA24B_AED4_963E_E407)) % (max_delay + 2);
    (delay <= max_delay).then_some(delay)
}

/// Runs the pooled non-stationary wave; called by
/// [`crate::run_streaming_population`] when any non-stationary knob is set.
pub(crate) fn run_pooled_population(
    system: &mut P2bSystem,
    env_config: SyntheticConfig,
    config: StreamingConfig,
) -> Result<StreamingOutcome, SimError> {
    let rounds = config.interactions_per_user;
    let seed = config.seed;

    // The environment is always the drifting wrapper; a `None` drift knob
    // pins the shift at zero by using a period past the wave horizon.
    let period = config
        .drift
        .map_or(u64::MAX, |d: DriftConfig| d.period_rounds);
    let mut env = DriftingPreferenceEnvironment::new(
        env_config,
        DriftConfig::new(period),
        &mut StdRng::seed_from_u64(seed),
    )?;

    let mut churn = match config.churn {
        Some(knobs) => Some(ChurnProcess::new(
            ChurnConfig {
                initial_users: config.num_users,
                ..knobs
            },
            splitmix64(seed ^ 0xC0FF_EE00_5EED),
        )?),
        None => None,
    };
    let mut active: Vec<u64> = (0..config.num_users as u64).collect();

    let mut pool = AgentPool::new(AgentPoolConfig {
        max_resident_agents: config.max_resident_agents,
        shards: config.pool_shards,
    })?;
    let mut joiner: RewardJoinBuffer<PendingFeedback> =
        RewardJoinBuffer::new(config.max_reward_delay);
    // Reporter coin flips run on their own stream so reward-delivery timing
    // can never skew the selection-side randomness.
    let mut feedback_rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xFEED_BACC));
    let mut user_rngs: BTreeMap<u64, StdRng> = BTreeMap::new();
    let mut deliveries: BTreeMap<u64, Vec<(p2b_core::DecisionTicket, f64)>> = BTreeMap::new();

    let handle = system.spawn_engine(seed)?;
    let mut series = Vec::with_capacity(rounds as usize);
    let mut cumulative_reward = 0.0f64;
    let mut cumulative_regret = 0.0f64;
    let mut interactions = 0u64;
    let mut submitted = 0u64;

    let apply_joined = |finalized: p2b_core::FinalizedRound<PendingFeedback>,
                        pool: &mut AgentPool,
                        system: &mut P2bSystem,
                        feedback_rng: &mut StdRng|
     -> Result<(), SimError> {
        for joined in finalized.joined {
            let PendingFeedback {
                code,
                context,
                action,
            } = joined.payload;
            pool.with_agent(system, code, |agent| {
                agent.observe_reward(&context, action, joined.reward, feedback_rng)
            })?;
        }
        Ok(())
    };

    for round in 0..rounds {
        if let Some(process) = churn.as_mut() {
            let events = process.next_round();
            // Departed ids are never reused, so their RNG streams are dead
            // weight — drop them to keep the driver's memory bounded too.
            for departed in &events.departures {
                user_rngs.remove(departed);
            }
            active = process.active_users().iter().copied().collect();
        }
        for &user in &active {
            let rng = user_rngs
                .entry(user)
                .or_insert_with(|| user_rng(seed, user));
            let context = env.sample_context(rng);
            let code = system.encoder().encode(&context)?.value() as u64;
            let action =
                pool.with_agent(system, code, |agent| agent.select_action(&context, rng))?;
            let reward = env.sample_reward(&context, action.index(), rng)?;
            let expected = env.expected_reward(&context, action.index())?;
            let optimal = env.optimal_reward(&context)?;
            cumulative_reward += reward;
            cumulative_regret += optimal - expected;
            interactions += 1;
            let ticket = joiner.record(PendingFeedback {
                code,
                context,
                action,
            });
            if let Some(delay) = delivery_delay(seed, ticket.value(), config.max_reward_delay) {
                deliveries
                    .entry(round + delay)
                    .or_default()
                    .push((ticket, reward));
            }
        }
        for (ticket, reward) in deliveries.remove(&round).unwrap_or_default() {
            joiner.join(ticket, reward).map_err(SimError::Core)?;
        }
        let finalized = joiner.advance_round();
        apply_joined(finalized, &mut pool, system, &mut feedback_rng)?;
        for report in pool.drain_reports() {
            submitted += 1;
            handle.submit(report)?;
        }
        env.advance_round();
        series.push(PopulationRoundPoint {
            round: round + 1,
            active_users: active.len(),
            resident_agents: pool.resident_agents(),
            cumulative_reward,
            cumulative_regret,
            joined: joiner.stats().joined,
            expired: joiner.stats().expired,
        });
    }

    // Trailing windows: rewards for late decisions still arrive and join.
    for round in rounds..rounds + config.max_reward_delay + 1 {
        for (ticket, reward) in deliveries.remove(&round).unwrap_or_default() {
            joiner.join(ticket, reward).map_err(SimError::Core)?;
        }
        let finalized = joiner.advance_round();
        apply_joined(finalized, &mut pool, system, &mut feedback_rng)?;
    }
    let finalized = joiner.finish();
    apply_joined(finalized, &mut pool, system, &mut feedback_rng)?;

    // Drain the pool so trailing reports reach the engine before it closes.
    pool.park_all();
    for report in pool.drain_reports() {
        submitted += 1;
        handle.submit(report)?;
    }

    let output = handle.finish();
    let mut round_stats = Vec::with_capacity(output.batches.len());
    for batch in &output.batches {
        round_stats.push(system.ingest_engine_batch(batch)?);
    }
    let ledger = output
        .ledger
        .expect("P2bSystem::spawn_engine always enables accounting");

    Ok(StreamingOutcome {
        round_stats,
        ledger,
        average_reward: if interactions == 0 {
            0.0
        } else {
            cumulative_reward / interactions as f64
        },
        interactions,
        submitted,
        series,
        pool: Some(*pool.stats()),
        joins: Some(*joiner.stats()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_streaming_population;
    use p2b_core::P2bConfig;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use std::sync::Arc;

    fn system(shards: usize) -> P2bSystem {
        let mut rng = StdRng::seed_from_u64(0);
        let env_config = SyntheticConfig::new(4, 3);
        let mut env =
            p2b_datasets::SyntheticPreferenceEnvironment::new(env_config, &mut rng).unwrap();
        let corpus: Vec<Vector> = (0..256).map(|_| env.sample_context(&mut rng)).collect();
        let encoder =
            Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(8), &mut rng).unwrap());
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(2)
            .with_shuffler_threshold(1)
            .with_shuffler_shards(shards)
            .with_shuffler_batch_size(32)
            .with_ingest_shards(shards);
        P2bSystem::new(config, encoder).unwrap()
    }

    fn non_stationary_config() -> StreamingConfig {
        StreamingConfig::new(24)
            .with_interactions_per_user(30) // 30 rounds
            .with_seed(11)
            .with_max_resident_agents(3)
            .with_pool_shards(2)
            .with_max_reward_delay(2)
            .with_churn(
                ChurnConfig::new(24)
                    .with_arrivals_per_mille(1500)
                    .with_departure_per_mille(60),
            )
            .with_drift(DriftConfig::new(10))
    }

    #[test]
    fn pooled_wave_conserves_reports_and_respects_the_budget() {
        let mut sys = system(1);
        let outcome = run_streaming_population(
            &mut sys,
            SyntheticConfig::new(4, 3),
            non_stationary_config(),
        )
        .unwrap();
        assert!(outcome.interactions > 0);
        let received: u64 = outcome.round_stats.iter().map(|s| s.received as u64).sum();
        assert_eq!(received, outcome.submitted, "engine must conserve reports");
        // Threshold 1: everything released and accepted.
        let accepted: u64 = outcome.round_stats.iter().map(|s| s.accepted).sum();
        assert_eq!(accepted, outcome.submitted);
        assert_eq!(sys.server().ingested_reports(), accepted);

        let pool = outcome.pool.expect("pooled shape reports pool stats");
        assert!(pool.evictions > 0, "a 3-agent budget must evict");
        assert!(pool.rehydrations > 0, "returning codes must rehydrate");
        let joins = outcome.joins.expect("pooled shape reports join stats");
        assert_eq!(
            joins.joined + joins.expired,
            joins.decisions,
            "every decision is accounted for"
        );
        assert!(joins.expired > 0, "the lost-conversion tail must appear");
        assert_eq!(outcome.series.len(), 30);
        for point in &outcome.series {
            assert!(
                point.resident_agents <= 3,
                "budget violated in round {}",
                point.round
            );
            assert!(point.active_users > 0);
        }
        // Churn happened: the active population moved off its initial size.
        assert!(
            outcome.series.iter().any(|p| p.active_users != 24),
            "population never changed under churn"
        );
    }

    #[test]
    fn pooled_wave_is_deterministic() {
        let run = || {
            let mut sys = system(2);
            run_streaming_population(
                &mut sys,
                SyntheticConfig::new(4, 3),
                non_stationary_config(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.series, b.series);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.joins, b.joins);
        assert_eq!(
            a.average_reward.to_bits(),
            b.average_reward.to_bits(),
            "reward accounting must be bit-reproducible"
        );
    }

    #[test]
    fn stationary_knobs_off_keeps_the_legacy_shape() {
        let config = StreamingConfig::new(10).with_interactions_per_user(4);
        assert!(!config.is_non_stationary());
        let mut sys = system(1);
        let outcome =
            run_streaming_population(&mut sys, SyntheticConfig::new(4, 3), config).unwrap();
        assert!(outcome.series.is_empty(), "legacy shape records no series");
        assert!(outcome.pool.is_none());
        assert!(outcome.joins.is_none());
        assert_eq!(outcome.interactions, 40);
    }

    #[test]
    fn unbounded_pool_with_zero_delay_still_runs_the_pooled_shape() {
        // Drift alone selects the pooled driver; with no budget and no
        // delay the pool never evicts and every reward joins in-round.
        let config = StreamingConfig::new(12)
            .with_interactions_per_user(10)
            .with_seed(5)
            .with_drift(DriftConfig::new(4));
        let mut sys = system(1);
        let outcome =
            run_streaming_population(&mut sys, SyntheticConfig::new(4, 3), config).unwrap();
        let pool = outcome.pool.unwrap();
        assert_eq!(pool.evictions, 0);
        let joins = outcome.joins.unwrap();
        assert_eq!(joins.expired, 0, "zero delay loses nothing");
        assert_eq!(joins.joined, joins.decisions);
        assert_eq!(outcome.interactions, 120);
    }

    #[test]
    fn drift_degrades_a_frozen_policy_less_than_it_degrades_nothing() {
        // Sanity on the drift wiring: the same wave with faster drift ends
        // with at least as much cumulative regret (harder tracking problem).
        let regret = |period: u64| {
            let mut sys = system(1);
            let config = StreamingConfig::new(16)
                .with_interactions_per_user(40)
                .with_seed(9)
                .with_drift(DriftConfig::new(period));
            let outcome =
                run_streaming_population(&mut sys, SyntheticConfig::new(4, 3), config).unwrap();
            outcome.series.last().unwrap().cumulative_regret
        };
        let slow = regret(1000); // effectively stationary over 40 rounds
        let fast = regret(5);
        assert!(
            fast >= slow * 0.8,
            "fast drift ({fast:.3}) should not be dramatically easier than slow ({slow:.3})"
        );
    }
}
