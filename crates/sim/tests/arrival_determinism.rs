//! Property suite for the seeded open-loop arrival process.
//!
//! The serve harness's worker-count-invariant deterministic summary rests on
//! two claims checked here: (1) the stream is a pure function of the index,
//! so materializing it on any number of threads yields *byte-identical*
//! JSON; (2) the two-tier skew knob actually delivers its nominal head/tail
//! traffic split.

use p2b_sim::{ArrivalConfig, ArrivalEvent, ArrivalProcess};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ArrivalConfig> {
    (
        1u64..50_000, // num_users
        1u64..200,    // num_codes
        any::<u64>(), // seed
        1u64..=4,     // hot fraction in 1/8 steps: 1..=4 -> 0.125..=0.5
        0u64..=10,    // hot share in tenths
        1u64..5_000,  // mean inter-arrival nanos
    )
        .prop_map(|(users, codes, seed, frac, share, mean)| {
            ArrivalConfig::new(users, codes, seed)
                .with_hot_code_fraction(frac as f64 / 8.0)
                .with_hot_traffic_share(share as f64 / 10.0)
                .with_mean_interarrival_nanos(mean)
        })
}

fn stream_bytes(events: &[ArrivalEvent]) -> Vec<u8> {
    serde_json::to_string(events)
        .expect("events serialize")
        .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parallel stream is byte-identical to the sequential one at every
    /// worker count, including worker counts that do not divide the stream
    /// and ranges that do not start at zero.
    #[test]
    fn stream_is_byte_identical_at_any_worker_count(
        config in arb_config(),
        start in 0u64..500,
        len in 0u64..700,
        workers in 1usize..9,
    ) {
        let process = ArrivalProcess::new(config).expect("valid config");
        let sequential = process.events(start, start + len);
        let parallel = process.events_parallel(start, start + len, workers);
        prop_assert_eq!(
            stream_bytes(&sequential),
            stream_bytes(&parallel),
            "workers = {}", workers
        );
    }

    /// Two materializations of the same range agree event-by-event — the
    /// stream carries no hidden state between calls.
    #[test]
    fn rematerialization_is_stable(config in arb_config(), len in 1u64..400) {
        let process = ArrivalProcess::new(config).expect("valid config");
        let first = process.events(0, len);
        let second = process.events(0, len);
        prop_assert_eq!(first, second);
    }

    /// Timestamps are strictly monotone (open-loop clock) and every field
    /// stays in range.
    #[test]
    fn events_are_well_formed(config in arb_config(), len in 2u64..600) {
        let process = ArrivalProcess::new(config.clone()).expect("valid config");
        let events = process.events(0, len);
        for pair in events.windows(2) {
            prop_assert!(pair[0].timestamp_nanos < pair[1].timestamp_nanos);
        }
        for event in &events {
            prop_assert!(event.user < config.num_users);
            prop_assert!(event.code < config.num_codes);
        }
    }

    /// The hot head receives its nominal traffic share within sampling
    /// tolerance: over n draws the observed head mass is a Binomial(n, s)
    /// proportion, so 5 standard deviations plus a small absolute floor
    /// bounds it except with negligible probability.
    #[test]
    fn skew_knob_matches_nominal_head_mass(
        seed in any::<u64>(),
        share in 0u64..=10,
        frac in 1u64..=4,
    ) {
        let share = share as f64 / 10.0;
        let config = ArrivalConfig::new(100_000, 80, seed)
            .with_hot_code_fraction(frac as f64 / 8.0)
            .with_hot_traffic_share(share);
        let process = ArrivalProcess::new(config).expect("valid config");
        let n = 4_096u64;
        let hot_hits = process
            .events(0, n)
            .iter()
            .filter(|e| process.is_hot(e.code))
            .count() as f64;
        let observed = hot_hits / n as f64;
        let sigma = (share * (1.0 - share) / n as f64).sqrt();
        let tolerance = 5.0 * sigma + 0.01;
        prop_assert!(
            (observed - share).abs() <= tolerance,
            "observed head mass {} vs nominal {} (tolerance {})",
            observed, share, tolerance
        );
    }
}

/// The canonical 80/20 default: 20% of codes carry 80% of the traffic, and
/// the cold tail spreads the remainder across every cold code.
#[test]
fn default_is_eighty_twenty() {
    let process = ArrivalProcess::new(ArrivalConfig::new(1_000_000, 100, 9)).expect("valid");
    assert_eq!(process.hot_codes(), 20);
    let events = process.events(0, 20_000);
    let hot = events.iter().filter(|e| process.is_hot(e.code)).count() as f64;
    let mass = hot / events.len() as f64;
    assert!((mass - 0.8).abs() < 0.02, "head mass {mass}");
    // Cold codes are not starved: the tail's 20% lands across many codes.
    let distinct_cold: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| !process.is_hot(e.code))
        .map(|e| e.code)
        .collect();
    assert!(
        distinct_cold.len() > 60,
        "cold codes seen: {}",
        distinct_cold.len()
    );
}
