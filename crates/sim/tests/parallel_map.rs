//! Satellite tests for `sim::parallel_map`: result ordering under heavy
//! thread counts, the `max_threads == 0` degenerate case, and panic
//! propagation out of worker closures.

use p2b_sim::parallel_map;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn results_keep_input_order_for_every_thread_count() {
    let inputs: Vec<u64> = (0..200).collect();
    let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
    for max_threads in [0, 1, 2, 3, 8, 64, 1000] {
        let outputs = parallel_map(inputs.clone(), max_threads, |x| x * x);
        assert_eq!(
            outputs, expected,
            "order broken at max_threads={max_threads}"
        );
    }
}

#[test]
fn order_holds_even_when_early_items_finish_last() {
    // Make the first items the slowest so naive completion-order collection
    // would reverse the prefix.
    let inputs: Vec<u64> = (0..32).collect();
    let outputs = parallel_map(inputs.clone(), 8, |x| {
        if x < 8 {
            std::thread::sleep(std::time::Duration::from_millis(20 - 2 * x));
        }
        x + 1
    });
    assert_eq!(outputs, inputs.iter().map(|x| x + 1).collect::<Vec<_>>());
}

#[test]
fn zero_max_threads_is_treated_as_sequential() {
    // max_threads == 0 must behave exactly like a single-threaded map: same
    // results, and every closure call on the calling thread.
    let caller = std::thread::current().id();
    let calls = AtomicUsize::new(0);
    let outputs = parallel_map(vec![10, 20, 30], 0, |x| {
        calls.fetch_add(1, Ordering::SeqCst);
        assert_eq!(std::thread::current().id(), caller);
        x / 10
    });
    assert_eq!(outputs, vec![1, 2, 3]);
    assert_eq!(calls.load(Ordering::SeqCst), 3);
}

#[test]
fn empty_input_short_circuits_without_spawning() {
    assert_eq!(parallel_map(Vec::<u8>::new(), 0, |x| x), Vec::<u8>::new());
    assert_eq!(parallel_map(Vec::<u8>::new(), 16, |x| x), Vec::<u8>::new());
}

#[test]
fn panics_in_workers_propagate_to_the_caller() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_map((0..64).collect::<Vec<u64>>(), 4, |x| {
            assert!(x != 17, "poisoned item");
            x
        })
    }));
    assert!(result.is_err(), "worker panic must not be swallowed");
}

#[test]
fn panics_propagate_in_the_sequential_path_too() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_map(vec![1u8], 1, |_| -> u8 { panic!("single item panics") })
    }));
    assert!(result.is_err());
}
