//! Sign-random-projection (SimHash) LSH encoder.

use crate::encoder::{check_code, check_dimension};
use crate::{ContextCode, Encoder, EncoderStats, EncodingError};
use p2b_linalg::{Matrix, Vector};
use rand_distr_shim::sample_standard_normal;

/// Configuration of an [`LshEncoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Context dimension `d`.
    pub dimension: usize,
    /// Number of random hyperplanes; the code space has `2^num_bits` codes.
    pub num_bits: u32,
}

impl LshConfig {
    /// Creates a configuration with the given dimension and bit count.
    #[must_use]
    pub fn new(dimension: usize, num_bits: u32) -> Self {
        Self {
            dimension,
            num_bits,
        }
    }

    fn validate(&self) -> Result<(), EncodingError> {
        if self.dimension == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_bits == 0 || self.num_bits > 20 {
            return Err(EncodingError::InvalidConfig {
                parameter: "num_bits",
                message: format!("must be between 1 and 20, got {}", self.num_bits),
            });
        }
        Ok(())
    }
}

/// Locality-sensitive-hashing encoder based on sign random projections.
///
/// The paper cites LSH-based personalization (Aghasaryan et al. 2013) as an
/// alternative distance-preserving encoding and lists the study of further
/// encoders as future work; this encoder realizes that option. Each of the
/// `b` random hyperplanes contributes one bit (`sign(w·(x − μ))`), so nearby
/// contexts collide with high probability while the code space has `2^b`
/// entries.
#[derive(Debug, Clone)]
pub struct LshEncoder {
    projections: Matrix,
    center: Vector,
    config: LshConfig,
    stats: EncoderStats,
    representatives: Vec<Vector>,
}

impl LshEncoder {
    /// Fits an LSH encoder: random hyperplanes are drawn from a standard
    /// Gaussian, the corpus (if non-empty) is used to center the projections
    /// and to estimate cluster statistics and per-code representatives.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidConfig`] for invalid configurations
    /// and [`EncodingError::DimensionMismatch`] for ragged corpora.
    pub fn fit<R: rand::Rng + ?Sized>(
        corpus: &[Vector],
        config: LshConfig,
        rng: &mut R,
    ) -> Result<Self, EncodingError> {
        config.validate()?;
        for sample in corpus {
            check_dimension(config.dimension, sample)?;
        }

        // Center of the corpus (or the uniform simplex point when empty):
        // centering makes the hyperplanes cut through the populated region.
        let center = if corpus.is_empty() {
            Vector::filled(config.dimension, 1.0 / config.dimension as f64)
        } else {
            let mut sum = Vector::zeros(config.dimension);
            for sample in corpus {
                sum.axpy(1.0, sample)?;
            }
            sum.scaled(1.0 / corpus.len() as f64)
        };

        let mut projection_rows = Vec::with_capacity(config.num_bits as usize);
        for _ in 0..config.num_bits {
            let row: Vec<f64> = (0..config.dimension)
                .map(|_| sample_standard_normal(rng))
                .collect();
            projection_rows.push(row);
        }
        let projections = Matrix::from_rows(&projection_rows)?;

        let num_codes = 1usize << config.num_bits;
        let mut encoder = Self {
            projections,
            center,
            config,
            stats: EncoderStats::from_assignments(num_codes, &[], &[]),
            representatives: vec![
                Vector::filled(config.dimension, 1.0 / config.dimension as f64);
                num_codes
            ],
        };

        if !corpus.is_empty() {
            let mut assignments = Vec::with_capacity(corpus.len());
            let mut sums = vec![Vector::zeros(config.dimension); num_codes];
            let mut counts = vec![0usize; num_codes];
            for sample in corpus {
                let code = encoder.hash(sample)?;
                assignments.push(code);
                sums[code].axpy(1.0, sample)?;
                counts[code] += 1;
            }
            for code in 0..num_codes {
                if counts[code] > 0 {
                    encoder.representatives[code] = sums[code].scaled(1.0 / counts[code] as f64);
                }
            }
            let distortions: Vec<f64> = corpus
                .iter()
                .zip(assignments.iter())
                .map(|(sample, &code)| {
                    encoder.representatives[code]
                        .squared_distance(sample)
                        .unwrap_or(0.0)
                })
                .collect();
            encoder.stats = EncoderStats::from_assignments(num_codes, &assignments, &distortions);
        }

        Ok(encoder)
    }

    fn hash(&self, context: &Vector) -> Result<usize, EncodingError> {
        let centered = context.sub(&self.center)?;
        let projected = self.projections.matvec(&centered)?;
        let mut code = 0usize;
        for (bit, &value) in projected.iter().enumerate() {
            if value >= 0.0 {
                code |= 1 << bit;
            }
        }
        Ok(code)
    }
}

impl Encoder for LshEncoder {
    fn num_codes(&self) -> usize {
        1usize << self.config.num_bits
    }

    fn context_dimension(&self) -> usize {
        self.config.dimension
    }

    fn encode(&self, context: &Vector) -> Result<ContextCode, EncodingError> {
        check_dimension(self.config.dimension, context)?;
        Ok(ContextCode::new(self.hash(context)?))
    }

    fn representative(&self, code: ContextCode) -> Result<Vector, EncodingError> {
        check_code(self.num_codes(), code)?;
        Ok(self.representatives[code.value()].clone())
    }

    fn stats(&self) -> &EncoderStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "lsh"
    }
}

/// Tiny shim around a Box–Muller transform so this module does not need the
/// `rand_distr` crate (the encoding crate keeps its dependency set minimal).
mod rand_distr_shim {
    /// Samples a standard normal deviate via the Box–Muller transform.
    pub fn sample_standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(rng: &mut StdRng) -> Vec<Vector> {
        (0..200)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0 + rng.gen_range(-0.1..0.1);
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect()
    }

    #[test]
    fn rejects_invalid_configurations() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(LshEncoder::fit(&[], LshConfig::new(0, 3), &mut rng).is_err());
        assert!(LshEncoder::fit(&[], LshConfig::new(3, 0), &mut rng).is_err());
        assert!(LshEncoder::fit(&[], LshConfig::new(3, 25), &mut rng).is_err());
    }

    #[test]
    fn code_space_size_is_two_to_the_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        let encoder = LshEncoder::fit(&[], LshConfig::new(4, 5), &mut rng).unwrap();
        assert_eq!(encoder.num_codes(), 32);
    }

    #[test]
    fn identical_contexts_collide_and_codes_are_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = corpus(&mut rng);
        let encoder = LshEncoder::fit(&data, LshConfig::new(4, 4), &mut rng).unwrap();
        for x in &data {
            let a = encoder.encode(x).unwrap();
            assert_eq!(a, encoder.encode(x).unwrap());
            assert!(a.value() < 16);
        }
    }

    #[test]
    fn nearby_contexts_usually_collide() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = corpus(&mut rng);
        let encoder = LshEncoder::fit(&data, LshConfig::new(4, 3), &mut rng).unwrap();
        let base = Vector::from(vec![0.7, 0.1, 0.1, 0.1]);
        let near = Vector::from(vec![0.69, 0.11, 0.1, 0.1]);
        // Sign-LSH is probabilistic, but for such close points with 3 bits a
        // collision is overwhelmingly likely under any seed that reaches here.
        assert_eq!(
            encoder.encode(&base).unwrap(),
            encoder.encode(&near).unwrap()
        );
    }

    #[test]
    fn distant_corpus_clusters_split_across_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = corpus(&mut rng);
        let encoder = LshEncoder::fit(&data, LshConfig::new(4, 6), &mut rng).unwrap();
        let distinct: std::collections::HashSet<_> = data
            .iter()
            .map(|x| encoder.encode(x).unwrap().value())
            .collect();
        assert!(distinct.len() >= 3, "only {distinct:?} codes used");
    }

    #[test]
    fn representative_validates_code_and_has_right_dimension() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = corpus(&mut rng);
        let encoder = LshEncoder::fit(&data, LshConfig::new(4, 3), &mut rng).unwrap();
        assert_eq!(
            encoder.representative(ContextCode::new(0)).unwrap().len(),
            4
        );
        assert!(encoder.representative(ContextCode::new(8)).is_err());
    }

    #[test]
    fn stats_count_every_sample() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = corpus(&mut rng);
        let encoder = LshEncoder::fit(&data, LshConfig::new(4, 4), &mut rng).unwrap();
        assert_eq!(
            encoder.stats().cluster_sizes.iter().sum::<usize>(),
            data.len()
        );
    }
}
