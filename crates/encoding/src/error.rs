//! Error type for the encoding subsystem.

use p2b_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Error returned by quantization and encoder operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EncodingError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// The context dimension does not match what the encoder was fitted on.
    DimensionMismatch {
        /// Dimension the encoder expects.
        expected: usize,
        /// Dimension of the offending context.
        found: usize,
    },
    /// The training corpus was empty or smaller than the number of clusters.
    InsufficientData {
        /// Number of samples provided.
        samples: usize,
        /// Minimum number required.
        required: usize,
    },
    /// The cardinality computation overflowed (`d` and `q` too large).
    CardinalityOverflow {
        /// Requested precision (decimal digits).
        precision: u32,
        /// Requested dimension.
        dimension: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            EncodingError::DimensionMismatch { expected, found } => write!(
                f,
                "context dimension mismatch: encoder expects {expected}, observed {found}"
            ),
            EncodingError::InsufficientData { samples, required } => write!(
                f,
                "insufficient training data: {samples} samples, at least {required} required"
            ),
            EncodingError::CardinalityOverflow {
                precision,
                dimension,
            } => write!(
                f,
                "simplex cardinality overflows u128 for precision {precision} and dimension {dimension}"
            ),
            EncodingError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for EncodingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EncodingError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for EncodingError {
    fn from(e: LinalgError) -> Self {
        EncodingError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = EncodingError::DimensionMismatch {
            expected: 10,
            found: 4,
        };
        assert!(e.to_string().contains("10"));
        let e = EncodingError::InsufficientData {
            samples: 3,
            required: 8,
        };
        assert!(e.to_string().contains('8'));
        let e = EncodingError::CardinalityOverflow {
            precision: 9,
            dimension: 500,
        };
        assert!(e.to_string().contains("500"));
    }

    #[test]
    fn wraps_linalg_with_source() {
        let e = EncodingError::from(LinalgError::Empty);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<EncodingError>();
    }
}
