//! Fixed-precision normalized context representation.

use crate::EncodingError;
use p2b_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Quantizes normalized contexts to a fixed number of decimal digits.
///
/// P2B represents contexts as normalized vectors whose entries sum to one and
/// are stored with `q` decimal digits (Section 3.2). The quantizer produces
/// [`QuantizedContext`] values: integer vectors summing to `10^q`, which makes
/// the representable context set finite (see
/// [`simplex_cardinality`](crate::simplex_cardinality)) and uniformly spaced
/// on the probability simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    precision: u32,
}

impl Quantizer {
    /// Maximum supported precision; beyond this the integer grid does not fit
    /// comfortably in `u32` buckets and the cardinality overflows for any
    /// realistic dimension.
    pub const MAX_PRECISION: u32 = 9;

    /// Creates a quantizer with `precision` decimal digits (the paper's `q`).
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidConfig`] when `precision` is zero or
    /// exceeds [`Self::MAX_PRECISION`].
    pub fn new(precision: u32) -> Result<Self, EncodingError> {
        if precision == 0 || precision > Self::MAX_PRECISION {
            return Err(EncodingError::InvalidConfig {
                parameter: "precision",
                message: format!(
                    "must be between 1 and {}, got {precision}",
                    Self::MAX_PRECISION
                ),
            });
        }
        Ok(Self { precision })
    }

    /// The number of decimal digits `q`.
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Total number of quantization units, `10^q`.
    #[must_use]
    pub fn units(&self) -> u64 {
        10u64.pow(self.precision)
    }

    /// Quantizes an arbitrary context vector.
    ///
    /// The vector is first L1-normalized (shifting negative entries if
    /// necessary), then each entry is expressed as an integer number of
    /// `10^-q` units using largest-remainder rounding so the units always sum
    /// to exactly `10^q`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::Linalg`] for empty contexts.
    pub fn quantize(&self, context: &Vector) -> Result<QuantizedContext, EncodingError> {
        let normalized = context.normalized_l1()?;
        let units = self.units();
        let scaled: Vec<f64> = normalized.iter().map(|&x| x * units as f64).collect();
        let mut counts: Vec<u64> = scaled.iter().map(|&x| x.floor() as u64).collect();
        let assigned: u64 = counts.iter().sum();
        let mut remainder = units.saturating_sub(assigned) as usize;

        // Largest-remainder apportionment: hand out the missing units to the
        // entries with the largest fractional parts so rounding error never
        // breaks the sum-to-one invariant.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = scaled[a] - scaled[a].floor();
            let fb = scaled[b] - scaled[b].floor();
            fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &idx in order.iter().cycle().take(counts.len().max(remainder)) {
            if remainder == 0 {
                break;
            }
            counts[idx] += 1;
            remainder -= 1;
        }

        Ok(QuantizedContext {
            units: counts,
            precision: self.precision,
        })
    }

    /// Quantizes and immediately converts back to a normalized float vector.
    ///
    /// This is the "rounded" view of the context that the agent is allowed to
    /// reason about when privacy matters: two raw contexts that quantize to
    /// the same grid point become indistinguishable.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::Linalg`] for empty contexts.
    pub fn round(&self, context: &Vector) -> Result<Vector, EncodingError> {
        Ok(self.quantize(context)?.to_vector())
    }
}

/// A context on the fixed-precision grid: integer units per dimension that
/// sum to `10^q`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantizedContext {
    units: Vec<u64>,
    precision: u32,
}

impl QuantizedContext {
    /// Creates a quantized context directly from unit counts.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidConfig`] if the units do not sum to
    /// `10^precision`.
    pub fn from_units(units: Vec<u64>, precision: u32) -> Result<Self, EncodingError> {
        let expected = 10u64.pow(precision);
        let total: u64 = units.iter().sum();
        if total != expected {
            return Err(EncodingError::InvalidConfig {
                parameter: "units",
                message: format!("units must sum to {expected}, got {total}"),
            });
        }
        Ok(Self { units, precision })
    }

    /// The integer unit counts.
    #[must_use]
    pub fn units(&self) -> &[u64] {
        &self.units
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.units.len()
    }

    /// The precision `q` this context was quantized with.
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Converts back to a normalized floating-point vector.
    #[must_use]
    pub fn to_vector(&self) -> Vector {
        let total = 10u64.pow(self.precision) as f64;
        Vector::from(
            self.units
                .iter()
                .map(|&u| u as f64 / total)
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_precision() {
        assert!(Quantizer::new(0).is_err());
        assert!(Quantizer::new(10).is_err());
        assert!(Quantizer::new(1).is_ok());
        assert!(Quantizer::new(9).is_ok());
    }

    #[test]
    fn quantized_units_sum_to_ten_power_q() {
        let quantizer = Quantizer::new(1).unwrap();
        let ctx = Vector::from(vec![0.31, 0.29, 0.4]);
        let q = quantizer.quantize(&ctx).unwrap();
        assert_eq!(q.units().iter().sum::<u64>(), 10);
        assert_eq!(q.dimension(), 3);
        assert_eq!(q.precision(), 1);
    }

    #[test]
    fn quantization_is_idempotent_on_grid_points() {
        let quantizer = Quantizer::new(2).unwrap();
        let grid_point = Vector::from(vec![0.25, 0.5, 0.25]);
        let rounded = quantizer.round(&grid_point).unwrap();
        assert_eq!(rounded.as_slice(), grid_point.as_slice());
        let twice = quantizer.round(&rounded).unwrap();
        assert_eq!(twice.as_slice(), rounded.as_slice());
    }

    #[test]
    fn rounding_error_is_bounded_by_grid_spacing() {
        let quantizer = Quantizer::new(1).unwrap();
        let ctx = Vector::from(vec![0.17, 0.23, 0.6]);
        let rounded = quantizer.round(&ctx).unwrap();
        for (orig, new) in ctx.iter().zip(rounded.iter()) {
            assert!((orig - new).abs() <= 0.1 + 1e-12);
        }
    }

    #[test]
    fn handles_unnormalized_and_negative_contexts() {
        let quantizer = Quantizer::new(1).unwrap();
        let ctx = Vector::from(vec![-1.0, 0.0, 3.0]);
        let q = quantizer.quantize(&ctx).unwrap();
        assert_eq!(q.units().iter().sum::<u64>(), 10);
    }

    #[test]
    fn handles_degenerate_uniform_context() {
        let quantizer = Quantizer::new(1).unwrap();
        let q = quantizer.quantize(&Vector::zeros(4)).unwrap();
        assert_eq!(q.units().iter().sum::<u64>(), 10);
        // Uniform 4-dim context at q=1: units are a permutation of (3,3,2,2).
        let mut units = q.units().to_vec();
        units.sort_unstable();
        assert_eq!(units, vec![2, 2, 3, 3]);
    }

    #[test]
    fn from_units_validates_sum() {
        assert!(QuantizedContext::from_units(vec![5, 5], 1).is_ok());
        assert!(QuantizedContext::from_units(vec![5, 4], 1).is_err());
    }

    #[test]
    fn to_vector_round_trips() {
        let q = QuantizedContext::from_units(vec![2, 3, 5], 1).unwrap();
        let v = q.to_vector();
        assert_eq!(v.as_slice(), &[0.2, 0.3, 0.5]);
    }

    #[test]
    fn quantize_empty_context_is_error() {
        let quantizer = Quantizer::new(1).unwrap();
        assert!(quantizer.quantize(&Vector::zeros(0)).is_err());
    }
}
