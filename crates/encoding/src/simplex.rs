//! Stars-and-bars enumeration of the fixed-precision simplex grid.

use crate::{EncodingError, QuantizedContext};

/// Cardinality of the set of normalized `d`-dimensional context vectors with
/// `q` decimal digits of precision — Equation (1) of the paper:
///
/// ```text
/// n = C(10^q + d − 1, d − 1)
/// ```
///
/// # Errors
///
/// Returns [`EncodingError::CardinalityOverflow`] when the binomial
/// coefficient does not fit in `u128` and [`EncodingError::InvalidConfig`]
/// when `dimension == 0` or `precision == 0`.
///
/// ```
/// // The paper's Figure 2 example: d = 3, q = 1 gives n = 66.
/// assert_eq!(p2b_encoding::simplex_cardinality(3, 1).unwrap(), 66);
/// ```
pub fn simplex_cardinality(dimension: usize, precision: u32) -> Result<u128, EncodingError> {
    if dimension == 0 {
        return Err(EncodingError::InvalidConfig {
            parameter: "dimension",
            message: "must be at least 1".to_owned(),
        });
    }
    if precision == 0 {
        return Err(EncodingError::InvalidConfig {
            parameter: "precision",
            message: "must be at least 1".to_owned(),
        });
    }
    let units = 10u128.pow(precision);
    let n = units + dimension as u128 - 1;
    let k = dimension as u128 - 1;
    binomial(n, k).ok_or(EncodingError::CardinalityOverflow {
        precision,
        dimension,
    })
}

/// Overflow-checked binomial coefficient `C(n, k)` in `u128`.
fn binomial(n: u128, k: u128) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1);  — interleaved to limit growth,
        // dividing by the GCD first so the intermediate product stays exact.
        let numerator = n - i;
        let denominator = i + 1;
        let g = gcd(result, denominator);
        let reduced_result = result / g;
        let reduced_denominator = denominator / g;
        let g2 = gcd(numerator, reduced_denominator);
        let reduced_numerator = numerator / g2;
        debug_assert_eq!(reduced_denominator / g2 * g2, reduced_denominator);
        let final_denominator = reduced_denominator / g2;
        debug_assert_eq!(final_denominator, 1, "binomial arithmetic stays exact");
        result = reduced_result.checked_mul(reduced_numerator)?;
    }
    Some(result)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Enumerates every grid point of the `d`-dimensional simplex at precision
/// `q`, i.e. every vector of non-negative integers summing to `10^q`.
///
/// The number of points equals [`simplex_cardinality`]; the enumeration is
/// the ground truth used by Figure 2 and by the "optimal encoder" analysis in
/// Section 4, where each of the `k` codes should cover `n / k` grid points.
///
/// # Errors
///
/// Returns [`EncodingError::InvalidConfig`] for zero dimension/precision and
/// [`EncodingError::CardinalityOverflow`] when the grid exceeds
/// `max_points`, to protect against accidentally materializing astronomically
/// large grids.
pub fn enumerate_simplex_grid(
    dimension: usize,
    precision: u32,
    max_points: usize,
) -> Result<Vec<QuantizedContext>, EncodingError> {
    let cardinality = simplex_cardinality(dimension, precision)?;
    if cardinality > max_points as u128 {
        return Err(EncodingError::CardinalityOverflow {
            precision,
            dimension,
        });
    }
    let units = 10u64.pow(precision);
    let mut results = Vec::with_capacity(cardinality as usize);
    let mut current = vec![0u64; dimension];
    enumerate_recursive(units, 0, &mut current, &mut results, precision)?;
    Ok(results)
}

fn enumerate_recursive(
    remaining: u64,
    index: usize,
    current: &mut Vec<u64>,
    results: &mut Vec<QuantizedContext>,
    precision: u32,
) -> Result<(), EncodingError> {
    let dimension = current.len();
    if index == dimension - 1 {
        current[index] = remaining;
        results.push(QuantizedContext::from_units(current.clone(), precision)?);
        return Ok(());
    }
    for value in 0..=remaining {
        current[index] = value;
        enumerate_recursive(remaining - value, index + 1, current, results, precision)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_dimension_three_precision_one() {
        // Figure 2: d = 3, q = 1 → n = C(12, 2) = 66.
        assert_eq!(simplex_cardinality(3, 1).unwrap(), 66);
    }

    #[test]
    fn known_small_cardinalities() {
        // d = 1: only one point regardless of precision.
        assert_eq!(simplex_cardinality(1, 1).unwrap(), 1);
        // d = 2, q = 1: 11 points (0..=10 units in the first slot).
        assert_eq!(simplex_cardinality(2, 1).unwrap(), 11);
        // d = 5, q = 1: C(14, 4) = 1001.
        assert_eq!(simplex_cardinality(5, 1).unwrap(), 1001);
        // d = 20, q = 1 (the paper's largest synthetic dimension): C(29, 19).
        assert_eq!(simplex_cardinality(20, 1).unwrap(), 20_030_010);
    }

    #[test]
    fn rejects_degenerate_arguments() {
        assert!(simplex_cardinality(0, 1).is_err());
        assert!(simplex_cardinality(3, 0).is_err());
    }

    #[test]
    fn large_arguments_overflow_gracefully() {
        // q = 9 with a large dimension overflows u128 and must be reported,
        // not silently wrapped.
        assert!(matches!(
            simplex_cardinality(200, 9),
            Err(EncodingError::CardinalityOverflow { .. })
        ));
    }

    #[test]
    fn enumeration_matches_cardinality() {
        for (d, q) in [(2usize, 1u32), (3, 1), (4, 1)] {
            let grid = enumerate_simplex_grid(d, q, 1_000_000).unwrap();
            assert_eq!(grid.len() as u128, simplex_cardinality(d, q).unwrap());
            // Every point sums to 10^q and has the right dimension.
            for point in &grid {
                assert_eq!(point.units().iter().sum::<u64>(), 10u64.pow(q));
                assert_eq!(point.dimension(), d);
            }
        }
    }

    #[test]
    fn enumeration_produces_distinct_points() {
        let grid = enumerate_simplex_grid(3, 1, 1000).unwrap();
        let unique: std::collections::HashSet<_> =
            grid.iter().map(|p| p.units().to_vec()).collect();
        assert_eq!(unique.len(), grid.len());
    }

    #[test]
    fn enumeration_respects_max_points_guard() {
        assert!(matches!(
            enumerate_simplex_grid(20, 1, 1000),
            Err(EncodingError::CardinalityOverflow { .. })
        ));
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 6), Some(0));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }
}
