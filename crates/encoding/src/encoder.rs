//! The encoder abstraction: mapping contexts to a small code space.

use crate::EncodingError;
use p2b_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An encoded context `y ∈ {0, …, k−1}`.
///
/// Newtype over the code index so codes cannot be confused with action
/// indices or raw cluster sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContextCode(usize);

impl ContextCode {
    /// Wraps a code index.
    #[must_use]
    pub fn new(value: usize) -> Self {
        Self(value)
    }

    /// The underlying code index.
    #[must_use]
    pub fn value(self) -> usize {
        self.0
    }
}

impl From<usize> for ContextCode {
    fn from(value: usize) -> Self {
        Self(value)
    }
}

impl From<ContextCode> for usize {
    fn from(code: ContextCode) -> Self {
        code.0
    }
}

impl fmt::Display for ContextCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y{}", self.0)
    }
}

/// Summary statistics of a fitted encoder, used by the privacy analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderStats {
    /// Number of codes `k`.
    pub num_codes: usize,
    /// Number of training samples assigned to each code.
    pub cluster_sizes: Vec<usize>,
    /// Size of the smallest non-empty cluster — the crowd-blending `l` of a
    /// suboptimal encoder (Section 4 of the paper).
    pub min_cluster_size: usize,
    /// Size of the largest cluster.
    pub max_cluster_size: usize,
    /// Mean intra-cluster squared distance over the training corpus
    /// (the k-means objective value per sample).
    pub mean_distortion: f64,
}

impl EncoderStats {
    /// Computes statistics from per-sample assignments and distortions.
    #[must_use]
    pub fn from_assignments(num_codes: usize, assignments: &[usize], distortions: &[f64]) -> Self {
        let mut cluster_sizes = vec![0usize; num_codes];
        for &a in assignments {
            if a < num_codes {
                cluster_sizes[a] += 1;
            }
        }
        let nonempty: Vec<usize> = cluster_sizes.iter().copied().filter(|&c| c > 0).collect();
        let min_cluster_size = nonempty.iter().copied().min().unwrap_or(0);
        let max_cluster_size = cluster_sizes.iter().copied().max().unwrap_or(0);
        let mean_distortion = p2b_linalg::mean(distortions);
        Self {
            num_codes,
            cluster_sizes,
            min_cluster_size,
            max_cluster_size,
            mean_distortion,
        }
    }

    /// Number of non-empty clusters.
    #[must_use]
    pub fn occupied_codes(&self) -> usize {
        self.cluster_sizes.iter().filter(|&&c| c > 0).count()
    }
}

/// A fitted context encoder.
///
/// Encoders are fitted once (on public or historical data, or on the
/// enumerable simplex grid itself) and then used by every local agent to map
/// observed contexts to codes before transmission. The trait is object-safe
/// so that the P2B agent can hold `Box<dyn Encoder>`.
pub trait Encoder: Send + Sync + std::fmt::Debug {
    /// Number of codes `k` this encoder can emit.
    fn num_codes(&self) -> usize;

    /// Dimension of the context vectors the encoder expects.
    fn context_dimension(&self) -> usize;

    /// Encodes a context into a code in `0..num_codes`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::DimensionMismatch`] when the context has the
    /// wrong dimension.
    fn encode(&self, context: &Vector) -> Result<ContextCode, EncodingError>;

    /// A representative context for the given code (e.g. the cluster
    /// centroid). This is what the central server uses as the context of
    /// reported tuples when updating the warm-start model.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidConfig`] for out-of-range codes.
    fn representative(&self, code: ContextCode) -> Result<Vector, EncodingError>;

    /// Statistics of the fitted encoder over its training corpus.
    fn stats(&self) -> &EncoderStats;

    /// Short human-readable encoder name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Validates that a context matches the encoder's expected dimension.
pub(crate) fn check_dimension(expected: usize, context: &Vector) -> Result<(), EncodingError> {
    if context.len() != expected {
        return Err(EncodingError::DimensionMismatch {
            expected,
            found: context.len(),
        });
    }
    Ok(())
}

/// Validates that a code is within range.
pub(crate) fn check_code(num_codes: usize, code: ContextCode) -> Result<(), EncodingError> {
    if code.value() >= num_codes {
        return Err(EncodingError::InvalidConfig {
            parameter: "code",
            message: format!("code {} out of range for {num_codes} codes", code.value()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_code_round_trips() {
        let c = ContextCode::from(9usize);
        assert_eq!(usize::from(c), 9);
        assert_eq!(c.to_string(), "y9");
        assert_eq!(ContextCode::new(9), c);
    }

    #[test]
    fn stats_from_assignments() {
        let assignments = [0, 0, 1, 1, 1, 3];
        let distortions = [0.1, 0.3, 0.2, 0.2, 0.2, 0.0];
        let stats = EncoderStats::from_assignments(4, &assignments, &distortions);
        assert_eq!(stats.cluster_sizes, vec![2, 3, 0, 1]);
        assert_eq!(stats.min_cluster_size, 1);
        assert_eq!(stats.max_cluster_size, 3);
        assert_eq!(stats.occupied_codes(), 3);
        assert!((stats.mean_distortion - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_with_no_assignments() {
        let stats = EncoderStats::from_assignments(3, &[], &[]);
        assert_eq!(stats.min_cluster_size, 0);
        assert_eq!(stats.max_cluster_size, 0);
        assert_eq!(stats.occupied_codes(), 0);
    }

    #[test]
    fn validators() {
        assert!(check_dimension(3, &Vector::zeros(3)).is_ok());
        assert!(check_dimension(3, &Vector::zeros(4)).is_err());
        assert!(check_code(4, ContextCode::new(3)).is_ok());
        assert!(check_code(4, ContextCode::new(4)).is_err());
    }
}
