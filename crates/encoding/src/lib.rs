//! Context encoding for Privacy-Preserving Bandits.
//!
//! Before an interaction tuple leaves the device, the local agent encodes its
//! `d`-dimensional context vector `x` into a code `y ∈ {0, …, k−1}`
//! (Section 3.2 of the paper). The encoding pipeline is:
//!
//! 1. **Normalization & quantization** — contexts are normalized (entries sum
//!    to one) and represented with `q` decimal digits of precision
//!    ([`QuantizedContext`]). The set of representable contexts is finite and
//!    its cardinality follows the stars-and-bars formula of Eq. (1),
//!    implemented by [`simplex_cardinality`].
//! 2. **Clustering** — nearby contexts are mapped to the same code. The paper
//!    uses mini-batch k-means ([`KMeansEncoder`], Sculley 2010); a uniform
//!    [`GridEncoder`] and a sign-random-projection [`LshEncoder`] are included
//!    for the "alternative encoders" the paper leaves to future work.
//!
//! Every encoder reports the size of its smallest cluster, which is the
//! crowd-blending parameter `l` used by the privacy analysis.
//!
//! # Example
//!
//! ```
//! use p2b_encoding::{Encoder, KMeansEncoder, KMeansConfig, Quantizer};
//! use p2b_linalg::Vector;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), p2b_encoding::EncodingError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let quantizer = Quantizer::new(1)?;
//! // A tiny corpus of 3-dimensional normalized contexts.
//! let corpus: Vec<Vector> = (0..60)
//!     .map(|i| {
//!         let a = (i % 10) as f64;
//!         Vector::from(vec![a, 10.0 - a, 1.0]).normalized_l1().unwrap()
//!     })
//!     .collect();
//! let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng)?;
//! let code = encoder.encode(&corpus[0])?;
//! assert!(code.value() < 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod encoder;
mod error;
mod grid;
mod kmeans;
mod lsh;
mod quantize;
mod simplex;

pub use encoder::{ContextCode, Encoder, EncoderStats};
pub use error::EncodingError;
pub use grid::GridEncoder;
pub use kmeans::{KMeansConfig, KMeansEncoder};
pub use lsh::{LshConfig, LshEncoder};
pub use quantize::{QuantizedContext, Quantizer};
pub use simplex::{enumerate_simplex_grid, simplex_cardinality};
