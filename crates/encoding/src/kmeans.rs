//! Mini-batch k-means encoder (Sculley 2010).

use crate::encoder::{check_code, check_dimension};
use crate::{ContextCode, Encoder, EncoderStats, EncodingError};
use p2b_linalg::Vector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`KMeansEncoder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters / codes `k`.
    pub num_codes: usize,
    /// Mini-batch size per iteration (Sculley 2010 uses small batches; the
    /// whole corpus is used when it is smaller than the batch).
    pub batch_size: usize,
    /// Number of mini-batch iterations.
    pub iterations: usize,
    /// Convergence tolerance on the mean centroid movement per iteration.
    pub tolerance: f64,
}

impl KMeansConfig {
    /// Creates a configuration with `num_codes` clusters and the defaults
    /// `batch_size = 256`, `iterations = 100`, `tolerance = 1e-6`.
    #[must_use]
    pub fn new(num_codes: usize) -> Self {
        Self {
            num_codes,
            batch_size: 256,
            iterations: 100,
            tolerance: 1e-6,
        }
    }

    /// Sets the mini-batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of iterations.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    fn validate(&self) -> Result<(), EncodingError> {
        if self.num_codes == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "num_codes",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.batch_size == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "batch_size",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.iterations == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "iterations",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "tolerance",
                message: format!(
                    "must be a finite non-negative number, got {}",
                    self.tolerance
                ),
            });
        }
        Ok(())
    }
}

/// Mini-batch k-means context encoder.
///
/// This is the encoder the paper evaluates: contexts are clustered with
/// web-scale (mini-batch) k-means and each cluster index becomes a context
/// code. Encoding a fresh context is a nearest-centroid lookup with `O(k·d)`
/// cost, matching the complexity the paper quotes for on-device inference.
///
/// The encoder is fitted once on a training corpus; [`KMeansEncoder::stats`]
/// then reports the minimum cluster size, which the privacy analysis uses as
/// the crowd-blending parameter `l`.
#[derive(Debug, Clone)]
pub struct KMeansEncoder {
    centroids: Vec<Vector>,
    stats: EncoderStats,
    dimension: usize,
}

impl KMeansEncoder {
    /// Fits the encoder on a corpus of context vectors.
    ///
    /// Initialization uses k-means++ seeding (Arthur & Vassilvitskii 2007):
    /// the first centroid is a uniform sample and each further centroid is
    /// drawn with probability proportional to its squared distance from the
    /// nearest centroid chosen so far, which makes well-separated clusters
    /// recoverable regardless of the seed. Mini-batch updates follow
    /// Sculley (2010): each centroid moves towards assigned batch points
    /// with a per-centroid learning rate `1/count`.
    ///
    /// # Errors
    ///
    /// * [`EncodingError::InvalidConfig`] for invalid configurations.
    /// * [`EncodingError::InsufficientData`] if the corpus has fewer samples
    ///   than clusters.
    /// * [`EncodingError::DimensionMismatch`] if corpus vectors have unequal
    ///   dimensions.
    pub fn fit<R: Rng + ?Sized>(
        corpus: &[Vector],
        config: KMeansConfig,
        rng: &mut R,
    ) -> Result<Self, EncodingError> {
        config.validate()?;
        if corpus.len() < config.num_codes {
            return Err(EncodingError::InsufficientData {
                samples: corpus.len(),
                required: config.num_codes,
            });
        }
        let dimension = corpus[0].len();
        for sample in corpus {
            check_dimension(dimension, sample)?;
        }

        // k-means++ initialization: spread the seeds out so a generating
        // cluster is never left without a centroid merely because of an
        // unlucky uniform draw.
        let mut centroids: Vec<Vector> = vec![corpus[rng.gen_range(0..corpus.len())].clone()];
        let mut nearest_sq = Vec::with_capacity(corpus.len());
        for sample in corpus {
            nearest_sq.push(centroids[0].squared_distance(sample)?);
        }
        while centroids.len() < config.num_codes {
            let total: f64 = nearest_sq.iter().sum();
            let chosen = if total > 0.0 {
                // Inverse-CDF sample proportional to squared distance.
                // Zero-weight samples (already-chosen centroids) are never
                // eligible, so a duplicate centroid — and with it an empty
                // cluster reporting min_cluster_size 0 to the privacy layer
                // — cannot be produced by a 0.0 draw or rounding residue.
                let mut remaining = rng.gen::<f64>() * total;
                let mut chosen = None;
                for (i, &weight) in nearest_sq.iter().enumerate() {
                    if weight <= 0.0 {
                        continue;
                    }
                    remaining -= weight;
                    if remaining <= 0.0 {
                        chosen = Some(i);
                        break;
                    }
                }
                chosen.unwrap_or_else(|| {
                    // Rounding left a residue: take the heaviest sample.
                    nearest_sq
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .expect("corpus is non-empty")
                })
            } else {
                // All samples coincide with a centroid; any pick works.
                rng.gen_range(0..corpus.len())
            };
            let centroid = corpus[chosen].clone();
            for (sample, nearest) in corpus.iter().zip(nearest_sq.iter_mut()) {
                *nearest = nearest.min(centroid.squared_distance(sample)?);
            }
            centroids.push(centroid);
        }
        let mut counts = vec![0u64; config.num_codes];

        for _ in 0..config.iterations {
            // Sample a mini-batch (with replacement when the corpus is large,
            // the whole corpus otherwise).
            let batch: Vec<&Vector> = if corpus.len() <= config.batch_size {
                corpus.iter().collect()
            } else {
                (0..config.batch_size)
                    .map(|_| &corpus[rng.gen_range(0..corpus.len())])
                    .collect()
            };

            // Assign then update with per-centroid learning rates.
            let mut movement = 0.0;
            for sample in batch {
                let (best, _) = nearest_centroid(&centroids, sample)?;
                counts[best] += 1;
                let rate = 1.0 / counts[best] as f64;
                let old = centroids[best].clone();
                // centroid += rate * (sample - centroid)
                let delta = sample.sub(&centroids[best])?;
                centroids[best].axpy(rate, &delta)?;
                movement += centroids[best].squared_distance(&old)?.sqrt();
            }
            if movement / config.num_codes as f64 <= config.tolerance {
                break;
            }
        }

        // Final full assignment for the statistics.
        let mut assignments = Vec::with_capacity(corpus.len());
        let mut distortions = Vec::with_capacity(corpus.len());
        for sample in corpus {
            let (best, dist) = nearest_centroid(&centroids, sample)?;
            assignments.push(best);
            distortions.push(dist);
        }
        let stats = EncoderStats::from_assignments(config.num_codes, &assignments, &distortions);

        Ok(Self {
            centroids,
            stats,
            dimension,
        })
    }

    /// The fitted cluster centroids, one per code.
    #[must_use]
    pub fn centroids(&self) -> &[Vector] {
        &self.centroids
    }
}

/// Finds the nearest centroid and its squared distance.
fn nearest_centroid(centroids: &[Vector], sample: &Vector) -> Result<(usize, f64), EncodingError> {
    let mut best = 0usize;
    let mut best_dist = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let dist = c.squared_distance(sample)?;
        if dist < best_dist {
            best = i;
            best_dist = dist;
        }
    }
    Ok((best, best_dist))
}

impl Encoder for KMeansEncoder {
    fn num_codes(&self) -> usize {
        self.centroids.len()
    }

    fn context_dimension(&self) -> usize {
        self.dimension
    }

    fn encode(&self, context: &Vector) -> Result<ContextCode, EncodingError> {
        check_dimension(self.dimension, context)?;
        let (best, _) = nearest_centroid(&self.centroids, context)?;
        Ok(ContextCode::new(best))
    }

    fn representative(&self, code: ContextCode) -> Result<Vector, EncodingError> {
        check_code(self.centroids.len(), code)?;
        Ok(self.centroids[code.value()].clone())
    }

    fn stats(&self) -> &EncoderStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "kmeans"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a corpus with `clusters` well-separated groups on the simplex.
    fn clustered_corpus(clusters: usize, per_cluster: usize, rng: &mut StdRng) -> Vec<Vector> {
        let mut corpus = Vec::new();
        for c in 0..clusters {
            for _ in 0..per_cluster {
                let mut v = vec![0.05; clusters];
                v[c] = 1.0 + rng.gen_range(-0.05..0.05);
                corpus.push(Vector::from(v).normalized_l1().unwrap());
            }
        }
        corpus
    }

    #[test]
    fn rejects_invalid_configurations() {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus = vec![Vector::from(vec![1.0, 0.0]); 10];
        assert!(KMeansEncoder::fit(&corpus, KMeansConfig::new(0), &mut rng).is_err());
        assert!(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(2).with_batch_size(0), &mut rng).is_err()
        );
        assert!(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(2).with_iterations(0), &mut rng).is_err()
        );
    }

    #[test]
    fn rejects_insufficient_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus = vec![Vector::from(vec![1.0, 0.0]); 3];
        assert!(matches!(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(8), &mut rng),
            Err(EncodingError::InsufficientData { .. })
        ));
    }

    #[test]
    fn rejects_ragged_corpus() {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(matches!(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(2), &mut rng),
            Err(EncodingError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rng = StdRng::seed_from_u64(42);
        let corpus = clustered_corpus(4, 50, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap();

        // Samples from the same generating cluster should map to the same code,
        // and different clusters to different codes.
        let codes: Vec<usize> = corpus
            .iter()
            .map(|x| encoder.encode(x).unwrap().value())
            .collect();
        for c in 0..4 {
            let group = &codes[c * 50..(c + 1) * 50];
            let first = group[0];
            assert!(
                group.iter().filter(|&&g| g == first).count() >= 45,
                "cluster {c} fragmented: {group:?}"
            );
        }
        let distinct: std::collections::HashSet<_> = (0..4).map(|c| codes[c * 50]).collect();
        assert_eq!(distinct.len(), 4, "clusters collapsed");
    }

    #[test]
    fn stats_reflect_cluster_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = clustered_corpus(3, 30, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(3), &mut rng).unwrap();
        let stats = encoder.stats();
        assert_eq!(stats.num_codes, 3);
        assert_eq!(stats.cluster_sizes.iter().sum::<usize>(), 90);
        assert!(stats.min_cluster_size >= 25, "stats = {stats:?}");
        assert!(stats.mean_distortion < 0.05);
    }

    #[test]
    fn encode_is_deterministic_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = clustered_corpus(5, 20, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(5), &mut rng).unwrap();
        for x in &corpus {
            let a = encoder.encode(x).unwrap();
            let b = encoder.encode(x).unwrap();
            assert_eq!(a, b);
            assert!(a.value() < 5);
        }
    }

    #[test]
    fn representative_is_centroid_and_validates_code() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = clustered_corpus(2, 20, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(2), &mut rng).unwrap();
        let rep = encoder.representative(ContextCode::new(1)).unwrap();
        assert_eq!(rep.len(), encoder.context_dimension());
        assert!(encoder.representative(ContextCode::new(2)).is_err());
    }

    #[test]
    fn encode_rejects_wrong_dimension() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = clustered_corpus(2, 20, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(2), &mut rng).unwrap();
        assert!(encoder.encode(&Vector::zeros(7)).is_err());
    }

    #[test]
    fn single_cluster_degenerates_gracefully() {
        let mut rng = StdRng::seed_from_u64(11);
        let corpus = clustered_corpus(3, 10, &mut rng);
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(1), &mut rng).unwrap();
        assert_eq!(encoder.num_codes(), 1);
        for x in &corpus {
            assert_eq!(encoder.encode(x).unwrap().value(), 0);
        }
        assert_eq!(encoder.stats().min_cluster_size, 30);
    }
}
