//! Uniform grid encoder: quantize, then hash the grid cell to a code.

use crate::encoder::{check_code, check_dimension};
use crate::{ContextCode, Encoder, EncoderStats, EncodingError, Quantizer};
use p2b_linalg::Vector;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A deterministic, fit-free encoder that quantizes the context to the
/// fixed-precision grid and hashes the grid cell into `k` buckets.
///
/// Unlike [`crate::KMeansEncoder`] the grid encoder needs no training corpus,
/// which makes it useful as (a) the "optimal encoder" stand-in when contexts
/// are uniformly distributed over the simplex (every code then covers roughly
/// `n/k` grid points, the assumption behind `l = U/k` in Section 4) and
/// (b) an ablation of the clustering step.
#[derive(Debug, Clone)]
pub struct GridEncoder {
    quantizer: Quantizer,
    num_codes: usize,
    dimension: usize,
    stats: EncoderStats,
    /// Representative contexts per code, populated lazily from observed data
    /// at fit time (uniform corpus) so `representative` has something
    /// meaningful to return.
    representatives: Vec<Vector>,
}

impl GridEncoder {
    /// Creates a grid encoder for `dimension`-dimensional contexts with
    /// `num_codes` hash buckets at quantization precision `precision`.
    ///
    /// A synthetic corpus of `samples_per_code * num_codes` uniformly random
    /// simplex points is used to estimate cluster sizes and representatives.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidConfig`] for zero dimension or codes
    /// and propagates quantizer construction errors.
    pub fn new<R: rand::Rng + ?Sized>(
        dimension: usize,
        num_codes: usize,
        precision: u32,
        rng: &mut R,
    ) -> Result<Self, EncodingError> {
        if dimension == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if num_codes == 0 {
            return Err(EncodingError::InvalidConfig {
                parameter: "num_codes",
                message: "must be at least 1".to_owned(),
            });
        }
        let quantizer = Quantizer::new(precision)?;

        let samples_per_code = 32usize;
        let total = samples_per_code * num_codes;
        let mut assignments = Vec::with_capacity(total);
        let mut representatives: Vec<Option<Vector>> = vec![None; num_codes];
        let mut sums: Vec<Vector> = vec![Vector::zeros(dimension); num_codes];
        let mut counts = vec![0usize; num_codes];

        for _ in 0..total {
            // Uniform point on the simplex via normalized exponentials.
            let raw: Vec<f64> = (0..dimension)
                .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
                .collect();
            let point = Vector::from(raw).normalized_l1()?;
            let code = Self::hash_code(&quantizer, num_codes, &point)?;
            assignments.push(code);
            sums[code].axpy(1.0, &point)?;
            counts[code] += 1;
            if representatives[code].is_none() {
                representatives[code] = Some(quantizer.round(&point)?);
            }
        }

        let representatives: Vec<Vector> = (0..num_codes)
            .map(|c| {
                if counts[c] > 0 {
                    sums[c].scaled(1.0 / counts[c] as f64)
                } else {
                    Vector::filled(dimension, 1.0 / dimension as f64)
                }
            })
            .collect();

        let distortions = vec![0.0; assignments.len()];
        let stats = EncoderStats::from_assignments(num_codes, &assignments, &distortions);
        Ok(Self {
            quantizer,
            num_codes,
            dimension,
            stats,
            representatives,
        })
    }

    /// The quantizer used before hashing.
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    fn hash_code(
        quantizer: &Quantizer,
        num_codes: usize,
        context: &Vector,
    ) -> Result<usize, EncodingError> {
        let quantized = quantizer.quantize(context)?;
        let mut hasher = DefaultHasher::new();
        quantized.units().hash(&mut hasher);
        Ok((hasher.finish() % num_codes as u64) as usize)
    }
}

impl Encoder for GridEncoder {
    fn num_codes(&self) -> usize {
        self.num_codes
    }

    fn context_dimension(&self) -> usize {
        self.dimension
    }

    fn encode(&self, context: &Vector) -> Result<ContextCode, EncodingError> {
        check_dimension(self.dimension, context)?;
        Ok(ContextCode::new(Self::hash_code(
            &self.quantizer,
            self.num_codes,
            context,
        )?))
    }

    fn representative(&self, code: ContextCode) -> Result<Vector, EncodingError> {
        check_code(self.num_codes, code)?;
        Ok(self.representatives[code.value()].clone())
    }

    fn stats(&self) -> &EncoderStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(GridEncoder::new(0, 4, 1, &mut rng).is_err());
        assert!(GridEncoder::new(3, 0, 1, &mut rng).is_err());
        assert!(GridEncoder::new(3, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn same_grid_cell_maps_to_same_code() {
        let mut rng = StdRng::seed_from_u64(1);
        let encoder = GridEncoder::new(3, 8, 1, &mut rng).unwrap();
        // Both contexts quantize to (0.3, 0.3, 0.4) at q = 1.
        let a = Vector::from(vec![0.31, 0.29, 0.40]);
        let b = Vector::from(vec![0.29, 0.32, 0.39]);
        assert_eq!(encoder.encode(&a).unwrap(), encoder.encode(&b).unwrap());
    }

    #[test]
    fn codes_are_in_range_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(2);
        let encoder = GridEncoder::new(4, 16, 1, &mut rng).unwrap();
        for i in 0..50 {
            let ctx = Vector::from(vec![i as f64, 1.0, 2.0, 3.0])
                .normalized_l1()
                .unwrap();
            let code = encoder.encode(&ctx).unwrap();
            assert!(code.value() < 16);
            assert_eq!(code, encoder.encode(&ctx).unwrap());
        }
    }

    #[test]
    fn representatives_are_valid_contexts() {
        let mut rng = StdRng::seed_from_u64(3);
        let encoder = GridEncoder::new(3, 6, 1, &mut rng).unwrap();
        for c in 0..6 {
            let rep = encoder.representative(ContextCode::new(c)).unwrap();
            assert_eq!(rep.len(), 3);
            assert!((rep.sum() - 1.0).abs() < 1e-6);
        }
        assert!(encoder.representative(ContextCode::new(6)).is_err());
    }

    #[test]
    fn encode_rejects_wrong_dimension() {
        let mut rng = StdRng::seed_from_u64(4);
        let encoder = GridEncoder::new(3, 6, 1, &mut rng).unwrap();
        assert!(encoder.encode(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn stats_cover_all_samples() {
        let mut rng = StdRng::seed_from_u64(5);
        let encoder = GridEncoder::new(3, 4, 1, &mut rng).unwrap();
        let stats = encoder.stats();
        assert_eq!(stats.num_codes, 4);
        assert_eq!(stats.cluster_sizes.iter().sum::<usize>(), 32 * 4);
    }
}
