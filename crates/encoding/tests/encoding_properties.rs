//! Property-based tests for the encoding subsystem.

use p2b_encoding::{
    enumerate_simplex_grid, simplex_cardinality, Encoder, GridEncoder, KMeansConfig, KMeansEncoder,
    LshConfig, LshEncoder, Quantizer,
};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantized contexts always land exactly on the fixed-precision grid:
    /// integer units summing to 10^q.
    #[test]
    fn quantization_preserves_the_sum_invariant(
        raw in prop::collection::vec(0.0f64..100.0, 1..12),
        q in 1u32..4,
    ) {
        let quantizer = Quantizer::new(q).unwrap();
        let quantized = quantizer.quantize(&Vector::from(raw)).unwrap();
        prop_assert_eq!(quantized.units().iter().sum::<u64>(), 10u64.pow(q));
    }

    /// Quantization is idempotent: rounding a rounded context is a no-op.
    #[test]
    fn quantization_is_idempotent(
        raw in prop::collection::vec(0.01f64..10.0, 2..8),
        q in 1u32..3,
    ) {
        let quantizer = Quantizer::new(q).unwrap();
        let once = quantizer.round(&Vector::from(raw)).unwrap();
        let twice = quantizer.round(&once).unwrap();
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The stars-and-bars cardinality matches an explicit enumeration for
    /// small dimensions.
    #[test]
    fn cardinality_matches_enumeration(d in 2usize..5) {
        let grid = enumerate_simplex_grid(d, 1, 100_000).unwrap();
        prop_assert_eq!(grid.len() as u128, simplex_cardinality(d, 1).unwrap());
    }

    /// Pascal's rule: C(10^q + d - 1, d - 1) satisfies the recurrence obtained
    /// by conditioning on the units assigned to the last coordinate.
    #[test]
    fn cardinality_satisfies_pascal_recurrence(d in 2usize..6) {
        // n(d, q) = sum_{u=0}^{10^q} n(d-1 over remaining units) collapses to
        // the hockey-stick identity; we verify the simpler Pascal relation
        // C(m, r) = C(m-1, r-1) + C(m-1, r) at m = 10 + d - 1, r = d - 1 via
        // cardinalities of neighbouring dimensions.
        let n_d = simplex_cardinality(d, 1).unwrap();
        let n_d_minus = simplex_cardinality(d - 1, 1).unwrap();
        // C(10 + d - 1, d - 1) - C(10 + d - 2, d - 2) = C(10 + d - 2, d - 1)
        let m = 10 + d as u128 - 2;
        let r = d as u128 - 1;
        // Compute C(m, r) directly with a simple product (small numbers).
        let mut expect = 1u128;
        for i in 0..r {
            expect = expect * (m - i) / (i + 1);
        }
        prop_assert_eq!(n_d - n_d_minus, expect);
    }

    /// Every encoder maps arbitrary valid contexts to codes within range and
    /// provides representatives of the right dimension.
    #[test]
    fn encoders_produce_in_range_codes(seed in any::<u64>(), raw in prop::collection::vec(0.01f64..1.0, 4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..40)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        let context = Vector::from(raw).normalized_l1().unwrap();

        let kmeans = KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap();
        let grid = GridEncoder::new(4, 8, 1, &mut rng).unwrap();
        let lsh = LshEncoder::fit(&corpus, LshConfig::new(4, 3), &mut rng).unwrap();

        let encoders: Vec<&dyn Encoder> = vec![&kmeans, &grid, &lsh];
        for encoder in encoders {
            let code = encoder.encode(&context).unwrap();
            prop_assert!(code.value() < encoder.num_codes());
            let rep = encoder.representative(code).unwrap();
            prop_assert_eq!(rep.len(), 4);
        }
    }

    /// k-means cluster sizes always add up to the corpus size and the minimum
    /// cluster size never exceeds the mean corpus share.
    #[test]
    fn kmeans_cluster_sizes_are_consistent(seed in any::<u64>(), k in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..60)
            .map(|i| {
                let mut v = vec![0.05; 6];
                v[i % 6] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(k), &mut rng).unwrap();
        let stats = encoder.stats();
        prop_assert_eq!(stats.cluster_sizes.iter().sum::<usize>(), corpus.len());
        prop_assert!(stats.min_cluster_size <= corpus.len() / stats.occupied_codes().max(1));
    }
}
