//! Edge-case coverage for the encoders: empty context vectors, constant
//! features and duplicated corpus points must produce errors or stable
//! codes — never panics. A production encoder fit runs on whatever
//! historical corpus exists, and serving traffic includes malformed
//! contexts; both ends must degrade gracefully.

use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder, LshConfig, LshEncoder, Quantizer};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn duplicated_corpus(copies: usize) -> Vec<Vector> {
    (0..copies)
        .map(|_| Vector::from(vec![0.25, 0.25, 0.25, 0.25]))
        .collect()
}

fn constant_feature_corpus(copies: usize) -> Vec<Vector> {
    // Two features carry all the mass, two are constant zero.
    (0..copies)
        .map(|_| {
            Vector::from(vec![0.5, 0.5, 0.0, 0.0])
                .normalized_l1()
                .expect("non-empty")
        })
        .collect()
}

// ── k-means ──────────────────────────────────────────────────────────────

#[test]
fn kmeans_fit_on_duplicate_points_encodes_stably() {
    let mut rng = StdRng::seed_from_u64(0);
    // 40 identical points, k = 4: every centroid collapses onto the same
    // location. The fit must not panic and encoding must be deterministic.
    let encoder = KMeansEncoder::fit(&duplicated_corpus(40), KMeansConfig::new(4), &mut rng)
        .expect("duplicate corpora are degenerate but fittable");
    let probe = Vector::from(vec![0.25; 4]);
    let code = encoder.encode(&probe).expect("encoding succeeds");
    for _ in 0..10 {
        assert_eq!(
            encoder.encode(&probe).unwrap(),
            code,
            "codes must be stable"
        );
    }
    assert!(code.value() < encoder.num_codes());
}

#[test]
fn kmeans_fit_on_constant_features_encodes_stably() {
    let mut rng = StdRng::seed_from_u64(1);
    let corpus = constant_feature_corpus(40);
    let encoder = KMeansEncoder::fit(&corpus, KMeansConfig::new(2), &mut rng)
        .expect("constant-feature corpora are fittable");
    let code = encoder.encode(&corpus[0]).expect("encoding succeeds");
    assert_eq!(encoder.encode(&corpus[7]).unwrap(), code);
    // Representatives of every code stay finite and well-shaped.
    for c in 0..encoder.num_codes() {
        let rep = encoder
            .representative(p2b_encoding::ContextCode::new(c))
            .expect("representative exists");
        assert_eq!(rep.len(), 4);
        assert!(rep.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn kmeans_rejects_empty_and_undersized_corpora() {
    let mut rng = StdRng::seed_from_u64(2);
    assert!(
        KMeansEncoder::fit(&[], KMeansConfig::new(2), &mut rng).is_err(),
        "an empty corpus cannot seed k-means++"
    );
    assert!(
        KMeansEncoder::fit(&duplicated_corpus(3), KMeansConfig::new(8), &mut rng).is_err(),
        "fewer samples than clusters is insufficient data"
    );
}

#[test]
fn kmeans_encode_rejects_the_empty_context() {
    let mut rng = StdRng::seed_from_u64(3);
    let encoder =
        KMeansEncoder::fit(&duplicated_corpus(8), KMeansConfig::new(1), &mut rng).unwrap();
    assert!(
        encoder.encode(&Vector::from(Vec::new())).is_err(),
        "a zero-dimensional context is a dimension mismatch, not a panic"
    );
}

// ── LSH ──────────────────────────────────────────────────────────────────

#[test]
fn lsh_handles_empty_corpus_constant_corpus_and_empty_contexts() {
    let mut rng = StdRng::seed_from_u64(4);
    // No corpus at all: the encoder centers on the uniform simplex point.
    let encoder = LshEncoder::fit(&[], LshConfig::new(4, 3), &mut rng)
        .expect("LSH needs no corpus to draw hyperplanes");
    let probe = Vector::from(vec![0.7, 0.1, 0.1, 0.1]);
    let code = encoder.encode(&probe).expect("encoding succeeds");
    assert_eq!(
        encoder.encode(&probe).unwrap(),
        code,
        "codes must be stable"
    );
    assert!(encoder.encode(&Vector::from(Vec::new())).is_err());

    // A constant corpus centers the hyperplanes exactly on the data; every
    // duplicate must land in the same bucket, deterministically.
    let corpus = constant_feature_corpus(30);
    let encoder = LshEncoder::fit(&corpus, LshConfig::new(4, 2), &mut rng)
        .expect("constant corpora are fittable");
    let code = encoder.encode(&corpus[0]).expect("encoding succeeds");
    for sample in &corpus {
        assert_eq!(encoder.encode(sample).unwrap(), code);
    }
}

#[test]
fn lsh_fit_on_duplicate_points_is_stable() {
    let mut rng = StdRng::seed_from_u64(5);
    let corpus = duplicated_corpus(20);
    let encoder =
        LshEncoder::fit(&corpus, LshConfig::new(4, 4), &mut rng).expect("duplicates are fittable");
    let code = encoder.encode(&corpus[0]).unwrap();
    assert_eq!(encoder.encode(&corpus[19]).unwrap(), code);
    assert!(code.value() < encoder.num_codes());
}

// ── Quantizer ────────────────────────────────────────────────────────────

#[test]
fn quantizer_rejects_the_empty_context() {
    let quantizer = Quantizer::new(3).unwrap();
    assert!(
        quantizer.quantize(&Vector::from(Vec::new())).is_err(),
        "an empty context cannot be normalized"
    );
    assert!(quantizer.round(&Vector::from(Vec::new())).is_err());
}

#[test]
fn quantizer_handles_constant_and_degenerate_contexts() {
    let quantizer = Quantizer::new(3).unwrap();
    // A constant vector quantizes to the uniform grid point, exactly.
    let constant = quantizer.quantize(&Vector::from(vec![0.25; 4])).unwrap();
    assert_eq!(constant.units().iter().sum::<u64>(), quantizer.units());
    let rounded = constant.to_vector();
    assert!(rounded.iter().all(|&x| (x - 0.25).abs() < 1e-12));

    // The all-zero vector has no mass to normalize; the quantizer falls
    // back to a uniform spread rather than dividing by zero.
    let zeros = quantizer.quantize(&Vector::from(vec![0.0; 4])).unwrap();
    let spread = zeros.to_vector();
    assert!((spread.sum() - 1.0).abs() < 1e-12);
    assert!(spread.iter().all(|&x| (x - 0.25).abs() < 1e-12));

    // Duplicate quantizations are bit-stable.
    let again = quantizer.quantize(&Vector::from(vec![0.0; 4])).unwrap();
    assert_eq!(zeros, again);
}
