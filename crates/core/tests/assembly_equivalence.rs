//! Equivalence pins for the incremental epoch assembly.
//!
//! Since the dirty-arm refactor the [`ModelService`] keeps a persistent
//! assembled model and re-merges only the arms some shard folded updates
//! into since the previous assembly. Two properties make that safe, and both
//! are pinned here over random workloads:
//!
//! 1. **Bit-identity** — at every epoch, on every shard count, the
//!    incremental [`ModelService::assemble_with_dirty`] must equal the
//!    preserved from-scratch [`ModelService::assemble_reference`] bit for
//!    bit (designs, reward vectors, pulls, thetas), and must be independent
//!    of the shard count.
//! 2. **Dirty-set conservation** — an arm appears in the returned dirty
//!    union iff some shard folded an update into it since the previous
//!    taking assembly (the first assembly reports everything dirtied since
//!    spawn).

use p2b_bandit::{Action, CoalescedUpdate, ContextualPolicy, LinUcbConfig};
use p2b_core::ModelService;
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_context(d: usize, rng: &mut StdRng) -> Vector {
    let raw: Vector = (0..d).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    raw.normalized_l1().unwrap()
}

fn random_updates(d: usize, a: usize, len: usize, rng: &mut StdRng) -> Vec<CoalescedUpdate> {
    (0..len)
        .map(|_| {
            let count = rng.gen_range(1u64..10);
            let reward_sum = rng.gen_range(0.0..=count as f64);
            CoalescedUpdate::new(
                random_context(d, rng),
                Action::new(rng.gen_range(0..a)),
                count,
                reward_sum,
            )
            .unwrap()
        })
        .collect()
}

fn check_bit_identical(left: &p2b_bandit::LinUcb, right: &p2b_bandit::LinUcb) {
    let a = left.config().num_actions;
    assert_eq!(left.observations(), right.observations());
    for arm in 0..a {
        let action = Action::new(arm);
        assert_eq!(left.pulls(action).unwrap(), right.pulls(action).unwrap());
        for (x, y) in left
            .design(action)
            .unwrap()
            .as_slice()
            .iter()
            .zip(right.design(action).unwrap().as_slice().iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "design diverged on arm {arm}");
        }
        for (x, y) in left
            .reward_vector(action)
            .unwrap()
            .iter()
            .zip(right.reward_vector(action).unwrap().iter())
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "reward vector diverged on arm {arm}"
            );
        }
        for (x, y) in left
            .theta(action)
            .unwrap()
            .iter()
            .zip(right.theta(action).unwrap().iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "theta diverged on arm {arm}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across interleaved ingest/assemble epochs and shard counts {1, 2, 4},
    /// the incremental assembly equals the from-scratch reference rebuild
    /// bit for bit, and all shard counts agree with each other.
    #[test]
    fn incremental_assembly_matches_the_reference_at_every_epoch(
        seed in any::<u64>(),
        d in 1usize..5,
        a in 1usize..7,
        epochs in 1usize..5,
    ) {
        let mut services: Vec<ModelService> = [1usize, 2, 4]
            .iter()
            .map(|&shards| ModelService::spawn(LinUcbConfig::new(d, a), shards).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for epoch in 0..epochs {
            let len = rng.gen_range(1usize..12);
            let updates = random_updates(d, a, len, &mut rng);
            let mut assembled_per_shard_count = Vec::new();
            for service in &mut services {
                service.ingest(updates.clone()).unwrap();
                // The reference is taken first: it must not consume the
                // shards' dirty tracking.
                let reference = service.assemble_reference().unwrap();
                let (incremental, _) = service.assemble_with_dirty().unwrap();
                check_bit_identical(&reference, &incremental);
                assembled_per_shard_count.push(incremental);
            }
            for other in &assembled_per_shard_count[1..] {
                check_bit_identical(&assembled_per_shard_count[0], other);
            }
            prop_assert!(epoch < epochs);
        }
    }

    /// An arm is re-merged iff some shard folded an update into it since the
    /// previous taking assembly. The first assembly reports every arm
    /// dirtied since spawn; an assembly with no interleaved ingest reports
    /// an empty dirty set (and still serves the identical model).
    #[test]
    fn dirty_sets_conserve_the_touched_arms(
        seed in any::<u64>(),
        d in 1usize..4,
        a in 2usize..8,
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        epochs in 1usize..5,
    ) {
        let mut service = ModelService::spawn(LinUcbConfig::new(d, a), shards).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..epochs {
            let len = rng.gen_range(1usize..10);
            let updates = random_updates(d, a, len, &mut rng);
            let expected: BTreeSet<usize> =
                updates.iter().map(|u| u.action().index()).collect();
            service.ingest(updates).unwrap();
            let (model, dirty) = service.assemble_with_dirty().unwrap();
            let dirty_set: BTreeSet<usize> = dirty.iter().copied().collect();
            prop_assert_eq!(dirty.len(), dirty_set.len(), "dirty union must be deduplicated");
            prop_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty union must be sorted");
            prop_assert_eq!(&dirty_set, &expected);

            // No ingest in between → nothing dirty, identical model served.
            let (again, none_dirty) = service.assemble_with_dirty().unwrap();
            prop_assert!(none_dirty.is_empty());
            check_bit_identical(&model, &again);
        }
    }
}

/// Clean arms share their per-arm storage across epoch snapshots: after an
/// epoch that dirtied only one arm, the assembled clone and its predecessor
/// hold bit-identical statistics for every untouched arm.
#[test]
fn sparse_epochs_leave_clean_arm_statistics_untouched() {
    let (d, a) = (3usize, 6usize);
    let mut service = ModelService::spawn(LinUcbConfig::new(d, a), 2).unwrap();
    let mut rng = StdRng::seed_from_u64(17);

    // Epoch 1: touch every arm so the baseline is warm.
    let warm: Vec<CoalescedUpdate> = (0..a)
        .map(|arm| {
            CoalescedUpdate::new(random_context(d, &mut rng), Action::new(arm), 3, 2.0).unwrap()
        })
        .collect();
    service.ingest(warm).unwrap();
    let (before, dirty) = service.assemble_with_dirty().unwrap();
    assert_eq!(dirty.len(), a);

    // Epoch 2: one update into arm 2 only.
    let sparse =
        vec![CoalescedUpdate::new(random_context(d, &mut rng), Action::new(2), 1, 1.0).unwrap()];
    service.ingest(sparse).unwrap();
    let (after, dirty) = service.assemble_with_dirty().unwrap();
    assert_eq!(dirty, vec![2]);

    for arm in 0..a {
        let action = Action::new(arm);
        if arm == 2 {
            assert_eq!(
                after.pulls(action).unwrap(),
                before.pulls(action).unwrap() + 1
            );
            continue;
        }
        assert_eq!(after.pulls(action).unwrap(), before.pulls(action).unwrap());
        for (x, y) in after
            .design(action)
            .unwrap()
            .as_slice()
            .iter()
            .zip(before.design(action).unwrap().as_slice().iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "clean arm {arm} changed bits");
        }
    }
    // And the incremental result still equals the from-scratch reference.
    check_bit_identical(&after, &service.assemble_reference().unwrap());
}
