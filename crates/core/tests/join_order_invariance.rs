//! Property suite for the delayed-reward join buffer: the order (and the
//! round, within the window) in which rewards arrive must not change what
//! the buffer releases — and therefore must not change the model trained on
//! the released decisions.
//!
//! The argument: [`RewardJoinBuffer`] finalizes a decision exactly when the
//! buffer advances past `decided_round + max_delay`, always in ticket
//! order, so the released sequence depends only on *which* decisions got a
//! reward inside their window, never on when or in what order the rewards
//! showed up. Feeding the released stream into LinUCB then produces
//! parameters that agree far below the 1e-12 bar (they are bit-identical).

use p2b_bandit::{Action, ContextualPolicy, LinUcb, LinUcbConfig};
use p2b_core::{DecisionTicket, RewardJoinBuffer};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMENSION: usize = 4;
const NUM_ACTIONS: usize = 3;
const DECISIONS_PER_ROUND: usize = 4;

/// One decision: a model context (picked by cluster), an action, the reward
/// that will eventually arrive and its delivery delay in rounds.
#[derive(Debug, Clone, Copy)]
struct Decision {
    cluster: usize,
    action: usize,
    reward: f64,
    delay: u64,
}

fn decisions(max_delay: u64) -> impl Strategy<Value = Vec<Decision>> {
    const REWARDS: [f64; 4] = [0.0, 0.25, 0.75, 1.0];
    prop::collection::vec(
        (
            0..DIMENSION,
            0..NUM_ACTIONS,
            0..REWARDS.len(),
            0..=max_delay,
        )
            .prop_map(|(cluster, action, reward, delay)| Decision {
                cluster,
                action,
                reward: REWARDS[reward],
                delay,
            }),
        1..48,
    )
}

fn context(cluster: usize) -> Vector {
    let mut raw = vec![0.05; DIMENSION];
    raw[cluster % DIMENSION] = 1.0;
    Vector::from(raw).normalized_l1().expect("non-empty")
}

/// Replays the decision stream through a join buffer. Decisions are made in
/// fixed rounds (`DECISIONS_PER_ROUND` per round); each decision's reward is
/// delivered `delay` rounds later. `shuffle_seed` permutes the join-call
/// order *within* each delivery round (`None` keeps ticket order), and
/// `stretch_delays` re-times deliveries to the end of each window — both
/// perturbations the buffer must be invariant to. The released stream is
/// folded into a LinUCB model in release order.
fn run(
    decisions: &[Decision],
    max_delay: u64,
    shuffle_seed: Option<u64>,
    stretch_delays: bool,
) -> (LinUcb, u64, u64) {
    let mut buffer: RewardJoinBuffer<(usize, usize)> = RewardJoinBuffer::new(max_delay);
    let mut model = LinUcb::new(LinUcbConfig::new(DIMENSION, NUM_ACTIONS)).expect("valid config");
    // arrivals[r] = rewards to deliver while the buffer is in round r.
    let rounds = decisions.len().div_ceil(DECISIONS_PER_ROUND) as u64;
    // Delivery rounds must cover the largest *scheduled* delay, which the
    // strategies bound by 4 — even when it exceeds this run's join window
    // (that is how out-of-window expiry gets exercised).
    let max_scheduled_delay = decisions.iter().map(|d| d.delay).max().unwrap_or(0);
    let horizon = (rounds + max_scheduled_delay.max(max_delay) + 2) as usize;
    let mut arrivals: Vec<Vec<(DecisionTicket, f64)>> = vec![Vec::new(); horizon];
    let mut shuffle_rng = shuffle_seed.map(StdRng::seed_from_u64);

    let mut released = 0u64;
    let mut pending = decisions.iter();
    for round in 0..rounds {
        for decision in pending.by_ref().take(DECISIONS_PER_ROUND) {
            let ticket = buffer.record((decision.cluster, decision.action));
            let delay = if stretch_delays {
                max_delay
            } else {
                decision.delay
            };
            arrivals[(round + delay) as usize].push((ticket, decision.reward));
        }
        deliver(&mut buffer, &mut arrivals[round as usize], &mut shuffle_rng);
        released += fold(&mut model, buffer.advance_round().joined);
    }
    // Trailing delivery rounds after the last decision round.
    for round in rounds..horizon as u64 {
        deliver(&mut buffer, &mut arrivals[round as usize], &mut shuffle_rng);
        released += fold(&mut model, buffer.advance_round().joined);
    }
    released += fold(&mut model, buffer.finish().joined);
    (model, released, buffer.stats().expired)
}

fn deliver(
    buffer: &mut RewardJoinBuffer<(usize, usize)>,
    due: &mut Vec<(DecisionTicket, f64)>,
    shuffle_rng: &mut Option<StdRng>,
) {
    if let Some(rng) = shuffle_rng {
        // Fisher–Yates: arrival order within the round is adversarial.
        for i in (1..due.len()).rev() {
            let j = rng.gen_range(0..=i);
            due.swap(i, j);
        }
    }
    for (ticket, reward) in due.drain(..) {
        buffer
            .join(ticket, reward)
            .expect("join in window succeeds");
    }
}

fn fold(model: &mut LinUcb, joined: Vec<p2b_core::JoinedDecision<(usize, usize)>>) -> u64 {
    let count = joined.len() as u64;
    for decision in joined {
        let (cluster, action) = decision.payload;
        model
            .update(&context(cluster), Action::new(action), decision.reward)
            .expect("released decisions are well-formed");
    }
    count
}

fn assert_models_match(a: &LinUcb, b: &LinUcb, label: &str) {
    assert_eq!(a.observations(), b.observations(), "{label}: observations");
    for action in 0..NUM_ACTIONS {
        let action = Action::new(action);
        let design_diff = a
            .design(action)
            .unwrap()
            .max_abs_diff(b.design(action).unwrap())
            .unwrap();
        assert!(
            design_diff <= 1e-12,
            "{label}: design({action:?}) differs by {design_diff}"
        );
        let ta = a.theta(action).unwrap();
        let tb = b.theta(action).unwrap();
        for i in 0..DIMENSION {
            assert!(
                (ta[i] - tb[i]).abs() <= 1e-12,
                "{label}: theta({action:?})[{i}] {} vs {}",
                ta[i],
                tb[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shuffling the reward arrival order within each round — and even
    /// re-timing every delivery to the last round of its window — yields a
    /// final model identical (≤ 1e-12) to in-order, on-time arrival.
    #[test]
    fn join_release_is_arrival_order_invariant(
        max_delay in 0u64..4,
        decisions in decisions(3),
        shuffle_seed in any::<u64>(),
    ) {
        // Clamp per-decision delays into this case's window.
        let decisions: Vec<Decision> = decisions
            .into_iter()
            .map(|mut d| { d.delay = d.delay.min(max_delay); d })
            .collect();
        let (in_order, released_a, expired_a) = run(&decisions, max_delay, None, false);
        let (shuffled, released_b, expired_b) =
            run(&decisions, max_delay, Some(shuffle_seed), false);
        prop_assert_eq!(released_a, released_b, "released counts");
        prop_assert_eq!(expired_a, expired_b, "expired counts");
        assert_models_match(&in_order, &shuffled, "shuffled arrival");

        let (stretched, released_c, _) = run(&decisions, max_delay, Some(shuffle_seed), true);
        prop_assert_eq!(released_a, released_c, "released counts (stretched)");
        assert_models_match(&in_order, &stretched, "window-edge arrival");
    }

    /// Every recorded decision is accounted for exactly once: released when
    /// its reward arrived in the window, expired otherwise.
    #[test]
    fn decisions_are_conserved(
        max_delay in 0u64..3,
        decisions in decisions(4),
    ) {
        let (_, released, expired) = run(&decisions, max_delay, None, false);
        let in_window = decisions.iter().filter(|d| d.delay <= max_delay).count() as u64;
        let lost = decisions.len() as u64 - in_window;
        prop_assert_eq!(released, in_window, "in-window rewards all release");
        prop_assert_eq!(expired, lost, "out-of-window decisions all expire");
    }
}
