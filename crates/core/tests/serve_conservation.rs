//! Decision-conservation property of the reward-join buffer under the
//! serving harness's admission discipline.
//!
//! The closed-loop harness admits arrivals through
//! [`RewardJoinBuffer::try_record`] (a hard in-flight ceiling), delivers
//! rewards with arbitrary delays — including after the window closes — and
//! shuts down *without* draining the buffer. The suite pins the accounting
//! identities the harness's report rests on, under arbitrary interleavings:
//!
//! * every admitted decision finalizes as **exactly one** of joined,
//!   expired, or in-flight at shutdown;
//! * every offered arrival is **either** admitted or shed;
//! * pending occupancy never exceeds the ceiling, at any instant.

use p2b_core::RewardJoinBuffer;
use proptest::prelude::*;

/// One scripted arrival: whether a reward comes back, how many rounds
/// late, and with what value.
#[derive(Debug, Clone, Copy)]
struct ScriptedArrival {
    rewarded: bool,
    delay: u64,
    reward_millis: u16,
}

fn arb_arrival() -> impl Strategy<Value = ScriptedArrival> {
    (any::<bool>(), 0u64..8, 0u16..=1000).prop_map(|(rewarded, delay, reward_millis)| {
        ScriptedArrival {
            rewarded,
            delay,
            reward_millis,
        }
    })
}

/// Scripts: per-round arrival batches, plus the buffer shape.
fn arb_script() -> impl Strategy<Value = (Vec<Vec<ScriptedArrival>>, u64, usize)> {
    (
        prop::collection::vec(prop::collection::vec(arb_arrival(), 0..12), 1..20),
        0u64..5,   // max_delay
        1usize..9, // in_flight_ceiling
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// admitted == joined + expired + pending-at-shutdown, admitted + shed
    /// == offered, and pending ≤ ceiling at every instant — for arbitrary
    /// arrival scripts, delays (within and beyond the window) and ceilings.
    #[test]
    fn every_admitted_decision_is_accounted_for_exactly_once(script in arb_script()) {
        let (rounds, max_delay, ceiling) = script;
        let mut buffer: RewardJoinBuffer<usize> =
            RewardJoinBuffer::new(max_delay).with_in_flight_ceiling(ceiling);
        let total_rounds = rounds.len() as u64 + max_delay + 2;
        let mut due: Vec<Vec<(p2b_core::DecisionTicket, f64)>> =
            (0..total_rounds).map(|_| Vec::new()).collect();

        let mut offered = 0u64;
        let mut admitted = 0u64;
        let mut joined = 0u64;
        let mut expired = 0u64;
        let mut arrival_id = 0usize;

        for round in 0..total_rounds {
            if let Some(batch) = rounds.get(round as usize) {
                for arrival in batch {
                    offered += 1;
                    let Some(ticket) = buffer.try_record(arrival_id) else {
                        arrival_id += 1;
                        continue;
                    };
                    arrival_id += 1;
                    admitted += 1;
                    prop_assert!(buffer.pending() <= ceiling);
                    if arrival.rewarded {
                        let at = (round + arrival.delay).min(total_rounds - 1);
                        due[at as usize]
                            .push((ticket, f64::from(arrival.reward_millis) / 1000.0));
                    }
                }
            }
            for (ticket, reward) in due[round as usize].drain(..) {
                // Late deliveries return Ok(false) and bump the
                // late_rewards counter; they must never panic or double
                // count.
                let _ = buffer.join(ticket, reward).unwrap();
            }
            let finalized = buffer.advance_round();
            joined += finalized.joined.len() as u64;
            expired += finalized.expired.len() as u64;
            prop_assert!(buffer.pending() <= ceiling);
        }

        // Shutdown without draining: whatever is pending stays in flight.
        let in_flight = buffer.pending() as u64;
        let stats = *buffer.stats();

        prop_assert_eq!(stats.decisions, admitted);
        prop_assert_eq!(stats.joined, joined);
        prop_assert_eq!(stats.expired, expired);
        prop_assert_eq!(
            admitted, joined + expired + in_flight,
            "every admitted decision must finalize exactly once",
        );
        prop_assert_eq!(
            admitted + buffer.shed(), offered,
            "every offered arrival is either admitted or shed",
        );
        prop_assert!(buffer.peak_pending() <= ceiling);
    }

    /// Draining at shutdown instead (the non-serving path): `finish`
    /// flushes every still-pending decision into joined/expired, so the
    /// same identity holds with in-flight = 0.
    #[test]
    fn finish_settles_all_remaining_decisions(script in arb_script()) {
        let (rounds, max_delay, ceiling) = script;
        let mut buffer: RewardJoinBuffer<usize> =
            RewardJoinBuffer::new(max_delay).with_in_flight_ceiling(ceiling);
        let mut admitted = 0u64;
        let mut joined = 0u64;
        let mut expired = 0u64;
        for batch in &rounds {
            for arrival in batch {
                let Some(ticket) = buffer.try_record(0) else { continue };
                admitted += 1;
                if arrival.rewarded && arrival.delay == 0 {
                    let _ = buffer
                        .join(ticket, f64::from(arrival.reward_millis) / 1000.0)
                        .unwrap();
                }
            }
            let finalized = buffer.advance_round();
            joined += finalized.joined.len() as u64;
            expired += finalized.expired.len() as u64;
        }
        let finalized = buffer.finish();
        joined += finalized.joined.len() as u64;
        expired += finalized.expired.len() as u64;
        prop_assert_eq!(buffer.pending(), 0);
        prop_assert_eq!(admitted, joined + expired);
    }
}
