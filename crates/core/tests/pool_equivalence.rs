//! Property suite for the bounded-memory agent pool: a bounded
//! [`AgentPool`] with eviction and rehydration must select exactly the same
//! actions as an unbounded pool, for any seed, any operation interleaving
//! and any storage-shard count — because dehydration persists every local
//! delta (policy state, reporter phase, queued reports) and rehydration
//! restores it.
//!
//! The argument: checkout refreshes still-shared residents to the current
//! epoch's snapshot, and rehydration hands dormant still-shared agents that
//! same snapshot, so both tiers serve from identical model state; agents
//! with local observations persist their policy verbatim. The only
//! difference between the bounded and unbounded runs is therefore *where*
//! an agent's bytes live, never what they are.

use p2b_core::{AgentPool, AgentPoolConfig, P2bConfig, P2bSystem};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

const DIMENSION: usize = 4;
const NUM_CODES: usize = 4;
const NUM_ACTIONS: usize = 3;
const KEY_SPACE: u64 = 6;

/// One fitted encoder shared by every proptest case.
fn encoder() -> Arc<dyn Encoder> {
    static ENCODER: OnceLock<Arc<KMeansEncoder>> = OnceLock::new();
    Arc::clone(ENCODER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(42);
        let corpus: Vec<Vector> = (0..80)
            .map(|i| {
                let mut raw = vec![0.1; DIMENSION];
                raw[i % DIMENSION] = 1.0;
                Vector::from(raw).normalized_l1().expect("non-empty")
            })
            .collect();
        Arc::new(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(NUM_CODES), &mut rng)
                .expect("corpus is larger than k"),
        )
    })) as Arc<dyn Encoder>
}

fn system() -> P2bSystem {
    let config = P2bConfig::new(DIMENSION, NUM_ACTIONS)
        .with_local_interactions(1)
        .with_shuffler_threshold(1);
    P2bSystem::new(config, encoder()).expect("static configuration is valid")
}

fn context(cluster: usize) -> Vector {
    let mut raw = vec![0.05; DIMENSION];
    raw[cluster % DIMENSION] = 1.0;
    Vector::from(raw).normalized_l1().expect("non-empty")
}

/// One pool operation: touch `key` with a context from `cluster`, selecting
/// an action and (when `update`) folding a reward locally.
#[derive(Debug, Clone, Copy)]
struct Op {
    key: u64,
    cluster: usize,
    update: bool,
    reward: f64,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    const REWARDS: [f64; 3] = [0.0, 0.5, 1.0];
    prop::collection::vec(
        (0..KEY_SPACE, 0..DIMENSION, any::<bool>(), 0..REWARDS.len()).prop_map(
            |(key, cluster, update, reward)| Op {
                key,
                cluster,
                update,
                reward: REWARDS[reward],
            },
        ),
        1..60,
    )
}

/// Runs the operation stream through a pool and digests everything
/// observable: the selected action sequence, the funneled report stream and
/// the final per-key agent state.
fn run_pool(
    pool_config: AgentPoolConfig,
    ops: &[Op],
    seed: u64,
) -> (Vec<usize>, Vec<String>, Vec<(u64, u64)>) {
    let mut system = system();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = AgentPool::new(pool_config).expect("valid pool configuration");
    let mut actions = Vec::with_capacity(ops.len());
    for op in ops {
        let action = pool
            .with_agent(&mut system, op.key, |agent| {
                let ctx = context(op.cluster);
                let action = agent.select_action(&ctx, &mut rng)?;
                if op.update {
                    agent.observe_reward(&ctx, action, op.reward, &mut rng)?;
                }
                Ok(action)
            })
            .expect("pool operations succeed");
        actions.push(action.index());
        if let Some(budget) = pool_config.max_resident_agents {
            assert!(
                pool.resident_agents() <= budget,
                "residency budget exceeded"
            );
        }
    }
    // Reports leave through the pool in checkin order; stringify them so the
    // comparison covers payload and metadata alike.
    let reports: Vec<String> = pool
        .drain_reports()
        .into_iter()
        .map(|r| format!("{r:?}"))
        .collect();
    // Probe every touched key's final agent state through the pool itself —
    // rehydrating dormant agents along the way.
    let mut keys: Vec<u64> = ops.iter().map(|o| o.key).collect();
    keys.sort_unstable();
    keys.dedup();
    let state: Vec<(u64, u64)> = keys
        .into_iter()
        .map(|key| {
            pool.with_agent(&mut system, key, |agent| {
                Ok((agent.id(), agent.interactions()))
            })
            .expect("probe succeeds")
        })
        .collect();
    (actions, reports, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bounded pools with eviction+rehydration are observationally identical
    /// to an unbounded pool, for storage shards 1, 2 and 4 and residency
    /// budgets that force heavy eviction over the 6-key space.
    #[test]
    fn bounded_pool_matches_unbounded_pool(
        ops in ops(),
        seed in any::<u64>(),
        budget in 1usize..4,
    ) {
        let unbounded = run_pool(AgentPoolConfig::unbounded(), &ops, seed);
        for shards in [1usize, 2, 4] {
            let bounded = run_pool(
                AgentPoolConfig::bounded(budget).with_shards(shards),
                &ops,
                seed,
            );
            prop_assert_eq!(
                &unbounded.0, &bounded.0,
                "action sequence drifted (budget {}, {} shards)", budget, shards
            );
            prop_assert_eq!(
                &unbounded.1, &bounded.1,
                "report stream drifted (budget {}, {} shards)", budget, shards
            );
            prop_assert_eq!(
                &unbounded.2, &bounded.2,
                "final agent state drifted (budget {}, {} shards)", budget, shards
            );
        }
    }

    /// The shard count alone never changes pool behavior, bounded or not.
    #[test]
    fn shard_count_is_behavior_invariant(
        ops in ops(),
        seed in any::<u64>(),
    ) {
        let one = run_pool(AgentPoolConfig::unbounded(), &ops, seed);
        for shards in [2usize, 4] {
            let sharded = run_pool(AgentPoolConfig::unbounded().with_shards(shards), &ops, seed);
            prop_assert_eq!(&one.0, &sharded.0, "{} shards", shards);
            prop_assert_eq!(&one.1, &sharded.1, "{} shards", shards);
        }
    }
}
