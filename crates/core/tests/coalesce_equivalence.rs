//! Property suite for the coalesced-ingestion equivalence claim: grouping a
//! shuffled batch by `(code, action)` and folding it as weighted sufficient
//! statistics must accept exactly the reports the sequential per-report path
//! accepts and produce the same central model up to floating-point rounding
//! (1e-9), for any report ordering and any ingest-shard count.
//!
//! The argument: LinUCB's per-arm statistics `A_a = λI + Σ x xᵀ` and
//! `b_a = Σ r·x` are sums over the batch, so grouping commutes with folding
//! in exact arithmetic; the tolerance absorbs the reordering of
//! floating-point additions and the weighted (vs repeated) Sherman–Morrison
//! form.

use p2b_bandit::{Action, ContextualPolicy};
use p2b_core::{CentralServer, P2bConfig};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_shuffler::{EncodedReport, RawReport, ShuffledBatch, Shuffler, ShufflerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

const DIMENSION: usize = 4;
const NUM_CODES: usize = 4;
const NUM_ACTIONS: usize = 3;

/// One fitted encoder shared by every proptest case (fitting k-means per
/// case would dominate the suite's runtime without adding coverage).
fn encoder() -> Arc<dyn Encoder> {
    static ENCODER: OnceLock<Arc<KMeansEncoder>> = OnceLock::new();
    Arc::clone(ENCODER.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(42);
        let corpus: Vec<Vector> = (0..80)
            .map(|i| {
                let mut raw = vec![0.1; DIMENSION];
                raw[i % DIMENSION] = 1.0;
                Vector::from(raw).normalized_l1().expect("non-empty")
            })
            .collect();
        Arc::new(
            KMeansEncoder::fit(&corpus, KMeansConfig::new(NUM_CODES), &mut rng)
                .expect("corpus is larger than k"),
        )
    })) as Arc<dyn Encoder>
}

/// Builds a shuffled batch from raw tuples; the seed picks the ordering.
fn shuffled(reports: &[(usize, usize, f64)], order_seed: u64) -> ShuffledBatch {
    let shuffler = Shuffler::new(ShufflerConfig::new(1)).expect("threshold 1 is valid");
    let mut rng = StdRng::seed_from_u64(order_seed);
    let raw: Vec<RawReport> = reports
        .iter()
        .enumerate()
        .map(|(i, &(code, action, reward))| {
            RawReport::new(
                format!("agent-{i}"),
                EncodedReport::new(code, action, reward).expect("rewards are valid"),
            )
        })
        .collect();
    shuffler.process(raw, &mut rng)
}

/// Strategy: report tuples over a slightly larger space than the encoder
/// accepts, so some reports are rejected on both paths.
fn reports() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    const REWARDS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];
    prop::collection::vec(
        (0..NUM_CODES + 2, 0..NUM_ACTIONS + 1, 0..REWARDS.len())
            .prop_map(|(code, action, reward)| (code, action, REWARDS[reward])),
        1..80,
    )
}

fn assert_models_close(
    sequential: &mut CentralServer,
    coalesced: &mut CentralServer,
    tolerance: f64,
    label: &str,
) {
    let ms = sequential.model().expect("assembly succeeds").clone();
    let mc = coalesced.model().expect("assembly succeeds").clone();
    assert_eq!(
        ms.observations(),
        mc.observations(),
        "{label}: observations"
    );
    for action in 0..NUM_ACTIONS {
        let action = Action::new(action);
        assert_eq!(
            ms.pulls(action).unwrap(),
            mc.pulls(action).unwrap(),
            "{label}: pulls({action:?})"
        );
        let design_diff = ms
            .design(action)
            .unwrap()
            .max_abs_diff(mc.design(action).unwrap())
            .unwrap();
        assert!(
            design_diff < tolerance,
            "{label}: design({action:?}) differs by {design_diff}"
        );
        let bs = ms.reward_vector(action).unwrap();
        let bc = mc.reward_vector(action).unwrap();
        for i in 0..bs.len() {
            assert!(
                (bs[i] - bc[i]).abs() < tolerance,
                "{label}: reward_vector({action:?})[{i}]"
            );
        }
        let ts = ms.theta(action).unwrap();
        let tc = mc.theta(action).unwrap();
        for i in 0..ts.len() {
            assert!(
                (ts[i] - tc[i]).abs() < tolerance,
                "{label}: theta({action:?})[{i}] {} vs {}",
                ts[i],
                tc[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coalesced ingestion matches sequential ingestion — same accepted
    /// count, model parameters within 1e-9 — across batch orderings and
    /// ingest-shard counts 1, 2 and 4.
    #[test]
    fn coalesced_matches_sequential_across_orderings_and_shards(
        reports in reports(),
        order_seed in any::<u64>(),
    ) {
        let batch = shuffled(&reports, order_seed);
        let config = P2bConfig::new(DIMENSION, NUM_ACTIONS);
        let mut sequential = CentralServer::new(&config, encoder()).unwrap();
        let accepted_sequential = sequential.ingest_batch(&batch).unwrap();

        for shards in [1usize, 2, 4] {
            let shard_config = config.clone().with_ingest_shards(shards);
            let mut coalesced = CentralServer::new(&shard_config, encoder()).unwrap();
            let accepted_coalesced = coalesced.ingest_batch_coalesced(&batch).unwrap();
            prop_assert_eq!(
                accepted_sequential, accepted_coalesced,
                "acceptance must not depend on the ingestion path ({} shards)", shards
            );
            assert_models_close(
                &mut sequential,
                &mut coalesced,
                1e-9,
                &format!("{shards} shards"),
            );
        }
    }

    /// A batch ordering is irrelevant to the coalesced fold: two different
    /// shuffles of the same multiset produce the same grouped updates, so
    /// the models agree to the much tighter reproducibility tolerance.
    #[test]
    fn coalesced_ingestion_is_ordering_invariant(
        reports in reports(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let config = P2bConfig::new(DIMENSION, NUM_ACTIONS).with_ingest_shards(2);
        let mut a = CentralServer::new(&config, encoder()).unwrap();
        let mut b = CentralServer::new(&config, encoder()).unwrap();
        let accepted_a = a.ingest_batch_coalesced(&shuffled(&reports, seed_a)).unwrap();
        let accepted_b = b.ingest_batch_coalesced(&shuffled(&reports, seed_b)).unwrap();
        prop_assert_eq!(accepted_a, accepted_b);
        // Only the within-group reward-sum accumulation order differs.
        assert_models_close(&mut a, &mut b, 1e-12, "orderings");
    }
}
