//! The local P2B agent: LinUCB + encoder + randomized reporter.

use crate::{CodeRepresentation, CoreError, P2bConfig, RandomizedReporter};
use p2b_bandit::{Action, ContextualPolicy, LinUcb};
use p2b_encoding::Encoder;
use p2b_linalg::Vector;
use p2b_privacy::{amplified_epsilon, PrivacyAccountant, PrivacyGuarantee};
use p2b_shuffler::{EncodedReport, RawReport};
use rand::Rng;
use std::sync::Arc;

/// A local agent running on a (simulated) user device.
///
/// The agent observes raw contexts, encodes them, feeds the encoded
/// representation to its LinUCB policy, and — after every `T` interactions,
/// with probability `p` — queues the most recent interaction tuple `(y, a, r)`
/// for transmission to the shuffler. It also keeps a [`PrivacyAccountant`]
/// recording the (ε, δ) cost of its reporting opportunities.
///
/// Agents are created through [`crate::P2bSystem::make_agent`] (warm start:
/// the central model is merged into the fresh policy) or
/// [`crate::P2bSystem::make_cold_agent`] (no warm start, used by the
/// cold-start baseline).
#[derive(Debug, Clone)]
pub struct LocalAgent {
    id: u64,
    policy: LinUcb,
    encoder: Arc<dyn Encoder>,
    representation: CodeRepresentation,
    reporter: RandomizedReporter,
    accountant: PrivacyAccountant,
    per_report_guarantee: PrivacyGuarantee,
    pending: Vec<RawReport>,
    interactions: u64,
}

impl LocalAgent {
    /// Creates an agent. Prefer the factory methods on [`crate::P2bSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`]/[`CoreError::Bandit`] for invalid
    /// configurations and [`CoreError::EncoderMismatch`] if the encoder does
    /// not handle contexts of the configured dimension.
    pub fn new(
        id: u64,
        config: &P2bConfig,
        encoder: Arc<dyn Encoder>,
        warm_start: Option<&LinUcb>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if encoder.context_dimension() != config.context_dimension {
            return Err(CoreError::EncoderMismatch {
                expected: config.context_dimension,
                found: encoder.context_dimension(),
            });
        }
        let mut policy = LinUcb::new(config.central_linucb(encoder.as_ref()))?;
        if let Some(central) = warm_start {
            policy.merge(central)?;
        }
        let participation = config.participation()?;
        let epsilon = amplified_epsilon(participation, 0.0)?;
        let per_report_guarantee = PrivacyGuarantee::pure(epsilon)?;
        Ok(Self {
            id,
            policy,
            encoder,
            representation: config.code_representation,
            reporter: RandomizedReporter::new(participation, config.local_interactions),
            accountant: PrivacyAccountant::new(),
            per_report_guarantee,
            pending: Vec::new(),
            interactions: 0,
        })
    }

    /// The agent's identifier (used only as shuffler-stripped metadata).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of interactions the agent has observed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Borrows the agent's policy (e.g. to inspect per-arm statistics).
    #[must_use]
    pub fn policy(&self) -> &LinUcb {
        &self.policy
    }

    /// Borrows the agent's reporter statistics.
    #[must_use]
    pub fn reporter(&self) -> &RandomizedReporter {
        &self.reporter
    }

    /// Total privacy spent by this agent so far (sequential composition over
    /// its reporting opportunities).
    #[must_use]
    pub fn privacy_spent(&self) -> PrivacyGuarantee {
        self.accountant.total()
    }

    /// Maps a raw observed context to the model context the policy consumes.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for mis-sized contexts.
    pub fn model_context(&self, raw_context: &Vector) -> Result<Vector, CoreError> {
        let code = self.encoder.encode(raw_context)?;
        self.representation.vector(self.encoder.as_ref(), code)
    }

    /// Proposes an action for the observed raw context.
    ///
    /// # Errors
    ///
    /// Propagates encoder and policy errors (mis-sized contexts).
    pub fn select_action<R: Rng>(
        &mut self,
        raw_context: &Vector,
        rng: &mut R,
    ) -> Result<Action, CoreError> {
        let model_context = self.model_context(raw_context)?;
        Ok(self.policy.select_action(&model_context, rng)?)
    }

    /// Feeds back the observed reward, updates the local policy, and lets the
    /// randomized reporter decide whether to queue the interaction for
    /// sharing.
    ///
    /// # Errors
    ///
    /// Propagates encoder/policy errors; rewards must lie in `[0, 1]`.
    pub fn observe_reward<R: Rng>(
        &mut self,
        raw_context: &Vector,
        action: Action,
        reward: f64,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        let code = self.encoder.encode(raw_context)?;
        let model_context = self.representation.vector(self.encoder.as_ref(), code)?;
        self.policy.update(&model_context, action, reward)?;
        self.interactions += 1;

        let opportunities_before = self.reporter.opportunities();
        if let Some(pending) = self.reporter.observe(code, action, reward, rng) {
            let payload = EncodedReport::new(pending.code, pending.action, pending.reward)?;
            self.pending.push(RawReport::with_timestamp(
                format!("agent-{}", self.id),
                self.interactions,
                payload,
            ));
        }
        // Every reporting *opportunity* consumes privacy budget, whether or
        // not the coin flip elected to share: the sampling itself is part of
        // the differentially private mechanism.
        if self.reporter.opportunities() > opportunities_before {
            self.accountant
                .spend(self.per_report_guarantee, "reporting opportunity")?;
        }
        Ok(())
    }

    /// Drains the reports queued since the last call.
    #[must_use]
    pub fn take_reports(&mut self) -> Vec<RawReport> {
        std::mem::take(&mut self.pending)
    }

    /// Merges a newer central model into the local policy (a model refresh).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`] if the model shapes are incompatible.
    pub fn refresh_from(&mut self, central: &LinUcb) -> Result<(), CoreError> {
        self.policy.merge(central)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(seed: u64) -> Arc<dyn Encoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..60)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap())
    }

    fn config() -> P2bConfig {
        P2bConfig::new(4, 3).with_local_interactions(2)
    }

    #[test]
    fn rejects_mismatched_encoder() {
        let cfg = P2bConfig::new(7, 3);
        let err = LocalAgent::new(0, &cfg, encoder(0), None);
        assert!(matches!(err, Err(CoreError::EncoderMismatch { .. })));
    }

    #[test]
    fn interactions_update_the_policy_and_queue_reports() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = LocalAgent::new(1, &config(), encoder(1), None).unwrap();
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        for _ in 0..20 {
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            agent.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        }
        assert_eq!(agent.interactions(), 20);
        assert_eq!(agent.policy().observations(), 20);
        // With T = 2 there were 10 opportunities; at p = 0.5 some reports are
        // queued with overwhelming probability under this seed.
        let reports = agent.take_reports();
        assert!(!reports.is_empty());
        assert!(
            agent.take_reports().is_empty(),
            "drain must clear the queue"
        );
        assert_eq!(agent.reporter().opportunities(), 10);
    }

    #[test]
    fn privacy_accounting_tracks_opportunities() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = LocalAgent::new(2, &config(), encoder(2), None).unwrap();
        let ctx = Vector::filled(4, 0.25);
        for _ in 0..10 {
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            agent.observe_reward(&ctx, action, 0.5, &mut rng).unwrap();
        }
        // T = 2 → 5 opportunities → ε = 5 · ln 2.
        let spent = agent.privacy_spent();
        assert!((spent.epsilon() - 5.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn warm_start_transfers_central_knowledge() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = encoder(3);
        let cfg = config();

        // Train a central model that prefers action 2 for the centroid of
        // whatever code the test context falls into.
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        let code = enc.encode(&ctx).unwrap();
        let model_ctx = CodeRepresentation::Centroid
            .vector(enc.as_ref(), code)
            .unwrap();
        let mut central = LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap();
        for _ in 0..200 {
            central.update(&model_ctx, Action::new(2), 1.0).unwrap();
            central.update(&model_ctx, Action::new(0), 0.0).unwrap();
            central.update(&model_ctx, Action::new(1), 0.0).unwrap();
        }

        let mut warm = LocalAgent::new(4, &cfg, Arc::clone(&enc), Some(&central)).unwrap();
        // A warm agent should immediately prefer action 2.
        let mut votes = [0usize; 3];
        for _ in 0..20 {
            votes[warm.select_action(&ctx, &mut rng).unwrap().index()] += 1;
        }
        assert!(votes[2] >= 15, "warm agent votes: {votes:?}");
    }

    #[test]
    fn refresh_from_merges_later_central_updates() {
        let enc = encoder(4);
        let cfg = config();
        let mut agent = LocalAgent::new(5, &cfg, Arc::clone(&enc), None).unwrap();
        let central = LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap();
        let before = agent.policy().observations();
        agent.refresh_from(&central).unwrap();
        assert_eq!(agent.policy().observations(), before);
    }

    #[test]
    fn rejects_out_of_range_rewards() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = LocalAgent::new(6, &config(), encoder(5), None).unwrap();
        let ctx = Vector::filled(4, 0.25);
        let action = agent.select_action(&ctx, &mut rng).unwrap();
        assert!(agent.observe_reward(&ctx, action, 1.5, &mut rng).is_err());
    }
}
