//! The local P2B agent: LinUCB + encoder + randomized reporter.

use crate::{CodeRepresentation, CoreError, ModelSnapshot, P2bConfig, RandomizedReporter};
use p2b_bandit::{Action, ContextualPolicy, LinUcb, LinUcbConfig, SelectScratch};
use p2b_encoding::Encoder;
use p2b_linalg::Vector;
use p2b_privacy::{amplified_epsilon, PrivacyAccountant, PrivacyGuarantee};
use p2b_shuffler::{EncodedReport, RawReport};
use rand::Rng;
use std::sync::Arc;

/// The agent's policy state: either a pointer into the shared central
/// snapshot (no per-agent model memory at all) or an owned policy.
///
/// A warm agent starts in [`AgentPolicy::Shared`] and is promoted to
/// [`AgentPolicy::Owned`] copy-on-write, the first time it needs to fold a
/// local observation. Selection-only agents — the overwhelming majority in a
/// serving deployment — therefore never copy the central model; cold agents
/// start owned (their model is empty, there is nothing to share).
#[derive(Debug, Clone)]
enum AgentPolicy {
    /// Reads go straight through the epoch's shared [`ModelSnapshot`].
    Shared(Arc<ModelSnapshot>),
    /// The agent has local observations of its own.
    Owned(LinUcb),
}

/// Rejects a central snapshot whose model shape does not match the shape
/// the agent's configuration implies — the same incompatibilities the
/// merge-based warm start used to reject at construction time.
fn check_snapshot_shape(
    expected: &LinUcbConfig,
    snapshot: &ModelSnapshot,
) -> Result<(), CoreError> {
    let found = snapshot.model().config();
    if found.context_dimension != expected.context_dimension
        || found.num_actions != expected.num_actions
    {
        return Err(CoreError::InvalidConfig {
            parameter: "warm_start",
            message: format!(
                "snapshot model shape ({}, {}) does not match the configured ({}, {})",
                found.context_dimension,
                found.num_actions,
                expected.context_dimension,
                expected.num_actions
            ),
        });
    }
    Ok(())
}

/// The policy portion of a dormant (evicted) agent.
///
/// A still-shared agent persists **nothing** — its policy was a pointer into
/// the epoch's shared snapshot, so rehydration just points it at the current
/// snapshot (the same refresh it would have received on its next checkout).
/// An owned agent persists its full local policy; in a production deployment
/// this is the state written back to device/disk storage, here it lives in
/// the pool's dormant tier.
#[derive(Debug, Clone)]
enum DormantPolicy {
    /// The agent never folded a local observation; no model bytes persist.
    Shared,
    /// The agent's private policy, local observations included.
    Owned(LinUcb),
}

/// The compact persisted form of an evicted [`LocalAgent`]: everything a
/// bit-identical rehydration needs (reporter phase, privacy ledger, owned
/// policy if any) and nothing it does not (shared snapshots are re-acquired
/// from the current epoch).
///
/// Produced by [`LocalAgent::dehydrate`], consumed by
/// [`LocalAgent::rehydrate`]; the [`crate::AgentPool`] moves agents through
/// this form on eviction.
#[derive(Debug, Clone)]
pub struct DormantAgent {
    id: u64,
    interactions: u64,
    reporter: RandomizedReporter,
    accountant: PrivacyAccountant,
    per_report_guarantee: PrivacyGuarantee,
    representation: CodeRepresentation,
    /// Action count of the policy the agent was serving — checked against
    /// the snapshot on shared rehydration, exactly like a fresh warm start.
    num_actions: usize,
    policy: DormantPolicy,
}

impl DormantAgent {
    /// The dehydrated agent's identifier.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the dormant agent carries an owned policy (local
    /// observations) rather than rehydrating from the shared snapshot.
    #[must_use]
    pub fn has_local_state(&self) -> bool {
        matches!(self.policy, DormantPolicy::Owned(_))
    }

    /// Approximate heap bytes of the persisted policy state: zero for a
    /// still-shared agent, the LinUCB sufficient statistics otherwise.
    #[must_use]
    pub fn approx_model_bytes(&self) -> usize {
        match &self.policy {
            DormantPolicy::Shared => 0,
            DormantPolicy::Owned(policy) => approx_linucb_bytes(policy),
        }
    }
}

/// Approximate heap footprint of a LinUCB policy: per action one `d × d`
/// design matrix, its inverse, the flat score-arena mirror of that inverse,
/// and three `d`-vectors of `f64`s (reward vector, cached θ lane, update
/// scratch).
fn approx_linucb_bytes(policy: &LinUcb) -> usize {
    let d = policy.config().context_dimension;
    let actions = policy.config().num_actions;
    actions * (3 * d * d + 3 * d) * std::mem::size_of::<f64>()
}

/// A local agent running on a (simulated) user device.
///
/// The agent observes raw contexts, encodes them, feeds the encoded
/// representation to its LinUCB policy, and — after every `T` interactions,
/// with probability `p` — queues the most recent interaction tuple `(y, a, r)`
/// for transmission to the shuffler. It also keeps a [`PrivacyAccountant`]
/// recording the (ε, δ) cost of its reporting opportunities.
///
/// Agents are created through [`crate::P2bSystem::make_agent`] (warm start:
/// the agent selects against the epoch's shared central snapshot and clones
/// it copy-on-write at its first local update) or
/// [`crate::P2bSystem::make_cold_agent`] (no warm start, used by the
/// cold-start baseline).
#[derive(Debug, Clone)]
pub struct LocalAgent {
    id: u64,
    policy: AgentPolicy,
    encoder: Arc<dyn Encoder>,
    representation: CodeRepresentation,
    reporter: RandomizedReporter,
    accountant: PrivacyAccountant,
    per_report_guarantee: PrivacyGuarantee,
    pending: Vec<RawReport>,
    interactions: u64,
    /// Reused buffers for allocation-free selection. Pure scratch: carries no
    /// behavioral state, is not persisted by [`LocalAgent::dehydrate`], and a
    /// rehydrated agent simply starts with cold buffers.
    scratch: SelectScratch,
}

impl LocalAgent {
    /// Creates an agent. Prefer the factory methods on [`crate::P2bSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`]/[`CoreError::Bandit`] for invalid
    /// configurations and [`CoreError::EncoderMismatch`] if the encoder does
    /// not handle contexts of the configured dimension.
    pub fn new(
        id: u64,
        config: &P2bConfig,
        encoder: Arc<dyn Encoder>,
        warm_start: Option<Arc<ModelSnapshot>>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if encoder.context_dimension() != config.context_dimension {
            return Err(CoreError::EncoderMismatch {
                expected: config.context_dimension,
                found: encoder.context_dimension(),
            });
        }
        let central_config = config.central_linucb(encoder.as_ref());
        let policy = match warm_start {
            // The warm start is a *pointer* to the epoch's shared snapshot —
            // no model bytes are copied until the agent first updates.
            Some(snapshot) => {
                check_snapshot_shape(&central_config, &snapshot)?;
                AgentPolicy::Shared(snapshot)
            }
            None => AgentPolicy::Owned(LinUcb::new(central_config)?),
        };
        let participation = config.participation()?;
        let epsilon = amplified_epsilon(participation, 0.0)?;
        let per_report_guarantee = PrivacyGuarantee::pure(epsilon)?;
        Ok(Self {
            id,
            policy,
            encoder,
            representation: config.code_representation,
            reporter: RandomizedReporter::new(participation, config.local_interactions),
            accountant: PrivacyAccountant::new(),
            per_report_guarantee,
            pending: Vec::new(),
            interactions: 0,
            scratch: SelectScratch::new(),
        })
    }

    /// The agent's identifier (used only as shuffler-stripped metadata).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of interactions the agent has observed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Borrows the agent's policy (e.g. to inspect per-arm statistics).
    ///
    /// While the agent has no local observations of its own this is the
    /// shared central snapshot; afterwards it is the agent's private copy.
    #[must_use]
    pub fn policy(&self) -> &LinUcb {
        match &self.policy {
            AgentPolicy::Shared(snapshot) => snapshot.model(),
            AgentPolicy::Owned(policy) => policy,
        }
    }

    /// The shared central snapshot this agent still reads through, if it has
    /// not yet been promoted to an owned policy by a local update.
    ///
    /// Two agents warm-started within the same epoch return pointers to the
    /// *same* allocation — the property that replaced the per-agent model
    /// clone/merge of the pre-service design.
    #[must_use]
    pub fn warm_snapshot(&self) -> Option<&Arc<ModelSnapshot>> {
        match &self.policy {
            AgentPolicy::Shared(snapshot) => Some(snapshot),
            AgentPolicy::Owned(_) => None,
        }
    }

    /// The agent's policy for writing: promotes a shared snapshot to an
    /// owned copy (copy-on-write) on first use.
    fn policy_mut(&mut self) -> &mut LinUcb {
        if let AgentPolicy::Shared(snapshot) = &self.policy {
            self.policy = AgentPolicy::Owned(snapshot.model().clone());
        }
        match &mut self.policy {
            AgentPolicy::Owned(policy) => policy,
            AgentPolicy::Shared(_) => unreachable!("promoted to Owned above"),
        }
    }

    /// Borrows the agent's reporter statistics.
    #[must_use]
    pub fn reporter(&self) -> &RandomizedReporter {
        &self.reporter
    }

    /// Total privacy spent by this agent so far (sequential composition over
    /// its reporting opportunities).
    #[must_use]
    pub fn privacy_spent(&self) -> PrivacyGuarantee {
        self.accountant.total()
    }

    /// Maps a raw observed context to the model context the policy consumes.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for mis-sized contexts.
    pub fn model_context(&self, raw_context: &Vector) -> Result<Vector, CoreError> {
        let code = self.encoder.encode(raw_context)?;
        self.representation.vector(self.encoder.as_ref(), code)
    }

    /// Proposes an action for the observed raw context.
    ///
    /// # Errors
    ///
    /// Propagates encoder and policy errors (mis-sized contexts).
    pub fn select_action<R: Rng>(
        &mut self,
        raw_context: &Vector,
        rng: &mut R,
    ) -> Result<Action, CoreError> {
        let model_context = self.model_context(raw_context)?;
        // Selection never mutates the statistics, so it reads through the
        // shared snapshot for as long as the agent has one. The agent-owned
        // scratch buffers make the per-decision path allocation-free.
        let policy = match &self.policy {
            AgentPolicy::Shared(snapshot) => snapshot.model(),
            AgentPolicy::Owned(policy) => policy,
        };
        Ok(policy.select_action_with(&model_context, rng, &mut self.scratch)?)
    }

    /// Feeds back the observed reward, updates the local policy, and lets the
    /// randomized reporter decide whether to queue the interaction for
    /// sharing.
    ///
    /// # Errors
    ///
    /// Propagates encoder/policy errors; rewards must lie in `[0, 1]`.
    pub fn observe_reward<R: Rng>(
        &mut self,
        raw_context: &Vector,
        action: Action,
        reward: f64,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        let code = self.encoder.encode(raw_context)?;
        let model_context = self.representation.vector(self.encoder.as_ref(), code)?;
        self.policy_mut().update(&model_context, action, reward)?;
        self.interactions += 1;

        let opportunities_before = self.reporter.opportunities();
        if let Some(pending) = self.reporter.observe(code, action, reward, rng) {
            let payload = EncodedReport::new(pending.code, pending.action, pending.reward)?;
            self.pending.push(RawReport::with_timestamp(
                format!("agent-{}", self.id),
                self.interactions,
                payload,
            ));
        }
        // Every reporting *opportunity* consumes privacy budget, whether or
        // not the coin flip elected to share: the sampling itself is part of
        // the differentially private mechanism.
        if self.reporter.opportunities() > opportunities_before {
            self.accountant
                .spend(self.per_report_guarantee, "reporting opportunity")?;
        }
        Ok(())
    }

    /// Drains the reports queued since the last call.
    #[must_use]
    pub fn take_reports(&mut self) -> Vec<RawReport> {
        std::mem::take(&mut self.pending)
    }

    /// Merges a newer central model into the local policy (a model refresh).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`] if the model shapes are incompatible.
    pub fn refresh_from(&mut self, central: &LinUcb) -> Result<(), CoreError> {
        self.policy_mut().merge(central)?;
        Ok(())
    }

    /// Approximate heap bytes of model state this agent *owns*: zero while
    /// it still reads through the shared snapshot, its private LinUCB
    /// statistics once promoted. The pool's memory accounting sums this.
    #[must_use]
    pub fn approx_owned_model_bytes(&self) -> usize {
        match &self.policy {
            AgentPolicy::Shared(_) => 0,
            AgentPolicy::Owned(policy) => approx_linucb_bytes(policy),
        }
    }

    /// Tears the agent down into its compact persisted form, draining any
    /// queued reports so eviction never strands them on the way to the
    /// shuffler.
    ///
    /// The round trip `rehydrate(dehydrate(agent))` is *lossless for
    /// behavior*: the rehydrated agent selects the same actions and flips
    /// the same reporter coins as the original would have, which is what
    /// makes a bounded [`crate::AgentPool`] equivalent to an unbounded one
    /// (pinned by the `pool_equivalence` property suite).
    #[must_use]
    pub fn dehydrate(mut self) -> (Vec<RawReport>, DormantAgent) {
        let reports = std::mem::take(&mut self.pending);
        let num_actions = self.policy().config().num_actions;
        let policy = match self.policy {
            AgentPolicy::Shared(_) => DormantPolicy::Shared,
            AgentPolicy::Owned(policy) => DormantPolicy::Owned(policy),
        };
        (
            reports,
            DormantAgent {
                id: self.id,
                interactions: self.interactions,
                reporter: self.reporter,
                accountant: self.accountant,
                per_report_guarantee: self.per_report_guarantee,
                representation: self.representation,
                num_actions,
                policy,
            },
        )
    }

    /// Rebuilds an agent from its dormant form. A still-shared agent is
    /// pointed at `snapshot` (the current epoch); an agent with local state
    /// gets its own policy back untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when a shared rehydration is
    /// handed a snapshot whose model shape does not match the dormant
    /// agent's representation under `encoder`.
    pub fn rehydrate(
        dormant: DormantAgent,
        encoder: Arc<dyn Encoder>,
        snapshot: &Arc<ModelSnapshot>,
    ) -> Result<Self, CoreError> {
        let policy = match dormant.policy {
            DormantPolicy::Shared => {
                let expected_dimension = dormant.representation.dimension(encoder.as_ref());
                let found = snapshot.model().config();
                if found.context_dimension != expected_dimension
                    || found.num_actions != dormant.num_actions
                {
                    return Err(CoreError::InvalidConfig {
                        parameter: "rehydrate",
                        message: format!(
                            "snapshot model shape ({}, {}) does not match the dormant agent's \
                             ({expected_dimension}, {})",
                            found.context_dimension, found.num_actions, dormant.num_actions
                        ),
                    });
                }
                AgentPolicy::Shared(Arc::clone(snapshot))
            }
            DormantPolicy::Owned(policy) => AgentPolicy::Owned(policy),
        };
        Ok(Self {
            id: dormant.id,
            policy,
            encoder,
            representation: dormant.representation,
            reporter: dormant.reporter,
            accountant: dormant.accountant,
            per_report_guarantee: dormant.per_report_guarantee,
            pending: Vec::new(),
            interactions: dormant.interactions,
            scratch: SelectScratch::new(),
        })
    }

    /// Replaces a shared warm start with a newer central snapshot without
    /// copying: if the agent has no local observations yet, it simply points
    /// at the new epoch's snapshot.
    ///
    /// Agents that already own local state fall back to
    /// [`LocalAgent::refresh_from`] semantics, merging the snapshot's model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`] if the model shapes are incompatible.
    pub fn refresh_from_snapshot(&mut self, snapshot: Arc<ModelSnapshot>) -> Result<(), CoreError> {
        match &self.policy {
            AgentPolicy::Shared(_) => {
                check_snapshot_shape(self.policy().config(), &snapshot)?;
                self.policy = AgentPolicy::Shared(snapshot);
                Ok(())
            }
            AgentPolicy::Owned(_) => self.refresh_from(snapshot.model()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(seed: u64) -> Arc<dyn Encoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..60)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap())
    }

    fn config() -> P2bConfig {
        P2bConfig::new(4, 3).with_local_interactions(2)
    }

    #[test]
    fn rejects_mismatched_encoder() {
        let cfg = P2bConfig::new(7, 3);
        let err = LocalAgent::new(0, &cfg, encoder(0), None);
        assert!(matches!(err, Err(CoreError::EncoderMismatch { .. })));
    }

    #[test]
    fn rejects_mis_shaped_warm_start_snapshots() {
        let cfg = config(); // 4-dimensional contexts, 3 actions
        let enc = encoder(9);
        // Wrong action count and wrong context dimension must both be
        // rejected at construction, exactly like the old merge-based path.
        for bad_model in [
            LinUcb::new(p2b_bandit::LinUcbConfig::new(4, 5)).unwrap(),
            LinUcb::new(p2b_bandit::LinUcbConfig::new(6, 3)).unwrap(),
        ] {
            let snapshot = Arc::new(crate::ModelSnapshot::new(0, bad_model));
            let err = LocalAgent::new(7, &cfg, Arc::clone(&enc), Some(snapshot));
            assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
        }

        // And a still-shared agent refuses to hop onto a mis-shaped snapshot.
        let good = Arc::new(crate::ModelSnapshot::new(
            0,
            LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap(),
        ));
        let mut agent = LocalAgent::new(8, &cfg, Arc::clone(&enc), Some(good)).unwrap();
        let bad = Arc::new(crate::ModelSnapshot::new(
            1,
            LinUcb::new(p2b_bandit::LinUcbConfig::new(4, 5)).unwrap(),
        ));
        assert!(agent.refresh_from_snapshot(bad).is_err());
        assert!(
            agent.warm_snapshot().is_some(),
            "failed refresh must not detach"
        );
    }

    #[test]
    fn rehydration_rejects_mis_shaped_snapshots() {
        let cfg = config(); // 4-dimensional contexts, 3 actions
        let enc = encoder(11);
        let good = Arc::new(crate::ModelSnapshot::new(
            0,
            LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap(),
        ));
        let agent = LocalAgent::new(9, &cfg, Arc::clone(&enc), Some(good)).unwrap();
        let (_, dormant) = agent.dehydrate();
        assert!(!dormant.has_local_state());
        // Wrong action count and wrong dimension are both rejected, exactly
        // like a fresh warm start would reject them.
        for bad_model in [
            LinUcb::new(p2b_bandit::LinUcbConfig::new(4, 5)).unwrap(),
            LinUcb::new(p2b_bandit::LinUcbConfig::new(6, 3)).unwrap(),
        ] {
            let bad = Arc::new(crate::ModelSnapshot::new(1, bad_model));
            assert!(matches!(
                LocalAgent::rehydrate(dormant.clone(), Arc::clone(&enc), &bad),
                Err(CoreError::InvalidConfig { .. })
            ));
        }
        // A well-shaped snapshot rehydrates fine.
        let fresh = Arc::new(crate::ModelSnapshot::new(
            2,
            LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap(),
        ));
        let revived = LocalAgent::rehydrate(dormant, Arc::clone(&enc), &fresh).unwrap();
        assert!(revived
            .warm_snapshot()
            .is_some_and(|s| Arc::ptr_eq(s, &fresh)));
        assert_eq!(revived.id(), 9);
    }

    #[test]
    fn interactions_update_the_policy_and_queue_reports() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = LocalAgent::new(1, &config(), encoder(1), None).unwrap();
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        for _ in 0..20 {
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            agent.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        }
        assert_eq!(agent.interactions(), 20);
        assert_eq!(agent.policy().observations(), 20);
        // With T = 2 there were 10 opportunities; at p = 0.5 some reports are
        // queued with overwhelming probability under this seed.
        let reports = agent.take_reports();
        assert!(!reports.is_empty());
        assert!(
            agent.take_reports().is_empty(),
            "drain must clear the queue"
        );
        assert_eq!(agent.reporter().opportunities(), 10);
    }

    #[test]
    fn privacy_accounting_tracks_opportunities() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = LocalAgent::new(2, &config(), encoder(2), None).unwrap();
        let ctx = Vector::filled(4, 0.25);
        for _ in 0..10 {
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            agent.observe_reward(&ctx, action, 0.5, &mut rng).unwrap();
        }
        // T = 2 → 5 opportunities → ε = 5 · ln 2.
        let spent = agent.privacy_spent();
        assert!((spent.epsilon() - 5.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn warm_start_transfers_central_knowledge() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = encoder(3);
        let cfg = config();

        // Train a central model that prefers action 2 for the centroid of
        // whatever code the test context falls into.
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        let code = enc.encode(&ctx).unwrap();
        let model_ctx = CodeRepresentation::Centroid
            .vector(enc.as_ref(), code)
            .unwrap();
        let mut central = LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap();
        for _ in 0..200 {
            central.update(&model_ctx, Action::new(2), 1.0).unwrap();
            central.update(&model_ctx, Action::new(0), 0.0).unwrap();
            central.update(&model_ctx, Action::new(1), 0.0).unwrap();
        }
        let snapshot = Arc::new(crate::ModelSnapshot::new(1, central));

        let mut warm =
            LocalAgent::new(4, &cfg, Arc::clone(&enc), Some(Arc::clone(&snapshot))).unwrap();
        // Until its first local update, the agent reads straight through the
        // shared snapshot — no copy.
        assert!(warm
            .warm_snapshot()
            .is_some_and(|s| Arc::ptr_eq(s, &snapshot)));
        // A warm agent should immediately prefer action 2.
        let mut votes = [0usize; 3];
        for _ in 0..20 {
            votes[warm.select_action(&ctx, &mut rng).unwrap().index()] += 1;
        }
        assert!(votes[2] >= 15, "warm agent votes: {votes:?}");

        // The first local observation promotes the agent to an owned copy.
        let action = warm.select_action(&ctx, &mut rng).unwrap();
        warm.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        assert!(warm.warm_snapshot().is_none());
        assert_eq!(
            warm.policy().observations(),
            snapshot.model().observations() + 1
        );

        // A still-shared sibling can hop to a newer snapshot without copying.
        let mut sibling =
            LocalAgent::new(5, &cfg, Arc::clone(&enc), Some(Arc::clone(&snapshot))).unwrap();
        let newer = Arc::new(crate::ModelSnapshot::new(
            2,
            LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap(),
        ));
        sibling.refresh_from_snapshot(Arc::clone(&newer)).unwrap();
        assert!(sibling
            .warm_snapshot()
            .is_some_and(|s| Arc::ptr_eq(s, &newer)));
    }

    #[test]
    fn refresh_from_merges_later_central_updates() {
        let enc = encoder(4);
        let cfg = config();
        let mut agent = LocalAgent::new(5, &cfg, Arc::clone(&enc), None).unwrap();
        let central = LinUcb::new(cfg.central_linucb(enc.as_ref())).unwrap();
        let before = agent.policy().observations();
        agent.refresh_from(&central).unwrap();
        assert_eq!(agent.policy().observations(), before);
    }

    #[test]
    fn rejects_out_of_range_rewards() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = LocalAgent::new(6, &config(), encoder(5), None).unwrap();
        let ctx = Vector::filled(4, 0.25);
        let action = agent.select_action(&ctx, &mut rng).unwrap();
        assert!(agent.observe_reward(&ctx, action, 1.5, &mut rng).is_err());
    }
}
