//! Delayed-reward joining: decisions now, feedback later.
//!
//! In the paper's deployment story an agent proposes an action and the
//! reward signal (a click, a conversion) arrives seconds to days later — or
//! never. The [`RewardJoinBuffer`] is the serving-side primitive for that
//! gap: every decision is recorded with a [`DecisionTicket`], rewards are
//! joined to their ticket as they arrive, and decisions are *finalized* only
//! when their join window closes.
//!
//! # Determinism contract
//!
//! The buffer is deliberately **arrival-order invariant**: a decision made
//! at round `R` may be joined at any time while the current round is at most
//! `R + max_delay`, and finalization happens exactly when the buffer
//! advances past `R + max_delay` — always in ticket (decision) order, never
//! in arrival order. Two executions whose rewards arrive in different orders
//! (or at different rounds) within the window therefore release the *same*
//! sequence of [`JoinedDecision`]s, which is what makes downstream model
//! updates reproducible; the `join_order_invariance` property suite pins
//! this. With `max_delay = 0` every decision finalizes at the end of the
//! round it was made in — the synchronous behavior of the round-based
//! harness.

use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one recorded decision, handed back by
/// [`RewardJoinBuffer::record`] and used to join the reward later.
///
/// Tickets are issued in strictly increasing order, so ticket order is
/// decision order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DecisionTicket(u64);

impl DecisionTicket {
    /// The raw monotone ticket value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A decision whose reward arrived within the join window, released when the
/// window closed.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedDecision<P> {
    /// The ticket the decision was recorded under.
    pub ticket: DecisionTicket,
    /// The caller payload recorded with the decision (e.g. context, action).
    pub payload: P,
    /// The joined reward.
    pub reward: f64,
    /// Round the decision was made in.
    pub decided_round: u64,
    /// Round the reward arrived in.
    pub joined_round: u64,
}

/// A decision whose reward never arrived within the join window.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpiredDecision<P> {
    /// The ticket the decision was recorded under.
    pub ticket: DecisionTicket,
    /// The caller payload recorded with the decision.
    pub payload: P,
    /// Round the decision was made in.
    pub decided_round: u64,
}

/// Everything one round boundary finalized, each list in ticket order.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalizedRound<P> {
    /// Decisions that received their reward within the window.
    pub joined: Vec<JoinedDecision<P>>,
    /// Decisions whose window closed without a reward.
    pub expired: Vec<ExpiredDecision<P>>,
}

impl<P> FinalizedRound<P> {
    fn empty() -> Self {
        Self {
            joined: Vec::new(),
            expired: Vec::new(),
        }
    }
}

/// Counters describing the buffer's lifetime behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JoinStats {
    /// Decisions recorded.
    pub decisions: u64,
    /// Decisions finalized with a joined reward.
    pub joined: u64,
    /// Decisions finalized without a reward.
    pub expired: u64,
    /// Reward arrivals rejected because their ticket was already finalized
    /// (the reward came back too late) or never existed.
    pub late_rewards: u64,
}

/// One decision waiting for its reward.
#[derive(Debug, Clone)]
struct Pending<P> {
    payload: P,
    decided_round: u64,
    reward: Option<(f64, u64)>,
}

/// Buffers pending `(payload)` decisions and joins rewards arriving up to
/// `max_delay` rounds later; see the module docs for the determinism
/// contract.
///
/// # Example
///
/// ```
/// use p2b_core::RewardJoinBuffer;
///
/// let mut buffer: RewardJoinBuffer<&'static str> = RewardJoinBuffer::new(1);
/// let first = buffer.record("show-ad-3");
/// let round = buffer.advance_round(); // window still open: nothing final
/// assert!(round.joined.is_empty() && round.expired.is_empty());
/// buffer.join(first, 1.0).unwrap(); // click arrives one round late
/// let round = buffer.advance_round();
/// assert_eq!(round.joined.len(), 1);
/// assert_eq!(round.joined[0].payload, "show-ad-3");
/// ```
#[derive(Debug, Clone)]
pub struct RewardJoinBuffer<P> {
    max_delay: u64,
    round: u64,
    next_ticket: u64,
    pending: BTreeMap<u64, Pending<P>>,
    stats: JoinStats,
    /// Hard ceiling on in-flight (pending) decisions; `None` means unbounded.
    in_flight_ceiling: Option<usize>,
    /// Admission attempts rejected by the ceiling.
    shed: u64,
    /// High-water mark of [`RewardJoinBuffer::pending`].
    peak_pending: usize,
}

impl<P> RewardJoinBuffer<P> {
    /// Creates a buffer joining rewards that arrive at most `max_delay`
    /// rounds after their decision.
    #[must_use]
    pub fn new(max_delay: u64) -> Self {
        Self {
            max_delay,
            round: 0,
            next_ticket: 0,
            pending: BTreeMap::new(),
            stats: JoinStats::default(),
            in_flight_ceiling: None,
            shed: 0,
            peak_pending: 0,
        }
    }

    /// Caps the number of in-flight decisions: once `ceiling` decisions are
    /// pending, [`RewardJoinBuffer::try_record`] sheds new admissions until
    /// finalization drains the buffer. This is the serving tier's admission
    /// control — a hard bound on join-buffer memory and on the work queued
    /// behind the model service.
    #[must_use]
    pub fn with_in_flight_ceiling(mut self, ceiling: usize) -> Self {
        self.in_flight_ceiling = Some(ceiling);
        self
    }

    /// The configured in-flight ceiling, if any.
    #[must_use]
    pub fn in_flight_ceiling(&self) -> Option<usize> {
        self.in_flight_ceiling
    }

    /// Admission attempts rejected because the in-flight ceiling was reached.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// High-water mark of pending (in-flight) decisions over the buffer's
    /// lifetime — the occupancy figure the serving harness reports against
    /// its SLO.
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// The configured maximum join delay in rounds.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }

    /// The current round index (starts at 0, bumped by
    /// [`RewardJoinBuffer::advance_round`]).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of decisions currently awaiting finalization.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &JoinStats {
        &self.stats
    }

    /// Records a decision made in the current round and returns its ticket.
    pub fn record(&mut self, payload: P) -> DecisionTicket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.decisions += 1;
        self.pending.insert(
            ticket,
            Pending {
                payload,
                decided_round: self.round,
                reward: None,
            },
        );
        self.peak_pending = self.peak_pending.max(self.pending.len());
        DecisionTicket(ticket)
    }

    /// Records a decision *subject to the in-flight ceiling*: returns `None`
    /// — and counts a shed admission — when the buffer already holds
    /// `in_flight_ceiling` pending decisions. Without a configured ceiling
    /// this is exactly [`RewardJoinBuffer::record`].
    ///
    /// Shedding at admission (before any expensive selection work happens)
    /// is the backpressure contract of the closed serving loop: every
    /// decision that *is* admitted is guaranteed to finalize as exactly one
    /// of joined, expired, or in-flight at shutdown.
    pub fn try_record(&mut self, payload: P) -> Option<DecisionTicket> {
        if let Some(ceiling) = self.in_flight_ceiling {
            if self.pending.len() >= ceiling {
                self.shed += 1;
                return None;
            }
        }
        Some(self.record(payload))
    }

    /// Joins a reward to a pending decision.
    ///
    /// Joining is idempotent-hostile by design: a second reward for the same
    /// ticket is an error (a join bug upstream), while a reward for an
    /// already-finalized or unknown ticket is *not* an error — production
    /// reward streams deliver late and duplicate events, so those are
    /// counted in [`JoinStats::late_rewards`] and dropped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the reward is not a finite
    /// number in `[0, 1]` or the ticket already has a reward.
    pub fn join(&mut self, ticket: DecisionTicket, reward: f64) -> Result<bool, CoreError> {
        if !reward.is_finite() || !(0.0..=1.0).contains(&reward) {
            return Err(CoreError::InvalidConfig {
                parameter: "reward",
                message: format!("must be a finite number in [0, 1], got {reward}"),
            });
        }
        match self.pending.get_mut(&ticket.0) {
            Some(pending) => {
                if pending.reward.is_some() {
                    return Err(CoreError::InvalidConfig {
                        parameter: "ticket",
                        message: format!("ticket {} already has a joined reward", ticket.0),
                    });
                }
                pending.reward = Some((reward, self.round));
                Ok(true)
            }
            None => {
                self.stats.late_rewards += 1;
                Ok(false)
            }
        }
    }

    /// Finalizes every decision whose window closed as of `up_to_round`:
    /// decisions made at rounds `<= up_to_round - max_delay - 1`.
    fn finalize_up_to(&mut self, next_round: u64) -> FinalizedRound<P> {
        let mut finalized = FinalizedRound::empty();
        // A decision made at round R is joinable while round <= R + max_delay,
        // so it finalizes once the buffer advances to R + max_delay + 1.
        let Some(cutoff) = next_round.checked_sub(self.max_delay + 1) else {
            return finalized;
        };
        // Tickets are monotone in decision round, so the pending map (keyed
        // by ticket) is scanned in decision order and the split point is the
        // first ticket decided after the cutoff.
        let keep = self
            .pending
            .iter()
            .find(|(_, p)| p.decided_round > cutoff)
            .map(|(&ticket, _)| ticket);
        let retained = match keep {
            Some(ticket) => self.pending.split_off(&ticket),
            None => BTreeMap::new(),
        };
        let closed = std::mem::replace(&mut self.pending, retained);
        for (ticket, pending) in closed {
            match pending.reward {
                Some((reward, joined_round)) => {
                    self.stats.joined += 1;
                    finalized.joined.push(JoinedDecision {
                        ticket: DecisionTicket(ticket),
                        payload: pending.payload,
                        reward,
                        decided_round: pending.decided_round,
                        joined_round,
                    });
                }
                None => {
                    self.stats.expired += 1;
                    finalized.expired.push(ExpiredDecision {
                        ticket: DecisionTicket(ticket),
                        payload: pending.payload,
                        decided_round: pending.decided_round,
                    });
                }
            }
        }
        finalized
    }

    /// Closes the current round: bumps the round counter and finalizes every
    /// decision whose join window has now closed, in ticket order.
    pub fn advance_round(&mut self) -> FinalizedRound<P> {
        self.round += 1;
        self.finalize_up_to(self.round)
    }

    /// Finalizes *everything* still pending (end of stream): joined
    /// decisions are released, unjoined ones expire, all in ticket order.
    pub fn finish(&mut self) -> FinalizedRound<P> {
        self.round += self.max_delay + 1;
        self.finalize_up_to(self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_finalizes_at_the_same_round_boundary() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(0);
        let a = buffer.record(10);
        let b = buffer.record(11);
        assert!(buffer.join(b, 1.0).unwrap());
        assert!(buffer.join(a, 0.0).unwrap());
        let round = buffer.advance_round();
        // Ticket order, not arrival order.
        assert_eq!(round.joined.len(), 2);
        assert_eq!(round.joined[0].payload, 10);
        assert_eq!(round.joined[1].payload, 11);
        assert!(round.expired.is_empty());
        assert_eq!(buffer.pending(), 0);
    }

    #[test]
    fn windows_hold_decisions_open_for_max_delay_rounds() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(2);
        let a = buffer.record(0);
        assert!(buffer.advance_round().joined.is_empty()); // round 1
        assert!(buffer.advance_round().joined.is_empty()); // round 2
        assert!(buffer.join(a, 0.5).unwrap()); // arrives 2 rounds late: in window
        let round = buffer.advance_round(); // round 3: window closed
        assert_eq!(round.joined.len(), 1);
        assert_eq!(round.joined[0].decided_round, 0);
        assert_eq!(round.joined[0].joined_round, 2);
    }

    #[test]
    fn unjoined_decisions_expire_and_late_rewards_are_counted() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(1);
        let a = buffer.record(7);
        buffer.advance_round();
        let round = buffer.advance_round();
        assert_eq!(round.expired.len(), 1);
        assert_eq!(round.expired[0].payload, 7);
        // The reward shows up after the window closed: dropped, counted.
        assert!(!buffer.join(a, 1.0).unwrap());
        assert_eq!(buffer.stats().late_rewards, 1);
        assert_eq!(buffer.stats().expired, 1);
    }

    #[test]
    fn rejects_invalid_rewards_and_double_joins() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(1);
        let a = buffer.record(0);
        assert!(buffer.join(a, f64::NAN).is_err());
        assert!(buffer.join(a, 1.5).is_err());
        assert!(buffer.join(a, 1.0).unwrap());
        assert!(buffer.join(a, 1.0).is_err());
    }

    #[test]
    fn ceiling_sheds_admissions_and_tracks_occupancy() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(1).with_in_flight_ceiling(2);
        assert_eq!(buffer.in_flight_ceiling(), Some(2));
        let a = buffer.try_record(0).expect("first admission fits");
        let _b = buffer.try_record(1).expect("second admission fits");
        // Ceiling reached: the third admission is shed, not queued.
        assert!(buffer.try_record(2).is_none());
        assert_eq!(buffer.shed(), 1);
        assert_eq!(buffer.pending(), 2);
        assert_eq!(buffer.peak_pending(), 2);
        assert_eq!(
            buffer.stats().decisions,
            2,
            "shed admissions are not decisions"
        );
        // Finalization drains the buffer and re-opens admission.
        buffer.join(a, 1.0).unwrap();
        buffer.advance_round();
        buffer.advance_round();
        assert_eq!(buffer.pending(), 0);
        assert!(buffer.try_record(3).is_some());
        assert_eq!(
            buffer.peak_pending(),
            2,
            "peak is a lifetime high-water mark"
        );
    }

    #[test]
    fn unbounded_buffer_never_sheds() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(0);
        for i in 0..100 {
            assert!(buffer.try_record(i).is_some());
        }
        assert_eq!(buffer.shed(), 0);
        assert_eq!(buffer.peak_pending(), 100);
    }

    #[test]
    fn finish_flushes_every_pending_decision() {
        let mut buffer: RewardJoinBuffer<u32> = RewardJoinBuffer::new(5);
        let a = buffer.record(1);
        let _b = buffer.record(2);
        assert!(buffer.join(a, 1.0).unwrap());
        let last = buffer.finish();
        assert_eq!(last.joined.len(), 1);
        assert_eq!(last.expired.len(), 1);
        assert_eq!(buffer.pending(), 0);
        assert_eq!(buffer.stats().decisions, 2);
    }

    #[test]
    fn release_is_invariant_to_arrival_order_and_round() {
        // Two executions: rewards arrive in different orders at different
        // rounds, all within the window. The finalized stream must match.
        let run = |arrivals: &[(usize, u64, f64)]| {
            // arrivals: (decision index, arrival round, reward)
            let mut buffer: RewardJoinBuffer<usize> = RewardJoinBuffer::new(3);
            let tickets: Vec<DecisionTicket> = (0..4).map(|i| buffer.record(i)).collect();
            let mut released = Vec::new();
            for round in 0..6u64 {
                for &(idx, at, reward) in arrivals {
                    if at == round {
                        buffer.join(tickets[idx], reward).unwrap();
                    }
                }
                released.extend(buffer.advance_round().joined);
            }
            released.extend(buffer.finish().joined);
            released
                .into_iter()
                .map(|j| (j.payload, j.reward.to_bits()))
                .collect::<Vec<_>>()
        };
        let in_order = run(&[(0, 0, 1.0), (1, 0, 0.5), (2, 1, 0.25), (3, 2, 0.0)]);
        let shuffled = run(&[(3, 0, 0.0), (1, 2, 0.5), (0, 3, 1.0), (2, 2, 0.25)]);
        assert_eq!(in_order, shuffled);
    }
}
