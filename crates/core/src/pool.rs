//! Bounded-memory serving pool of warm local agents.
//!
//! The paper's deployment story (Fig. 2) is millions of devices
//! warm-starting from one central model. A serving tier that simulates or
//! fronts that population cannot keep every agent materialized: policies
//! are `O(A·d²)` each, so residency must be bounded and cold agents must be
//! evicted and rehydrated on demand. [`AgentPool`] is that tier:
//!
//! * **Keyed by context code** — one agent per encoded context bucket, the
//!   granularity the central model is trained at.
//! * **Bounded residency** — at most
//!   [`AgentPoolConfig::max_resident_agents`] agents are held warm; the
//!   least-recently-used resident is evicted when the budget is exceeded.
//! * **Eviction persists deltas** — an evicted agent is
//!   [dehydrated](crate::LocalAgent::dehydrate): its queued reports drain
//!   into the pool outbox (the reporter path to the shuffler never loses
//!   data) and its local policy state moves to the dormant tier.
//! * **Rehydration from the current snapshot** — a dormant agent that never
//!   folded a local observation costs *zero* persisted model bytes and is
//!   rebuilt as a pointer into the current epoch's shared
//!   [`crate::ModelSnapshot`]; agents with local observations get their
//!   policy back untouched.
//!
//! Because dehydration is lossless for behavior, a bounded pool selects
//! exactly the same actions as an unbounded one — the `pool_equivalence`
//! property suite pins this for shard counts 1, 2 and 4.
//!
//! Storage is sharded by a splitmix of the key so that shard-local maps stay
//! small under large code spaces; the LRU clock and budget are global, so
//! the residency ceiling is exact at any shard count.

use crate::{CoreError, LocalAgent, ModelSnapshot, P2bConfig, P2bSystem};
use p2b_encoding::Encoder;
use p2b_shuffler::{splitmix64, RawReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of an [`AgentPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentPoolConfig {
    /// Maximum number of resident (warm) agents; `None` means unbounded.
    pub max_resident_agents: Option<usize>,
    /// Number of storage shards keys are partitioned over.
    pub shards: usize,
}

impl AgentPoolConfig {
    /// An unbounded pool with a single storage shard.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            max_resident_agents: None,
            shards: 1,
        }
    }

    /// A pool holding at most `max_resident_agents` warm agents.
    #[must_use]
    pub fn bounded(max_resident_agents: usize) -> Self {
        Self {
            max_resident_agents: Some(max_resident_agents),
            shards: 1,
        }
    }

    /// Sets the number of storage shards.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "shards",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.max_resident_agents == Some(0) {
            return Err(CoreError::InvalidConfig {
                parameter: "max_resident_agents",
                message: "must be at least 1 (or None for unbounded)".to_owned(),
            });
        }
        Ok(())
    }
}

/// Lifetime counters of an [`AgentPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Checkouts served by a resident agent.
    pub hits: u64,
    /// Checkouts that rebuilt a dormant agent.
    pub rehydrations: u64,
    /// Checkouts that created a brand-new warm agent.
    pub creations: u64,
    /// Residents evicted to the dormant tier.
    pub evictions: u64,
}

impl PoolStats {
    /// Checkouts not served by a resident agent.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.rehydrations + self.creations
    }
}

/// A cloneable, thread-safe checkout source: one epoch's shared central
/// snapshot plus everything needed to mint, refresh or rehydrate agents
/// *without* holding `&mut P2bSystem`.
///
/// [`AgentPool::with_agent`] threads the whole system through every
/// checkout, which is fine for a single-threaded simulation but pins a
/// serving deployment to one thread. `AgentSource` is the serving-tier
/// alternative: the orchestrator captures the current epoch once
/// ([`AgentSource::capture`]), hands clones to its worker threads (clones
/// share the snapshot allocation — capturing is a pointer copy, not a model
/// copy), and each worker drives its own pool shard through
/// [`AgentPool::with_agent_at`]. After an ingestion epoch bump the
/// orchestrator captures a fresh source; residents hop snapshots lazily at
/// their next checkout, exactly like the system-threaded path.
#[derive(Debug, Clone)]
pub struct AgentSource {
    config: P2bConfig,
    encoder: Arc<dyn Encoder>,
    snapshot: Arc<ModelSnapshot>,
}

impl AgentSource {
    /// Captures the current epoch's snapshot (plus the configuration and
    /// encoder agents are built from) out of a system.
    ///
    /// # Errors
    ///
    /// Surfaces internal model-service failures from snapshot assembly.
    pub fn capture(system: &mut P2bSystem) -> Result<Self, CoreError> {
        let snapshot = system.central_snapshot()?;
        Ok(Self {
            config: system.config().clone(),
            encoder: Arc::clone(system.encoder()),
            snapshot,
        })
    }

    /// The captured epoch's shared model snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &Arc<ModelSnapshot> {
        &self.snapshot
    }

    /// The captured snapshot's ingestion epoch — the "decision epoch" a
    /// serving harness records against the applied epoch to measure ingest
    /// lag.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Mints a warm agent pointed at the captured snapshot. The caller
    /// chooses the id; the serving pool uses the checkout key, which is
    /// unique per agent by construction (one agent per context code).
    fn make_agent(&self, id: u64) -> Result<LocalAgent, CoreError> {
        LocalAgent::new(
            id,
            &self.config,
            Arc::clone(&self.encoder),
            Some(Arc::clone(&self.snapshot)),
        )
    }
}

/// A resident agent plus its current LRU stamp.
struct Resident {
    agent: LocalAgent,
    stamp: u64,
}

/// One storage shard: resident and dormant agents for the keys it owns.
#[derive(Default)]
struct PoolShard {
    residents: HashMap<u64, Resident>,
    dormant: HashMap<u64, crate::DormantAgent>,
}

/// The bounded-memory agent pool; see the module docs for the design.
///
/// # Example
///
/// ```
/// use p2b_core::{AgentPool, AgentPoolConfig, P2bConfig, P2bSystem};
/// use p2b_encoding::{KMeansConfig, KMeansEncoder};
/// use p2b_linalg::Vector;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let corpus: Vec<Vector> = (0..64)
///     .map(|i| Vector::from(vec![(i % 4) as f64 + 0.5, 1.0, 2.0]).normalized_l1().unwrap())
///     .collect();
/// let encoder = Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng)?);
/// let mut system = P2bSystem::new(P2bConfig::new(3, 5), encoder)?;
///
/// // Hold at most 2 agents warm over a 4-code space.
/// let mut pool = AgentPool::new(AgentPoolConfig::bounded(2))?;
/// let ctx = Vector::from(vec![1.0, 0.5, 0.25]).normalized_l1()?;
/// for code in [0u64, 1, 2, 3, 0, 1] {
///     let action = pool.with_agent(&mut system, code, |agent| {
///         agent.select_action(&ctx, &mut rng)
///     })?;
///     assert!(action.index() < 5);
/// }
/// assert!(pool.resident_agents() <= 2);
/// assert_eq!(pool.stats().evictions, 4);
/// # Ok(())
/// # }
/// ```
pub struct AgentPool {
    config: AgentPoolConfig,
    shards: Vec<PoolShard>,
    /// Global LRU index: stamp → (shard, key). Stamps are unique, so the
    /// minimum entry is always the single least-recently-used resident.
    lru: BTreeMap<u64, (usize, u64)>,
    clock: u64,
    outbox: Vec<RawReport>,
    stats: PoolStats,
}

impl AgentPool {
    /// Creates an empty pool.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero shard count or a zero
    /// residency budget.
    pub fn new(config: AgentPoolConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self {
            config,
            shards: (0..config.shards).map(|_| PoolShard::default()).collect(),
            lru: BTreeMap::new(),
            clock: 0,
            outbox: Vec::new(),
            stats: PoolStats::default(),
        })
    }

    /// The pool configuration.
    #[must_use]
    pub fn config(&self) -> &AgentPoolConfig {
        &self.config
    }

    /// Number of agents currently held warm.
    #[must_use]
    pub fn resident_agents(&self) -> usize {
        self.lru.len()
    }

    /// Number of agents persisted in the dormant tier.
    #[must_use]
    pub fn dormant_agents(&self) -> usize {
        self.shards.iter().map(|s| s.dormant.len()).sum()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Approximate heap bytes of model state owned by resident agents, plus
    /// the model bytes persisted in the dormant tier. Still-shared agents
    /// (resident or dormant) contribute zero: they read through the epoch's
    /// shared snapshot.
    #[must_use]
    pub fn approx_model_bytes(&self) -> (usize, usize) {
        let resident = self
            .shards
            .iter()
            .flat_map(|s| s.residents.values())
            .map(|r| r.agent.approx_owned_model_bytes())
            .sum();
        let dormant = self
            .shards
            .iter()
            .flat_map(|s| s.dormant.values())
            .map(crate::DormantAgent::approx_model_bytes)
            .sum();
        (resident, dormant)
    }

    fn shard_index(&self, key: u64) -> usize {
        (splitmix64(key) % self.config.shards as u64) as usize
    }

    /// Checks the agent for `key` out of the pool, runs `f` on it, and
    /// checks it back in — evicting the least-recently-used resident if the
    /// residency budget is now exceeded.
    ///
    /// Checkout order of preference: resident (refreshed to the current
    /// epoch's snapshot if it is still shared), dormant (rehydrated), fresh
    /// (a new warm agent from the system). Reports the agent queued during
    /// `f` are drained into the pool outbox at checkin, so the reporter path
    /// survives any later eviction.
    ///
    /// # Errors
    ///
    /// Propagates snapshot, rehydration and closure errors. The agent is
    /// checked back in even when `f` fails.
    pub fn with_agent<T>(
        &mut self,
        system: &mut P2bSystem,
        key: u64,
        f: impl FnOnce(&mut LocalAgent) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let mut agent = self.checkout(system, key)?;
        let result = f(&mut agent);
        self.checkin(key, agent);
        result
    }

    /// Exactly [`AgentPool::with_agent`], but checking out against a
    /// captured [`AgentSource`] instead of the system — the thread-safe
    /// serving path: worker threads each own a pool and share (clones of)
    /// one source per epoch.
    ///
    /// Checkout order of preference matches the system path: resident
    /// (still-shared residents hop to the source's snapshot if its epoch
    /// differs), dormant (rehydrated against the source), fresh (a new warm
    /// agent whose id is the checkout key).
    ///
    /// # Errors
    ///
    /// Propagates snapshot, rehydration and closure errors. The agent is
    /// checked back in even when `f` fails.
    pub fn with_agent_at<T>(
        &mut self,
        source: &AgentSource,
        key: u64,
        f: impl FnOnce(&mut LocalAgent) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let mut agent = self.checkout_at(source, key)?;
        let result = f(&mut agent);
        self.checkin(key, agent);
        result
    }

    fn checkout_at(&mut self, source: &AgentSource, key: u64) -> Result<LocalAgent, CoreError> {
        let shard = self.shard_index(key);
        if let Some(resident) = self.shards[shard].residents.remove(&key) {
            self.lru.remove(&resident.stamp);
            self.stats.hits += 1;
            let mut agent = resident.agent;
            if let Some(snapshot) = agent.warm_snapshot() {
                if snapshot.epoch() != source.epoch() {
                    agent.refresh_from_snapshot(Arc::clone(source.snapshot()))?;
                }
            }
            return Ok(agent);
        }
        if let Some(dormant) = self.shards[shard].dormant.remove(&key) {
            self.stats.rehydrations += 1;
            return LocalAgent::rehydrate(dormant, Arc::clone(&source.encoder), &source.snapshot);
        }
        self.stats.creations += 1;
        source.make_agent(key)
    }

    fn checkout(&mut self, system: &mut P2bSystem, key: u64) -> Result<LocalAgent, CoreError> {
        let shard = self.shard_index(key);
        if let Some(resident) = self.shards[shard].residents.remove(&key) {
            self.lru.remove(&resident.stamp);
            self.stats.hits += 1;
            let mut agent = resident.agent;
            // A still-shared agent hops to the current epoch's snapshot —
            // a pointer swap, not a copy — so residents and rehydrated
            // agents always serve from the same model.
            if let Some(snapshot) = agent.warm_snapshot() {
                let current = system.central_snapshot()?;
                if snapshot.epoch() != current.epoch() {
                    agent.refresh_from_snapshot(current)?;
                }
            }
            return Ok(agent);
        }
        if let Some(dormant) = self.shards[shard].dormant.remove(&key) {
            self.stats.rehydrations += 1;
            let snapshot = system.central_snapshot()?;
            return LocalAgent::rehydrate(
                dormant,
                std::sync::Arc::clone(system.encoder()),
                &snapshot,
            );
        }
        self.stats.creations += 1;
        system.make_warm_agent()
    }

    fn checkin(&mut self, key: u64, mut agent: LocalAgent) {
        self.outbox.extend(agent.take_reports());
        let shard = self.shard_index(key);
        let stamp = self.clock;
        self.clock += 1;
        self.shards[shard]
            .residents
            .insert(key, Resident { agent, stamp });
        self.lru.insert(stamp, (shard, key));
        if let Some(budget) = self.config.max_resident_agents {
            while self.lru.len() > budget {
                self.evict_lru();
                self.stats.evictions += 1;
            }
        }
    }

    /// Dehydrates the least-recently-used resident into the dormant tier.
    /// Budget accounting happens at the call sites: only budget pressure
    /// counts as an eviction in [`PoolStats`], a [`AgentPool::park_all`]
    /// drain does not.
    fn evict_lru(&mut self) {
        let Some((&stamp, &(shard, key))) = self.lru.iter().next() else {
            return;
        };
        self.lru.remove(&stamp);
        // The LRU index and the resident maps move in lockstep; if an entry
        // is somehow stale, dropping it from the index already repaired the
        // books and there is nothing to dehydrate.
        let Some(resident) = self.shards[shard].residents.remove(&key) else {
            return;
        };
        let (reports, dormant) = resident.agent.dehydrate();
        self.outbox.extend(reports);
        self.shards[shard].dormant.insert(key, dormant);
    }

    /// Evicts every resident agent (in LRU order), persisting all local
    /// state to the dormant tier — the shutdown/drain path of a serving
    /// deployment, and how simulations flush trailing reports.
    pub fn park_all(&mut self) {
        while !self.lru.is_empty() {
            self.evict_lru();
        }
    }

    /// Drains the reports funneled through the pool (queued at checkin and
    /// eviction), in funnel order.
    #[must_use]
    pub fn drain_reports(&mut self) -> Vec<RawReport> {
        std::mem::take(&mut self.outbox)
    }
}

impl std::fmt::Debug for AgentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentPool")
            .field("config", &self.config)
            .field("resident_agents", &self.resident_agents())
            .field("dormant_agents", &self.dormant_agents())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::P2bConfig;
    use p2b_bandit::ContextualPolicy;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use p2b_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn system() -> P2bSystem {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus: Vec<Vector> = (0..80)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        let encoder =
            Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap());
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(1)
            .with_shuffler_threshold(1);
        P2bSystem::new(config, encoder).unwrap()
    }

    fn ctx(cluster: usize) -> Vector {
        let mut raw = vec![0.05; 4];
        raw[cluster] = 1.0;
        Vector::from(raw).normalized_l1().unwrap()
    }

    #[test]
    fn validates_configuration() {
        assert!(AgentPool::new(AgentPoolConfig::bounded(0)).is_err());
        assert!(AgentPool::new(AgentPoolConfig::unbounded().with_shards(0)).is_err());
        assert!(AgentPool::new(AgentPoolConfig::bounded(1).with_shards(4)).is_ok());
    }

    #[test]
    fn residency_never_exceeds_the_budget() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(3).with_shards(2)).unwrap();
        for step in 0..40u64 {
            let key = step % 7;
            pool.with_agent(&mut sys, key, |agent| {
                agent.select_action(&ctx((key % 4) as usize), &mut rng)
            })
            .unwrap();
            assert!(
                pool.resident_agents() <= 3,
                "budget violated at step {step}"
            );
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().rehydrations > 0);
        // Every key's agent was created exactly once: rehydration, not
        // re-creation, serves returning keys.
        assert_eq!(pool.stats().creations, 7);
        assert_eq!(pool.resident_agents() + pool.dormant_agents(), 7);
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(2);
        let mut pool = AgentPool::new(AgentPoolConfig::unbounded()).unwrap();
        for key in 0..20u64 {
            pool.with_agent(&mut sys, key, |agent| {
                agent.select_action(&ctx((key % 4) as usize), &mut rng)
            })
            .unwrap();
        }
        assert_eq!(pool.resident_agents(), 20);
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(pool.stats().creations, 20);
    }

    #[test]
    fn eviction_funnels_reports_to_the_outbox() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(3);
        // T = 1, p = 0.5: interactions queue reports with high probability.
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(1)).unwrap();
        let mut selected = 0u64;
        for step in 0..30u64 {
            let key = step % 3;
            pool.with_agent(&mut sys, key, |agent| {
                let c = ctx((key % 4) as usize);
                let action = agent.select_action(&c, &mut rng)?;
                agent.observe_reward(&c, action, 1.0, &mut rng)?;
                selected += 1;
                Ok(())
            })
            .unwrap();
        }
        let reports = pool.drain_reports();
        assert!(!reports.is_empty(), "some coin flips must have landed");
        assert!(
            pool.drain_reports().is_empty(),
            "drain must clear the outbox"
        );
        assert_eq!(selected, 30);
    }

    #[test]
    fn rehydrated_agents_keep_their_local_observations() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(1)).unwrap();
        // Key 0's agent folds 5 local observations.
        pool.with_agent(&mut sys, 0, |agent| {
            for _ in 0..5 {
                let c = ctx(0);
                let action = agent.select_action(&c, &mut rng)?;
                agent.observe_reward(&c, action, 1.0, &mut rng)?;
            }
            Ok(())
        })
        .unwrap();
        // Key 1 evicts key 0.
        pool.with_agent(&mut sys, 1, |agent| {
            agent.select_action(&ctx(1), &mut rng).map(|_| ())
        })
        .unwrap();
        assert_eq!(pool.dormant_agents(), 1);
        // Key 0 comes back with its observations intact.
        pool.with_agent(&mut sys, 0, |agent| {
            assert_eq!(agent.interactions(), 5);
            assert_eq!(agent.policy().observations(), 5);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn shared_agents_cost_no_resident_model_bytes() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(5);
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(2)).unwrap();
        // Selection-only traffic: agents stay shared, owning no model bytes.
        for key in 0..4u64 {
            pool.with_agent(&mut sys, key, |agent| {
                agent
                    .select_action(&ctx((key % 4) as usize), &mut rng)
                    .map(|_| ())
            })
            .unwrap();
        }
        let (resident, dormant) = pool.approx_model_bytes();
        assert_eq!(resident, 0);
        assert_eq!(dormant, 0);
        // One local update promotes ownership and shows up in the ceiling.
        pool.with_agent(&mut sys, 0, |agent| {
            let c = ctx(0);
            let action = agent.select_action(&c, &mut rng)?;
            agent.observe_reward(&c, action, 1.0, &mut rng)
        })
        .unwrap();
        let (resident, _) = pool.approx_model_bytes();
        assert!(resident > 0);
    }

    #[test]
    fn park_all_persists_everything() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(6);
        let mut pool = AgentPool::new(AgentPoolConfig::unbounded().with_shards(4)).unwrap();
        for key in 0..6u64 {
            pool.with_agent(&mut sys, key, |agent| {
                agent
                    .select_action(&ctx((key % 4) as usize), &mut rng)
                    .map(|_| ())
            })
            .unwrap();
        }
        pool.park_all();
        assert_eq!(pool.resident_agents(), 0);
        assert_eq!(pool.dormant_agents(), 6);
        // Parked agents come back.
        pool.with_agent(&mut sys, 3, |agent| {
            assert_eq!(agent.interactions(), 0);
            Ok(())
        })
        .unwrap();
        assert_eq!(pool.stats().rehydrations, 1);
    }

    #[test]
    fn checkin_happens_even_when_the_closure_fails() {
        let mut sys = system();
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(2)).unwrap();
        let err = pool.with_agent(&mut sys, 0, |_agent| -> Result<(), CoreError> {
            Err(CoreError::InvalidConfig {
                parameter: "test",
                message: "boom".to_owned(),
            })
        });
        assert!(err.is_err());
        assert_eq!(pool.resident_agents(), 1, "agent must be checked back in");
    }

    #[test]
    fn source_checkout_matches_the_system_path() {
        // Driving the pool through a captured AgentSource must behave like
        // driving it through the system: same creations, rehydrations and
        // selected actions (checkout is deterministic, selection shares the
        // same snapshot and seeds).
        let run_with_system = |keys: &[u64]| {
            let mut sys = system();
            let mut pool = AgentPool::new(AgentPoolConfig::bounded(2)).unwrap();
            let mut actions = Vec::new();
            for (i, &key) in keys.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let action = pool
                    .with_agent(&mut sys, key, |agent| {
                        agent.select_action(&ctx((key % 4) as usize), &mut rng)
                    })
                    .unwrap();
                actions.push(action.index());
            }
            (actions, *pool.stats())
        };
        let run_with_source = |keys: &[u64]| {
            let mut sys = system();
            let source = AgentSource::capture(&mut sys).unwrap();
            let mut pool = AgentPool::new(AgentPoolConfig::bounded(2)).unwrap();
            let mut actions = Vec::new();
            for (i, &key) in keys.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let action = pool
                    .with_agent_at(&source, key, |agent| {
                        agent.select_action(&ctx((key % 4) as usize), &mut rng)
                    })
                    .unwrap();
                actions.push(action.index());
            }
            (actions, *pool.stats())
        };
        let keys: Vec<u64> = (0..24u64).map(|i| i % 5).collect();
        let (sys_actions, sys_stats) = run_with_system(&keys);
        let (src_actions, src_stats) = run_with_source(&keys);
        assert_eq!(sys_actions, src_actions);
        assert_eq!(sys_stats.creations, src_stats.creations);
        assert_eq!(sys_stats.rehydrations, src_stats.rehydrations);
        assert_eq!(sys_stats.evictions, src_stats.evictions);
    }

    #[test]
    fn source_clones_share_the_snapshot_and_refresh_across_epochs() {
        let mut sys = system();
        let source = AgentSource::capture(&mut sys).unwrap();
        let clone = source.clone();
        assert!(Arc::ptr_eq(source.snapshot(), clone.snapshot()));
        assert_eq!(source.epoch(), 0);

        // An ingestion round bumps the epoch; a fresh capture sees it and a
        // resident checked out against the new source hops snapshots.
        let mut pool = AgentPool::new(AgentPoolConfig::unbounded()).unwrap();
        let mut rng = StdRng::seed_from_u64(40);
        pool.with_agent_at(&source, 0, |agent| {
            agent.select_action(&ctx(0), &mut rng).map(|_| ())
        })
        .unwrap();
        let mut teacher = sys.make_warm_agent().unwrap();
        for _ in 0..8 {
            let c = ctx(0);
            let action = teacher.select_action(&c, &mut rng).unwrap();
            teacher.observe_reward(&c, action, 1.0, &mut rng).unwrap();
        }
        sys.collect_from(&mut teacher);
        sys.flush_round(&mut rng).unwrap();
        let fresh = AgentSource::capture(&mut sys).unwrap();
        assert_eq!(fresh.epoch(), 1);
        pool.with_agent_at(&fresh, 0, |agent| {
            let snap = agent.warm_snapshot().expect("still shared");
            assert_eq!(snap.epoch(), 1, "resident must hop to the new epoch");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn sharding_partitions_keys_but_not_the_budget() {
        let mut sys = system();
        let mut rng = StdRng::seed_from_u64(7);
        let mut pool = AgentPool::new(AgentPoolConfig::bounded(2).with_shards(4)).unwrap();
        for key in 0..12u64 {
            pool.with_agent(&mut sys, key, |agent| {
                agent
                    .select_action(&ctx((key % 4) as usize), &mut rng)
                    .map(|_| ())
            })
            .unwrap();
            assert!(pool.resident_agents() <= 2, "global budget is exact");
        }
    }
}
