//! Grouping shuffled report batches into coalesced sufficient statistics.
//!
//! Every report in a [`ShuffledBatch`] that carries the same context code
//! shares the same model-context vector, so the batch's information content
//! for LinUCB is fully captured by per-`(code, action)` sufficient
//! statistics: an observation count and a reward sum. Coalescing a batch of
//! `N` reports over `K` distinct pairs turns `N` `O(d²)` model updates into
//! `K`, and computes each code's context vector exactly once.
//!
//! Equivalence argument: LinUCB's per-arm statistics are
//! `A_a = λI + Σ x xᵀ` and `b_a = Σ r·x`, both *sums* over the batch — so
//! grouping commutes with folding up to floating-point rounding. The
//! property suite (`crates/core/tests/coalesce_equivalence.rs`) checks the
//! coalesced fold against sequential per-report ingestion to 1e-9 across
//! report orderings and shard counts.

use crate::{CodeRepresentation, CoreError};
use p2b_bandit::{Action, CoalescedUpdate};
use p2b_encoding::{ContextCode, Encoder};
use p2b_linalg::Vector;
use p2b_shuffler::ShuffledBatch;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

/// A per-batch memo of code → model-context vectors.
///
/// Both ingestion paths of [`crate::CentralServer`] use it: the sequential
/// path to stop recomputing `representation.vector(...)` for repeated codes
/// within a batch, the coalesced path to materialize each distinct group's
/// shared context exactly once.
#[derive(Debug, Default)]
pub(crate) struct CodeVectorCache {
    vectors: HashMap<usize, Vector>,
}

impl CodeVectorCache {
    /// Returns the model-context vector for `code`, computing it through the
    /// encoder only on the first request.
    pub(crate) fn get(
        &mut self,
        representation: CodeRepresentation,
        encoder: &dyn Encoder,
        code: usize,
    ) -> Result<&Vector, CoreError> {
        match self.vectors.entry(code) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let vector = representation.vector(encoder, ContextCode::new(code))?;
                Ok(entry.insert(vector))
            }
        }
    }
}

/// The result of coalescing one shuffled batch.
#[derive(Debug, Clone)]
pub(crate) struct CoalescedBatch {
    /// One update per distinct `(code, action)` pair, ordered by the pair —
    /// a deterministic order, independent of the batch's shuffled report
    /// order (the sums themselves accumulate in report order).
    pub(crate) updates: Vec<CoalescedUpdate>,
    /// Reports covered by `updates`.
    pub(crate) accepted: u64,
}

/// Groups a shuffled batch by `(code, action)` into coalesced sufficient
/// statistics, skipping (not failing on) reports whose code or action fall
/// outside the configured ranges — the server cannot assume every client is
/// well behaved.
pub(crate) fn coalesce_batch(
    representation: CodeRepresentation,
    encoder: &dyn Encoder,
    num_actions: usize,
    batch: &ShuffledBatch,
) -> Result<CoalescedBatch, CoreError> {
    // BTreeMap, not HashMap: the fold order of the groups must not depend on
    // hasher randomization, or ingestion would not be reproducible.
    let mut groups: BTreeMap<(usize, usize), (u64, f64)> = BTreeMap::new();
    let mut accepted = 0u64;
    for report in batch.reports() {
        if report.code() >= encoder.num_codes() || report.action() >= num_actions {
            continue;
        }
        let group = groups
            .entry((report.code(), report.action()))
            .or_insert((0, 0.0));
        group.0 += 1;
        group.1 += report.reward();
        accepted += 1;
    }
    let mut cache = CodeVectorCache::default();
    let mut updates = Vec::with_capacity(groups.len());
    for ((code, action), (count, reward_sum)) in groups {
        let context = cache.get(representation, encoder, code)?.clone();
        // Each reward lies in [0, 1], but accumulation rounding could nudge
        // the sum marginally past `count`; clamp instead of rejecting.
        let reward_sum = reward_sum.min(count as f64);
        updates.push(
            CoalescedUpdate::new(context, Action::new(action), count, reward_sum)
                .map_err(CoreError::Bandit)?,
        );
    }
    Ok(CoalescedBatch { updates, accepted })
}
