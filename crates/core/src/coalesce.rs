//! Grouping shuffled report batches into coalesced sufficient statistics.
//!
//! Every report in a [`ShuffledBatch`] that carries the same context code
//! shares the same model-context vector, so the batch's information content
//! for LinUCB is fully captured by per-`(code, action)` sufficient
//! statistics: an observation count and a reward sum. Coalescing a batch of
//! `N` reports over `K` distinct pairs turns `N` `O(d²)` model updates into
//! `K`, and computes each code's context vector exactly once.
//!
//! Equivalence argument: LinUCB's per-arm statistics are
//! `A_a = λI + Σ x xᵀ` and `b_a = Σ r·x`, both *sums* over the batch — so
//! grouping commutes with folding up to floating-point rounding. The
//! property suite (`crates/core/tests/coalesce_equivalence.rs`) checks the
//! coalesced fold against sequential per-report ingestion to 1e-9 across
//! report orderings and shard counts.
//!
//! The grouping state lives in a persistent [`Coalescer`] owned by the
//! server: the pair→slot index, the slot table and the code→vector memo all
//! keep their capacity across flushes, so steady-state coalescing allocates
//! only the output `Vec<CoalescedUpdate>` that the model service consumes.

use crate::{CodeRepresentation, CoreError};
use p2b_bandit::{Action, CoalescedUpdate};
use p2b_encoding::{ContextCode, Encoder};
use p2b_linalg::Vector;
use p2b_shuffler::ShuffledBatch;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// A memo of code → model-context vectors.
///
/// Both ingestion paths of [`crate::CentralServer`] use it: the sequential
/// path to stop recomputing `representation.vector(...)` for repeated codes
/// within a batch, the coalesced path (through the server's persistent
/// [`Coalescer`]) to materialize each distinct group's shared context exactly
/// once per server lifetime. Reuse across batches is sound because the
/// encoder and representation are fixed at server construction, and
/// `representation.vector(...)` is deterministic per code.
#[derive(Debug, Default)]
pub(crate) struct CodeVectorCache {
    vectors: HashMap<usize, Vector>,
}

impl CodeVectorCache {
    /// Returns the model-context vector for `code`, computing it through the
    /// encoder only on the first request.
    pub(crate) fn get(
        &mut self,
        representation: CodeRepresentation,
        encoder: &dyn Encoder,
        code: usize,
    ) -> Result<&Vector, CoreError> {
        match self.vectors.entry(code) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let vector = representation.vector(encoder, ContextCode::new(code))?;
                Ok(entry.insert(vector))
            }
        }
    }
}

/// The result of coalescing one shuffled batch.
#[derive(Debug, Clone)]
pub(crate) struct CoalescedBatch {
    /// One update per distinct `(code, action)` pair, ordered by the pair —
    /// a deterministic order, independent of the batch's shuffled report
    /// order (the sums themselves accumulate in report order).
    pub(crate) updates: Vec<CoalescedUpdate>,
    /// Reports covered by `updates`.
    pub(crate) accepted: u64,
}

/// Reusable grouping state for [`Coalescer::coalesce`]: coalescing runs once
/// per flush on the serving hot path, and rebuilding an ordered map plus a
/// vector memo per flush showed up as steady allocator churn in the ingest
/// benchmarks.
///
/// Historically each flush built a fresh `BTreeMap<(code, action), sums>`
/// (node allocations per distinct pair, every batch) and a fresh
/// [`CodeVectorCache`]. The coalescer instead accumulates into a flat slot
/// table addressed through a `HashMap` index — both `clear()`ed, not
/// dropped, between batches — and sorts the slots by pair key before
/// emission. Per-group sums still accumulate in report order and groups are
/// still emitted in pair order, so the produced updates are bit-for-bit the
/// ones the `BTreeMap` formulation produced.
#[derive(Debug, Default)]
pub(crate) struct Coalescer {
    /// `(code, action)` → slot in `groups`; capacity persists across batches.
    index: HashMap<(usize, usize), usize>,
    /// Accumulation slots, in first-seen order during the fold; sorted by
    /// pair key before emission to recover the deterministic group order.
    groups: Vec<((usize, usize), (u64, f64))>,
    /// Code → context-vector memo, shared across every batch this coalescer
    /// sees (the owning server's encoder is fixed at construction).
    cache: CodeVectorCache,
}

impl Coalescer {
    /// Groups a shuffled batch by `(code, action)` into coalesced sufficient
    /// statistics, skipping (not failing on) reports whose code or action
    /// fall outside the configured ranges — the server cannot assume every
    /// client is well behaved.
    pub(crate) fn coalesce(
        &mut self,
        representation: CodeRepresentation,
        encoder: &dyn Encoder,
        num_actions: usize,
        batch: &ShuffledBatch,
    ) -> Result<CoalescedBatch, CoreError> {
        self.index.clear();
        self.groups.clear();
        let mut accepted = 0u64;
        for report in batch.reports() {
            if report.code() >= encoder.num_codes() || report.action() >= num_actions {
                continue;
            }
            let key = (report.code(), report.action());
            let slot = match self.index.entry(key) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => {
                    let slot = self.groups.len();
                    self.groups.push((key, (0, 0.0)));
                    entry.insert(slot);
                    slot
                }
            };
            let group = &mut self.groups[slot].1;
            group.0 += 1;
            group.1 += report.reward();
            accepted += 1;
        }
        // Emission order must not depend on hasher randomization or the
        // batch's shuffled report order; sorting by the pair key reproduces
        // the ordered-map iteration the reference formulation used.
        self.groups.sort_unstable_by_key(|&(key, _)| key);
        let mut updates = Vec::with_capacity(self.groups.len());
        for &((code, action), (count, reward_sum)) in &self.groups {
            let context = self.cache.get(representation, encoder, code)?.clone();
            // Each reward lies in [0, 1], but accumulation rounding could
            // nudge the sum marginally past `count`; clamp instead of
            // rejecting.
            let reward_sum = reward_sum.min(count as f64);
            updates.push(
                CoalescedUpdate::new(context, Action::new(action), count, reward_sum)
                    .map_err(CoreError::Bandit)?,
            );
        }
        Ok(CoalescedBatch { updates, accepted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder() -> KMeansEncoder {
        let mut rng = StdRng::seed_from_u64(11);
        let corpus: Vec<Vector> = (0..40)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap()
    }

    fn batch(reports: Vec<(usize, usize, f64)>, seed: u64) -> ShuffledBatch {
        let shuffler = Shuffler::new(ShufflerConfig::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = reports
            .into_iter()
            .enumerate()
            .map(|(i, (code, action, reward))| {
                RawReport::new(
                    format!("a{i}"),
                    EncodedReport::new(code, action, reward).unwrap(),
                )
            })
            .collect();
        shuffler.process(raw, &mut rng)
    }

    #[test]
    fn reused_coalescer_matches_a_fresh_one_bit_for_bit() {
        let enc = encoder();
        let mut reused = Coalescer::default();
        for seed in 0..4u64 {
            let reports: Vec<(usize, usize, f64)> = (0..30)
                .map(|i| {
                    (
                        (i + seed as usize) % 3,
                        i % 2,
                        f64::from(u8::from(i % 5 == 0)),
                    )
                })
                .collect();
            let b = batch(reports, seed);
            let mut fresh = Coalescer::default();
            let warm = reused
                .coalesce(CodeRepresentation::Centroid, &enc, 2, &b)
                .unwrap();
            let cold = fresh
                .coalesce(CodeRepresentation::Centroid, &enc, 2, &b)
                .unwrap();
            assert_eq!(warm.accepted, cold.accepted);
            assert_eq!(warm.updates.len(), cold.updates.len());
            for (w, c) in warm.updates.iter().zip(cold.updates.iter()) {
                assert_eq!(w.action(), c.action());
                assert_eq!(w.count(), c.count());
                assert_eq!(w.reward_sum().to_bits(), c.reward_sum().to_bits());
                for (a, b) in w.context().iter().zip(c.context().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn groups_are_emitted_in_pair_order_with_report_order_sums() {
        let enc = encoder();
        let mut coalescer = Coalescer::default();
        // Reports arrive pair-interleaved; emission must come back sorted by
        // (code, action) no matter the arrival order.
        let b = batch(
            vec![(1, 0, 1.0), (0, 1, 0.5), (0, 0, 0.25), (1, 0, 0.75)],
            7,
        );
        let out = coalescer
            .coalesce(CodeRepresentation::Centroid, &enc, 2, &b)
            .unwrap();
        assert_eq!(out.accepted, 4);
        let keys: Vec<(usize, u64)> = out
            .updates
            .iter()
            .map(|u| (u.action().index(), u.count()))
            .collect();
        assert_eq!(keys, vec![(0, 1), (1, 1), (0, 2)]);
    }

    #[test]
    fn out_of_range_reports_are_skipped_not_fatal() {
        let enc = encoder();
        let mut coalescer = Coalescer::default();
        let b = batch(vec![(99, 0, 1.0), (0, 9, 1.0), (0, 0, 1.0)], 3);
        let out = coalescer
            .coalesce(CodeRepresentation::Centroid, &enc, 2, &b)
            .unwrap();
        assert_eq!(out.accepted, 1);
        assert_eq!(out.updates.len(), 1);
    }
}
