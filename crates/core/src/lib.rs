//! Privacy-Preserving Bandits (P2B): the paper's core system.
//!
//! P2B lets local contextual-bandit agents benefit from each other's feedback
//! without revealing individual interactions. Every user runs a
//! [`LocalAgent`]: a LinUCB policy plus an encoder and a randomized reporter.
//! After `T` local interactions the agent, with probability `p`, encodes one
//! interaction as the anonymous tuple `(y, a, r)` and submits it to the
//! trusted shuffler. The shuffler anonymizes, shuffles and thresholds batches
//! of tuples; the [`CentralServer`] folds surviving tuples into a global
//! LinUCB model which fresh agents merge at start-up (warm start).
//!
//! The differential-privacy guarantee of the whole pipeline is computed by
//! [`P2bSystem::privacy_guarantee`] from the participation probability and
//! the shuffler threshold, following Section 4 of the paper.
//!
//! The central model is owned by a sharded [`ModelService`]: ingest workers
//! partitioned by action fold coalesced sufficient statistics (one weighted
//! update per distinct `(code, action)` pair in a batch) and the
//! [`CentralServer`] publishes epoch-versioned [`ModelSnapshot`]s behind an
//! `Arc` that all warm starts of an epoch share. Two ingestion paths feed
//! the service:
//!
//! * [`P2bSystem::flush_round`] — synchronous, per-report in batch order:
//!   the path the simulation harness and the golden determinism tests use.
//! * [`P2bSystem::spawn_engine`] — the sharded streaming engine
//!   ([`p2b_shuffler::ShufflerEngine`]) with per-batch (ε, δ) amplification
//!   accounting; configured by [`P2bConfig::shuffler_shards`] and
//!   [`P2bConfig::shuffler_batch_size`]. Engine batches are folded through
//!   the coalescing ingester ([`P2bSystem::ingest_engine_batch`]). This is
//!   the serving-scale path.
//!
//! A third, trust-minimized path is the secure-aggregation ingest
//! ([`SecureIngestService`]): coalesced sufficient statistics are
//! fixed-point encoded and additively secret-shared across `k` aggregator
//! shards, and the central side only ever sees the recombined per-arm sums
//! it assembles epoch models from.
//!
//! # Example
//!
//! ```
//! use p2b_core::{P2bConfig, P2bSystem};
//! use p2b_encoding::{KMeansConfig, KMeansEncoder};
//! use p2b_linalg::Vector;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Fit an encoder on a public corpus of normalized contexts.
//! let corpus: Vec<Vector> = (0..64)
//!     .map(|i| Vector::from(vec![(i % 8) as f64, 1.0, 2.0]).normalized_l1().unwrap())
//!     .collect();
//! let encoder = Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng)?);
//! let config = P2bConfig::new(3, 5).with_local_interactions(2);
//! let mut system = P2bSystem::new(config.clone(), encoder)?;
//!
//! // A local agent interacts and (maybe) reports.
//! let mut agent = system.make_agent(&mut rng)?;
//! for _ in 0..4 {
//!     let ctx = Vector::from(vec![1.0, 0.5, 0.25]).normalized_l1()?;
//!     let action = agent.select_action(&ctx, &mut rng)?;
//!     agent.observe_reward(&ctx, action, 1.0, &mut rng)?;
//! }
//! system.collect_from(&mut agent);
//! let stats = system.flush_round(&mut rng)?;
//! assert!(stats.received <= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod agent;
mod coalesce;
mod config;
mod error;
mod join;
mod pool;
mod reporter;
mod secure;
mod server;
mod service;
mod system;

pub use agent::{DormantAgent, LocalAgent};
pub use config::{CodeRepresentation, P2bConfig};
pub use error::CoreError;
pub use join::{
    DecisionTicket, ExpiredDecision, FinalizedRound, JoinStats, JoinedDecision, RewardJoinBuffer,
};
pub use pool::{AgentPool, AgentPoolConfig, AgentSource, PoolStats};
pub use reporter::{PendingReport, RandomizedReporter};
pub use secure::SecureIngestService;
pub use server::CentralServer;
pub use service::{ModelService, ModelSnapshot};
pub use system::{P2bSystem, RoundStats};
