//! Configuration of the P2B system.

use crate::CoreError;
use p2b_bandit::LinUcbConfig;
use p2b_encoding::{ContextCode, Encoder};
use p2b_linalg::Vector;
use p2b_privacy::Participation;
use serde::{Deserialize, Serialize};

/// How an encoded context code is turned back into a vector when feeding the
/// bandit model.
///
/// The paper states that private agents "use the encoded value as the
/// context"; the representation controls what that value looks like:
///
/// * [`CodeRepresentation::Centroid`] — the code's cluster centroid, a
///   `d`-dimensional vector. The context space collapses to `k` distinct
///   points while keeping LinUCB's design matrices `d × d`. This is the
///   default and what the experiment harness uses.
/// * [`CodeRepresentation::OneHot`] — the indicator vector of the code, a
///   `k`-dimensional vector. LinUCB then degenerates to per-(code, action)
///   mean estimation, useful as an ablation of how much the centroid
///   geometry helps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CodeRepresentation {
    /// Represent a code by its cluster centroid (dimension `d`).
    #[default]
    Centroid,
    /// Represent a code by a one-hot indicator (dimension `k`).
    OneHot,
}

impl CodeRepresentation {
    /// Dimension of the model context under this representation.
    #[must_use]
    pub fn dimension(&self, encoder: &dyn Encoder) -> usize {
        match self {
            CodeRepresentation::Centroid => encoder.context_dimension(),
            CodeRepresentation::OneHot => encoder.num_codes(),
        }
    }

    /// The model-context vector for a given code.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for out-of-range codes.
    pub fn vector(&self, encoder: &dyn Encoder, code: ContextCode) -> Result<Vector, CoreError> {
        match self {
            CodeRepresentation::Centroid => Ok(encoder.representative(code)?),
            CodeRepresentation::OneHot => {
                if code.value() >= encoder.num_codes() {
                    return Err(CoreError::InvalidConfig {
                        parameter: "code",
                        message: format!(
                            "code {} out of range for {} codes",
                            code.value(),
                            encoder.num_codes()
                        ),
                    });
                }
                Ok(Vector::basis(encoder.num_codes(), code.value()))
            }
        }
    }
}

/// Configuration of a [`crate::P2bSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2bConfig {
    /// Dimension `d` of the raw context vectors observed by local agents.
    pub context_dimension: usize,
    /// Number of actions `A`.
    pub num_actions: usize,
    /// LinUCB exploration parameter α (the paper uses α = 1).
    pub alpha: f64,
    /// Participation probability `p` of the randomized reporter (paper: 0.5).
    pub participation: f64,
    /// Number of local interactions `T` observed before each reporting
    /// opportunity (paper: 10 or 20 depending on the experiment).
    pub local_interactions: u64,
    /// Shuffler frequency threshold, which doubles as the crowd-blending `l`
    /// (paper: 10).
    pub shuffler_threshold: usize,
    /// Number of shuffler shards used by the streaming engine
    /// ([`crate::P2bSystem::spawn_engine`]). The default of 1 preserves the
    /// canonical single-lane behavior; the synchronous
    /// [`crate::P2bSystem::flush_round`] path ignores this knob entirely.
    pub shuffler_shards: usize,
    /// Merged batch size delivered by the streaming engine: how many reports
    /// the shuffler gathers before shuffling, thresholding and releasing one
    /// batch to the central model.
    pub shuffler_batch_size: usize,
    /// Number of ingest shards of the central model service
    /// ([`crate::ModelService`]): worker threads that fold coalesced
    /// sufficient statistics into the central LinUCB model, partitioned by
    /// action (disjoint LinUCB arms are independent, so the partition is
    /// exact). The default of 1 preserves the canonical single-worker
    /// deployment; model snapshots are bit-identical at any shard count.
    pub ingest_shards: usize,
    /// How encoded codes are represented when training the central model.
    pub code_representation: CodeRepresentation,
    /// Constant Ω of the δ bound (Gehrke et al. 2012); only affects reporting
    /// of δ, not the mechanism itself.
    pub delta_omega: f64,
}

impl P2bConfig {
    /// Creates a configuration with the paper's defaults: α = 1, p = 0.5,
    /// T = 10, threshold 10, centroid representation.
    #[must_use]
    pub fn new(context_dimension: usize, num_actions: usize) -> Self {
        Self {
            context_dimension,
            num_actions,
            alpha: 1.0,
            participation: 0.5,
            local_interactions: 10,
            shuffler_threshold: 10,
            shuffler_shards: 1,
            shuffler_batch_size: 128,
            ingest_shards: 1,
            code_representation: CodeRepresentation::Centroid,
            delta_omega: 0.1,
        }
    }

    /// Sets the participation probability `p`.
    #[must_use]
    pub fn with_participation(mut self, participation: f64) -> Self {
        self.participation = participation;
        self
    }

    /// Sets the number of local interactions `T` before a reporting opportunity.
    #[must_use]
    pub fn with_local_interactions(mut self, local_interactions: u64) -> Self {
        self.local_interactions = local_interactions;
        self
    }

    /// Sets the shuffler threshold (crowd-blending `l`).
    #[must_use]
    pub fn with_shuffler_threshold(mut self, threshold: usize) -> Self {
        self.shuffler_threshold = threshold;
        self
    }

    /// Sets the number of shuffler shards used by the streaming engine.
    #[must_use]
    pub fn with_shuffler_shards(mut self, shards: usize) -> Self {
        self.shuffler_shards = shards;
        self
    }

    /// Sets the merged batch size of the streaming engine.
    #[must_use]
    pub fn with_shuffler_batch_size(mut self, batch_size: usize) -> Self {
        self.shuffler_batch_size = batch_size;
        self
    }

    /// Sets the number of ingest shards of the central model service.
    #[must_use]
    pub fn with_ingest_shards(mut self, ingest_shards: usize) -> Self {
        self.ingest_shards = ingest_shards;
        self
    }

    /// Sets the LinUCB exploration parameter α.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the code representation used for the central model.
    #[must_use]
    pub fn with_code_representation(mut self, representation: CodeRepresentation) -> Self {
        self.code_representation = representation;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated
    /// constraint, or [`CoreError::Privacy`] if the participation probability
    /// is outside `(0, 1)`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.context_dimension == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_actions == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "num_actions",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(CoreError::InvalidConfig {
                parameter: "alpha",
                message: format!("must be a finite non-negative number, got {}", self.alpha),
            });
        }
        if self.local_interactions == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "local_interactions",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shuffler_threshold == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "shuffler_threshold",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shuffler_shards == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "shuffler_shards",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.shuffler_batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "shuffler_batch_size",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.ingest_shards == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "ingest_shards",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.delta_omega.is_finite() || self.delta_omega <= 0.0 {
            return Err(CoreError::InvalidConfig {
                parameter: "delta_omega",
                message: format!("must be a finite positive number, got {}", self.delta_omega),
            });
        }
        // Participation is validated by the privacy crate's constructor.
        let _ = self.participation()?;
        Ok(())
    }

    /// The participation probability as a validated [`Participation`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Privacy`] if `participation` is outside `(0, 1)`.
    pub fn participation(&self) -> Result<Participation, CoreError> {
        Ok(Participation::new(self.participation)?)
    }

    /// The LinUCB configuration for a *local* agent operating on raw contexts.
    #[must_use]
    pub fn local_linucb(&self) -> LinUcbConfig {
        LinUcbConfig::new(self.context_dimension, self.num_actions).with_alpha(self.alpha)
    }

    /// The LinUCB configuration for the *central* model, whose context
    /// dimension depends on the code representation.
    #[must_use]
    pub fn central_linucb(&self, encoder: &dyn Encoder) -> LinUcbConfig {
        LinUcbConfig::new(
            self.code_representation.dimension(encoder),
            self.num_actions,
        )
        .with_alpha(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder() -> KMeansEncoder {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus: Vec<Vector> = (0..40)
            .map(|i| {
                Vector::from(vec![(i % 4) as f64 + 0.5, 1.0, 2.0])
                    .normalized_l1()
                    .unwrap()
            })
            .collect();
        KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap()
    }

    #[test]
    fn defaults_match_the_paper() {
        let cfg = P2bConfig::new(10, 20);
        assert_eq!(cfg.alpha, 1.0);
        assert_eq!(cfg.participation, 0.5);
        assert_eq!(cfg.local_interactions, 10);
        assert_eq!(cfg.shuffler_threshold, 10);
        // Scaling knobs default to the canonical single-lane deployment.
        assert_eq!(cfg.shuffler_shards, 1);
        assert_eq!(cfg.shuffler_batch_size, 128);
        assert_eq!(cfg.ingest_shards, 1);
        assert_eq!(cfg.code_representation, CodeRepresentation::Centroid);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(P2bConfig::new(0, 5).validate().is_err());
        assert!(P2bConfig::new(5, 0).validate().is_err());
        assert!(P2bConfig::new(5, 5).with_alpha(-1.0).validate().is_err());
        assert!(P2bConfig::new(5, 5)
            .with_participation(0.0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_participation(1.0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_local_interactions(0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_shuffler_threshold(0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_shuffler_shards(0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_shuffler_batch_size(0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_ingest_shards(0)
            .validate()
            .is_err());
        assert!(P2bConfig::new(5, 5)
            .with_shuffler_shards(8)
            .with_shuffler_batch_size(256)
            .with_ingest_shards(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn representation_dimensions() {
        let enc = encoder();
        assert_eq!(CodeRepresentation::Centroid.dimension(&enc), 3);
        assert_eq!(CodeRepresentation::OneHot.dimension(&enc), 4);
    }

    #[test]
    fn representation_vectors() {
        let enc = encoder();
        let centroid = CodeRepresentation::Centroid
            .vector(&enc, ContextCode::new(1))
            .unwrap();
        assert_eq!(centroid.len(), 3);
        let onehot = CodeRepresentation::OneHot
            .vector(&enc, ContextCode::new(1))
            .unwrap();
        assert_eq!(onehot.len(), 4);
        assert_eq!(onehot.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
        assert!(CodeRepresentation::OneHot
            .vector(&enc, ContextCode::new(9))
            .is_err());
    }

    #[test]
    fn linucb_configurations_follow_the_representation() {
        let enc = encoder();
        let cfg = P2bConfig::new(3, 7);
        assert_eq!(cfg.local_linucb().context_dimension, 3);
        assert_eq!(cfg.local_linucb().num_actions, 7);
        assert_eq!(cfg.central_linucb(&enc).context_dimension, 3);
        let cfg = cfg.with_code_representation(CodeRepresentation::OneHot);
        assert_eq!(cfg.central_linucb(&enc).context_dimension, 4);
    }
}
