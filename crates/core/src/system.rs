//! End-to-end wiring of the P2B pipeline.

use crate::{CentralServer, CoreError, LocalAgent, ModelSnapshot, P2bConfig};
use p2b_encoding::Encoder;
use p2b_privacy::{
    amplified_delta, amplified_epsilon, AmplificationLedger, CrowdBlending, PrivacyGuarantee,
};
use p2b_shuffler::{
    EngineBatch, EngineHandle, RawReport, ShuffledBatch, Shuffler, ShufflerConfig, ShufflerEngine,
    ShufflerStats,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Statistics of one server-side collection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundStats {
    /// Reports received by the shuffler this round.
    pub received: usize,
    /// Reports released by the shuffler after thresholding.
    pub released: usize,
    /// Reports dropped by the threshold.
    pub dropped: usize,
    /// Reports accepted by the server into the central model.
    pub accepted: u64,
}

impl RoundStats {
    /// Assembles round statistics from one shuffled batch's stats plus the
    /// number of reports the server accepted from it.
    fn from_batch(stats: ShufflerStats, accepted: u64) -> Self {
        Self {
            received: stats.received,
            released: stats.released,
            dropped: stats.dropped,
            accepted,
        }
    }
}

/// The complete P2B system: configuration, fitted encoder, trusted shuffler
/// and central server, plus the factory for local agents.
///
/// The system object lives on the "infrastructure" side; [`LocalAgent`]s live
/// on user devices and only communicate through report tuples and model
/// snapshots, which is exactly the trust boundary the paper draws.
#[derive(Debug)]
pub struct P2bSystem {
    config: P2bConfig,
    encoder: Arc<dyn Encoder>,
    shuffler: Shuffler,
    server: CentralServer,
    pending: Vec<RawReport>,
    next_agent_id: u64,
}

impl P2bSystem {
    /// Creates a P2B system around a fitted encoder.
    ///
    /// # Errors
    ///
    /// Returns configuration and dimension-mismatch errors; see
    /// [`P2bConfig::validate`].
    pub fn new(config: P2bConfig, encoder: Arc<dyn Encoder>) -> Result<Self, CoreError> {
        config.validate()?;
        let server = CentralServer::new(&config, Arc::clone(&encoder))?;
        let shuffler = Shuffler::new(ShufflerConfig::new(config.shuffler_threshold))?;
        Ok(Self {
            config,
            encoder,
            shuffler,
            server,
            pending: Vec::new(),
            next_agent_id: 0,
        })
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &P2bConfig {
        &self.config
    }

    /// The fitted encoder shared by all agents.
    #[must_use]
    pub fn encoder(&self) -> &Arc<dyn Encoder> {
        &self.encoder
    }

    /// Borrows the central server.
    #[must_use]
    pub fn server(&self) -> &CentralServer {
        &self.server
    }

    /// Mutably borrows the central server, e.g. to assemble the current
    /// model ([`CentralServer::model`]) or publish a snapshot.
    pub fn server_mut(&mut self) -> &mut CentralServer {
        &mut self.server
    }

    /// The epoch-versioned snapshot of the central model that new warm
    /// agents are pointed at.
    ///
    /// # Errors
    ///
    /// Surfaces internal model-service failures.
    pub fn central_snapshot(&mut self) -> Result<Arc<ModelSnapshot>, CoreError> {
        self.server.snapshot()
    }

    /// Number of reports waiting for the next shuffling round.
    #[must_use]
    pub fn pending_reports(&self) -> usize {
        self.pending.len()
    }

    /// Creates a *warm* local agent pointed at the current epoch's shared
    /// central-model snapshot.
    ///
    /// Every agent created within one epoch shares the same
    /// [`ModelSnapshot`] allocation — warm starts no longer copy or merge
    /// the model; the agent clones it copy-on-write only when it folds its
    /// first local observation.
    ///
    /// # Errors
    ///
    /// Propagates agent-construction errors and internal model-service
    /// failures.
    pub fn make_agent<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> Result<LocalAgent, CoreError> {
        self.make_warm_agent()
    }

    /// Creates a *warm* local agent without threading an RNG through —
    /// warm starts are deterministic pointer hand-offs, so no randomness is
    /// consumed. This is the constructor the [`crate::AgentPool`] uses.
    ///
    /// # Errors
    ///
    /// Propagates agent-construction errors and internal model-service
    /// failures.
    pub fn make_warm_agent(&mut self) -> Result<LocalAgent, CoreError> {
        let id = self.next_agent_id;
        self.next_agent_id += 1;
        let snapshot = self.server.snapshot()?;
        LocalAgent::new(id, &self.config, Arc::clone(&self.encoder), Some(snapshot))
    }

    /// Creates a *cold* local agent that never receives the central model —
    /// the fully local baseline of the paper.
    ///
    /// # Errors
    ///
    /// Propagates agent-construction errors.
    pub fn make_cold_agent(&mut self) -> Result<LocalAgent, CoreError> {
        let id = self.next_agent_id;
        self.next_agent_id += 1;
        LocalAgent::new(id, &self.config, Arc::clone(&self.encoder), None)
    }

    /// Drains an agent's queued reports into the system's pending batch.
    pub fn collect_from(&mut self, agent: &mut LocalAgent) {
        self.pending.extend(agent.take_reports());
    }

    /// Submits a single raw report directly (used by streaming deployments
    /// and by tests).
    pub fn submit_report(&mut self, report: RawReport) {
        self.pending.push(report);
    }

    /// Runs one shuffling round over the pending reports and folds the
    /// surviving tuples into the central model.
    ///
    /// # Errors
    ///
    /// Propagates server-side model errors.
    pub fn flush_round<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<RoundStats, CoreError> {
        let batch = self
            .shuffler
            .process(std::mem::take(&mut self.pending), rng);
        let accepted = self.server.ingest_batch(&batch)?;
        Ok(RoundStats::from_batch(batch.stats(), accepted))
    }

    /// Runs one shuffling round and also returns the released batch, for
    /// callers that want to audit the shuffler output (e.g. crowd-blending
    /// verification in tests).
    ///
    /// # Errors
    ///
    /// Propagates server-side model errors.
    pub fn flush_round_with_batch<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<(RoundStats, ShuffledBatch), CoreError> {
        let batch = self
            .shuffler
            .process(std::mem::take(&mut self.pending), rng);
        let accepted = self.server.ingest_batch(&batch)?;
        Ok((RoundStats::from_batch(batch.stats(), accepted), batch))
    }

    /// Spawns the sharded streaming shuffler engine configured by
    /// [`P2bConfig::shuffler_shards`] / [`P2bConfig::shuffler_batch_size`],
    /// with per-batch (ε, δ) amplification accounting wired to this system's
    /// participation probability and δ constant Ω.
    ///
    /// This is the serving-scale ingestion path: reports submitted to the
    /// returned handle (from any number of threads) are anonymized, sharded,
    /// shuffled, thresholded and delivered as [`EngineBatch`]es, which
    /// [`P2bSystem::ingest_engine_batch`] folds into the central model. The
    /// synchronous [`P2bSystem::flush_round`] path stays available for
    /// single-threaded simulation and is untouched by the shard knobs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shuffler`] when the engine configuration is
    /// invalid and [`CoreError::Privacy`] for an invalid participation
    /// probability.
    pub fn spawn_engine(&self, seed: u64) -> Result<EngineHandle, CoreError> {
        let engine = ShufflerEngine::builder(ShufflerConfig::new(self.config.shuffler_threshold))
            .shards(self.config.shuffler_shards)
            .batch_size(self.config.shuffler_batch_size)
            .privacy_accounting(self.config.participation()?, self.config.delta_omega)
            .build()?;
        Ok(engine.spawn(seed))
    }

    /// Folds one engine-delivered batch into the central model through the
    /// coalescing ingester: the batch is grouped by `(code, action)` and
    /// dispatched to the model service's ingest shards as weighted
    /// sufficient-statistics updates, so a batch of `N` reports over `K`
    /// distinct pairs costs `K` matrix updates instead of `N`.
    ///
    /// # Errors
    ///
    /// Propagates server-side model errors.
    pub fn ingest_engine_batch(&mut self, batch: &EngineBatch) -> Result<RoundStats, CoreError> {
        let accepted = self.server.ingest_batch_coalesced(&batch.batch)?;
        Ok(RoundStats::from_batch(batch.batch.stats(), accepted))
    }

    /// Runs one complete streaming round: spawns the engine, submits every
    /// report, flushes, and folds each delivered batch into the central
    /// model. Returns per-batch round statistics and the amplification
    /// ledger.
    ///
    /// This is the single-producer convenience wrapper; serving deployments
    /// and the throughput benchmarks drive [`P2bSystem::spawn_engine`]
    /// directly from many producer threads.
    ///
    /// # Errors
    ///
    /// Returns engine-configuration errors and propagates server-side model
    /// errors.
    pub fn streaming_round<I>(
        &mut self,
        reports: I,
        seed: u64,
    ) -> Result<(Vec<RoundStats>, AmplificationLedger), CoreError>
    where
        I: IntoIterator<Item = RawReport>,
    {
        let handle = self.spawn_engine(seed)?;
        for report in reports {
            handle.submit(report)?;
        }
        let output = handle.finish();
        let mut stats = Vec::with_capacity(output.batches.len());
        for batch in &output.batches {
            stats.push(self.ingest_engine_batch(batch)?);
        }
        let ledger = output.ledger.ok_or_else(|| CoreError::InvalidConfig {
            parameter: "streaming_round",
            message: "engine finished without an amplification ledger".to_owned(),
        })?;
        Ok((stats, ledger))
    }

    /// The crowd-blending parameterization enforced by the shuffler threshold.
    ///
    /// # Errors
    ///
    /// Never fails for a validated configuration.
    pub fn crowd_blending(&self) -> Result<CrowdBlending, CoreError> {
        Ok(CrowdBlending::exact(self.config.shuffler_threshold as u64)?)
    }

    /// The (ε, δ) differential-privacy guarantee of a single reporting
    /// opportunity under this configuration (Section 4 of the paper):
    /// ε from Equation 3 with ε̄ = 0, δ from the crowd size enforced by the
    /// shuffler threshold.
    ///
    /// # Errors
    ///
    /// Never fails for a validated configuration.
    pub fn privacy_guarantee(&self) -> Result<PrivacyGuarantee, CoreError> {
        let p = self.config.participation()?;
        let epsilon = amplified_epsilon(p, 0.0)?;
        let delta = amplified_delta(
            p,
            self.config.shuffler_threshold as u64,
            self.config.delta_omega,
        )?;
        Ok(PrivacyGuarantee::new(epsilon, delta)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_bandit::ContextualPolicy;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use p2b_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(seed: u64) -> Arc<KMeansEncoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..80)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap())
    }

    fn system(threshold: usize) -> P2bSystem {
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(1)
            .with_shuffler_threshold(threshold);
        P2bSystem::new(config, encoder(0)).unwrap()
    }

    #[test]
    fn privacy_guarantee_matches_the_paper_headline() {
        let system = system(10);
        let guarantee = system.privacy_guarantee().unwrap();
        assert!((guarantee.epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(guarantee.delta() > 0.0 && guarantee.delta() < 1.0);
        assert_eq!(system.crowd_blending().unwrap().crowd_size(), 10);
    }

    #[test]
    fn end_to_end_round_trip_updates_the_central_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut system = system(2);
        // Many agents interact with the same strongly-clustered context and
        // always receive reward 1 for action 0.
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        for _ in 0..40 {
            let mut agent = system.make_agent(&mut rng).unwrap();
            for _ in 0..4 {
                let action = agent.select_action(&ctx, &mut rng).unwrap();
                let reward = if action.index() == 0 { 1.0 } else { 0.0 };
                agent
                    .observe_reward(&ctx, action, reward, &mut rng)
                    .unwrap();
            }
            system.collect_from(&mut agent);
        }
        assert!(system.pending_reports() > 0);
        let stats = system.flush_round(&mut rng).unwrap();
        assert_eq!(stats.received, stats.released + stats.dropped);
        assert!(stats.accepted > 0);
        assert_eq!(system.server().ingested_reports(), stats.accepted);
        assert!(system.server_mut().model().unwrap().observations() > 0);
        assert_eq!(system.pending_reports(), 0);
    }

    #[test]
    fn thresholding_enforces_crowd_blending_on_released_batches() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut system = system(5);
        let contexts: Vec<Vector> = (0..4)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        for a in 0..30 {
            let mut agent = system.make_agent(&mut rng).unwrap();
            let ctx = &contexts[a % contexts.len()];
            for _ in 0..2 {
                let action = agent.select_action(ctx, &mut rng).unwrap();
                agent.observe_reward(ctx, action, 0.5, &mut rng).unwrap();
            }
            system.collect_from(&mut agent);
        }
        let (_, batch) = system.flush_round_with_batch(&mut rng).unwrap();
        let codes: Vec<usize> = batch.reports().iter().map(|r| r.code()).collect();
        let crowd = system.crowd_blending().unwrap();
        assert!(crowd.is_satisfied_by(&codes));
    }

    #[test]
    fn warm_agents_start_from_the_central_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut system = system(1);
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();

        // Phase 1: a population of agents teaches the server that action 2 pays.
        for _ in 0..60 {
            let mut agent = system.make_agent(&mut rng).unwrap();
            for _ in 0..3 {
                let action = agent.select_action(&ctx, &mut rng).unwrap();
                let reward = if action.index() == 2 { 1.0 } else { 0.0 };
                agent
                    .observe_reward(&ctx, action, reward, &mut rng)
                    .unwrap();
            }
            system.collect_from(&mut agent);
        }
        system.flush_round(&mut rng).unwrap();

        // Phase 2: a fresh warm agent should prefer action 2 immediately,
        // while a cold agent spreads its choices.
        let mut warm = system.make_agent(&mut rng).unwrap();
        let mut warm_votes = [0usize; 3];
        for _ in 0..30 {
            warm_votes[warm.select_action(&ctx, &mut rng).unwrap().index()] += 1;
        }
        assert!(
            warm_votes[2] > 20,
            "warm agent should exploit the shared model: {warm_votes:?}"
        );

        let mut cold = system.make_cold_agent().unwrap();
        let mut cold_votes = [0usize; 3];
        for _ in 0..30 {
            cold_votes[cold.select_action(&ctx, &mut rng).unwrap().index()] += 1;
        }
        assert!(
            cold_votes[2] < 25,
            "cold agent should not already know the answer: {cold_votes:?}"
        );
    }

    #[test]
    fn agent_ids_are_unique() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut system = system(1);
        let a = system.make_agent(&mut rng).unwrap();
        let b = system.make_cold_agent().unwrap();
        let c = system.make_agent(&mut rng).unwrap();
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn flush_with_no_pending_reports_is_a_no_op() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut system = system(3);
        let stats = system.flush_round(&mut rng).unwrap();
        assert_eq!(stats, RoundStats::default());
    }

    /// Gathers reports from a population of agents without flushing them,
    /// so the engine tests can replay the same stream.
    fn gather_reports(system: &mut P2bSystem, rng: &mut StdRng, agents: usize) -> Vec<RawReport> {
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        let mut reports = Vec::new();
        for _ in 0..agents {
            let mut agent = system.make_agent(rng).unwrap();
            for _ in 0..4 {
                let action = agent.select_action(&ctx, rng).unwrap();
                let reward = if action.index() == 0 { 1.0 } else { 0.0 };
                agent.observe_reward(&ctx, action, reward, rng).unwrap();
            }
            reports.extend(agent.take_reports());
        }
        reports
    }

    #[test]
    fn streaming_round_feeds_the_central_model_like_flush_round() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(1)
            .with_shuffler_threshold(2)
            .with_shuffler_batch_size(16);
        let mut system = P2bSystem::new(config, encoder(0)).unwrap();
        let reports = gather_reports(&mut system, &mut rng, 40);
        let submitted = reports.len();
        assert!(submitted > 0);

        let (stats, ledger) = system.streaming_round(reports, 99).unwrap();
        let received: usize = stats.iter().map(|s| s.received).sum();
        let accepted: u64 = stats.iter().map(|s| s.accepted).sum();
        assert_eq!(received, submitted, "no report may be lost in the engine");
        for s in &stats {
            assert_eq!(s.received, s.released + s.dropped);
        }
        assert_eq!(system.server().ingested_reports(), accepted);
        assert!(system.server_mut().model().unwrap().observations() > 0);
        // Every batch was recorded in the ledger with the headline ε.
        assert_eq!(ledger.records().len(), stats.len());
        assert!((ledger.per_report_epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn multi_shard_engine_round_trip_conserves_reports() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = P2bConfig::new(4, 3)
            .with_local_interactions(1)
            .with_shuffler_threshold(1)
            .with_shuffler_shards(4)
            .with_shuffler_batch_size(8);
        let mut system = P2bSystem::new(config, encoder(0)).unwrap();
        let reports = gather_reports(&mut system, &mut rng, 30);
        let submitted = reports.len();

        let handle = system.spawn_engine(3).unwrap();
        for report in reports {
            handle.submit(report).unwrap();
        }
        let output = handle.finish();
        let mut accepted = 0;
        for batch in &output.batches {
            accepted += system.ingest_engine_batch(batch).unwrap().accepted;
        }
        // Threshold 1: every submitted report survives and is accepted.
        assert_eq!(accepted, submitted as u64);
        assert_eq!(system.server().ingested_reports(), accepted);
        let ledger = output.ledger.unwrap();
        assert_eq!(ledger.total_released(), submitted);
        assert!(ledger.weakest().is_some());
    }

    #[test]
    fn spawn_engine_respects_config_validation() {
        let mut config = P2bConfig::new(4, 3).with_local_interactions(1);
        config.shuffler_batch_size = 0;
        assert!(P2bSystem::new(config, encoder(0)).is_err());
    }

    #[test]
    fn warm_starts_share_one_snapshot_allocation_per_epoch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut system = system(1);

        // Two agents created in the same epoch point at the SAME snapshot —
        // the warm start copies a pointer, not the model.
        let a = system.make_agent(&mut rng).unwrap();
        let b = system.make_agent(&mut rng).unwrap();
        let snap_a = a.warm_snapshot().expect("warm agent starts shared");
        let snap_b = b.warm_snapshot().expect("warm agent starts shared");
        assert!(
            Arc::ptr_eq(snap_a, snap_b),
            "same-epoch warm starts must share one model allocation"
        );
        assert_eq!(snap_a.epoch(), 0);
        assert!(Arc::ptr_eq(&system.central_snapshot().unwrap(), snap_a));

        // An ingestion round bumps the epoch; later agents get a new
        // snapshot while earlier ones keep reading their epoch's model.
        let mut teacher = system.make_agent(&mut rng).unwrap();
        let ctx = Vector::from(vec![1.0, 0.1, 0.1, 0.1])
            .normalized_l1()
            .unwrap();
        for _ in 0..8 {
            let action = teacher.select_action(&ctx, &mut rng).unwrap();
            teacher.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        }
        system.collect_from(&mut teacher);
        let stats = system.flush_round(&mut rng).unwrap();
        assert!(stats.accepted > 0);

        let c = system.make_agent(&mut rng).unwrap();
        let snap_c = c.warm_snapshot().expect("warm agent starts shared");
        assert!(!Arc::ptr_eq(snap_a, snap_c));
        assert_eq!(snap_c.epoch(), 1);
        assert_eq!(
            snap_c.model().observations(),
            system.server().ingested_reports()
        );
        // A cold agent never holds a snapshot.
        assert!(system.make_cold_agent().unwrap().warm_snapshot().is_none());
    }

    #[test]
    fn multi_shard_ingest_matches_single_shard_bit_for_bit() {
        // The ingest-shard count must not change the served model: each arm
        // is owned by exactly one shard and updated in submission order.
        let run = |ingest_shards: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            let config = P2bConfig::new(4, 3)
                .with_local_interactions(1)
                .with_shuffler_threshold(2)
                .with_ingest_shards(ingest_shards);
            let mut system = P2bSystem::new(config, encoder(0)).unwrap();
            let reports = gather_reports(&mut system, &mut rng, 30);
            let (stats, _) = system.streaming_round(reports, 5).unwrap();
            let model = system.server_mut().model().unwrap().clone();
            (stats, model)
        };
        let (stats_one, model_one) = run(1);
        for shards in [2usize, 4] {
            let (stats, model) = run(shards);
            assert_eq!(stats, stats_one, "round stats drifted at {shards} shards");
            for action in 0..3 {
                let action = p2b_bandit::Action::new(action);
                assert_eq!(
                    model.design(action).unwrap(),
                    model_one.design(action).unwrap(),
                    "design drifted at {shards} ingest shards"
                );
                assert_eq!(
                    model.reward_vector(action).unwrap(),
                    model_one.reward_vector(action).unwrap()
                );
            }
            assert_eq!(model.observations(), model_one.observations());
        }
    }
}
