//! The sharded central model service: concurrent ingestion of coalesced
//! sufficient statistics and epoch-versioned model snapshots.
//!
//! The paper's analyzer folds a stream of anonymized `(y, a, r)` tuples into
//! one central LinUCB model. At serving scale that fold is the bottleneck:
//! each report costs an `O(d²)` Sherman–Morrison update, and every agent
//! warm start used to rebuild a full copy of the model. The service fixes
//! both ends:
//!
//! ```text
//!   ShuffledBatch ──▶ coalesce by (code, action) ──▶ K ≤ N updates
//!                                                        │ partition by
//!                                                        │ action % M
//!                       ┌─ ingest shard 0 (arms 0, M, 2M, …) ◀┤
//!                       ├─ ingest shard 1 (arms 1, M+1, …)   ◀┤
//!                       └─ ingest shard M−1                  ◀┘
//!                                │ assemble (merge in shard order)
//!                                ▼
//!                  Arc<ModelSnapshot { epoch, model }> ──▶ warm starts
//! ```
//!
//! * **Coalescing** — every report sharing a code shares the same context
//!   vector, so a batch of `N` reports over `K` distinct `(code, action)`
//!   pairs becomes `K` weighted rank-1 updates
//!   ([`p2b_bandit::LinUcb::update_batch`]) instead of `N` plain ones.
//! * **Action sharding** — disjoint-arm LinUCB keeps per-arm statistics
//!   that never interact, so partitioning updates by `action % M` across
//!   `M` worker threads is an *exact* parallelization: no locks, no
//!   merge conflicts, and per-arm update order is preserved by the FIFO
//!   shard queues.
//! * **Epoch snapshots** — the service assembles the shard models into one
//!   [`ModelSnapshot`] per *epoch* (a counter bumped on every mutating
//!   ingest) and hands it out behind an `Arc`. All agents created within an
//!   epoch share one assembly — the per-agent merge of the old design is
//!   gone.
//!
//! Determinism: each arm is owned by exactly one shard and receives its
//! updates in submission order, and [`ModelService::assemble`] merges shard
//! models in shard-index order — so the assembled model is bit-for-bit
//! independent of thread scheduling *and* of the shard count.

use crate::CoreError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use p2b_bandit::{
    Action, BanditError, CoalescedUpdate, F32Scorer, IngestScratch, LinUcb, LinUcbConfig,
};
use std::fmt;
use std::sync::OnceLock;
use std::thread::JoinHandle;

/// An immutable, epoch-versioned snapshot of the central model.
///
/// Snapshots are distributed behind an [`Arc`](std::sync::Arc): every agent
/// warm-started
/// within the same epoch holds a pointer to the *same* allocation, which is
/// what replaces the per-agent model clone of the pre-service design.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    epoch: u64,
    model: LinUcb,
    /// Lazily derived single-precision scoring tier, built at most once per
    /// snapshot the first time a caller asks for it. Agents' default select
    /// path stays on the f64 model — the determinism goldens pin that path —
    /// so the derivation cost is only paid by callers that opt in.
    f32_scorer: OnceLock<F32Scorer>,
}

impl ModelSnapshot {
    /// Wraps an assembled model with its epoch. Snapshots are published by
    /// [`crate::CentralServer::snapshot`].
    pub(crate) fn new(epoch: u64, model: LinUcb) -> Self {
        Self {
            epoch,
            model,
            f32_scorer: OnceLock::new(),
        }
    }

    /// The ingestion epoch this snapshot was assembled at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The assembled central model.
    #[must_use]
    pub fn model(&self) -> &LinUcb {
        &self.model
    }

    /// The snapshot's single-precision scoring tier, derived from the f64
    /// model on first use and shared by every subsequent caller.
    ///
    /// The snapshot is immutable, so the derived scorer can never go stale;
    /// the f64 [`ModelSnapshot::model`] remains the source of truth and the
    /// path the reproduction's determinism goldens exercise.
    #[must_use]
    pub fn f32_scorer(&self) -> &F32Scorer {
        self.f32_scorer.get_or_init(|| F32Scorer::new(&self.model))
    }
}

/// A shard's reply to a snapshot request: its model plus the arms it has
/// folded updates into since the dirty set was last taken.
struct ShardState {
    model: LinUcb,
    /// Sorted arm indices this shard mutated since the last taking snapshot.
    dirty: Vec<usize>,
}

/// What one ingest shard can be asked to do.
enum ShardCommand {
    /// Fold a run of coalesced updates (all owned by this shard) into the
    /// shard model, in order.
    Apply(Vec<CoalescedUpdate>),
    /// Reply with a clone of the shard model and its dirty-arm set — or the
    /// first update error the shard ever hit, if any. When `take_dirty` is
    /// set the shard clears its dirty tracking after replying (the requester
    /// is consuming the set to re-merge exactly those arms).
    Snapshot {
        reply: Sender<Result<ShardState, BanditError>>,
        take_dirty: bool,
    },
}

/// One ingest shard: a worker thread owning the LinUCB arms whose action
/// index is congruent to the shard index modulo the shard count.
struct IngestShard {
    commands: Sender<ShardCommand>,
    worker: Option<JoinHandle<()>>,
}

/// The worker loop: apply update runs in FIFO order through the fast
/// scratch-threaded batch path (arena synced once per touched arm per
/// batch), remember the first internal failure, track which arms were
/// folded since the last taking snapshot, answer snapshot requests.
fn run_shard(commands: &Receiver<ShardCommand>, mut model: LinUcb) {
    let num_actions = model.config().num_actions;
    let mut scratch = IngestScratch::new();
    let mut dirty = vec![false; num_actions];
    let mut failure: Option<BanditError> = None;
    while let Ok(command) = commands.recv() {
        match command {
            ShardCommand::Apply(updates) => {
                if failure.is_none() {
                    // Arms folded before a mid-batch failure are still
                    // mutated (and re-synced), so their touch marks must be
                    // kept either way.
                    let result = model.update_batch_with(&updates, &mut scratch);
                    for &idx in scratch.touched() {
                        dirty[idx] = true;
                    }
                    if let Err(error) = result {
                        failure = Some(error);
                    }
                }
            }
            ShardCommand::Snapshot { reply, take_dirty } => {
                let response = match &failure {
                    Some(error) => Err(error.clone()),
                    None => Ok(ShardState {
                        model: model.clone(),
                        dirty: dirty
                            .iter()
                            .enumerate()
                            .filter_map(|(idx, &is_dirty)| is_dirty.then_some(idx))
                            .collect(),
                    }),
                };
                if take_dirty && failure.is_none() {
                    dirty.iter_mut().for_each(|flag| *flag = false);
                }
                // A dropped reply receiver just means the requester went
                // away; the shard keeps serving.
                let _ = reply.send(response);
            }
        }
    }
}

/// The concurrent central model service.
///
/// Owns `M ≥ 1` ingest shards. [`ModelService::ingest`] partitions a batch
/// of coalesced updates by `action % M` and dispatches each partition to
/// its shard without waiting; [`ModelService::assemble`] synchronizes with
/// every shard (the FIFO command queues guarantee all prior ingests are
/// folded) and merges the shard models into one [`LinUcb`].
///
/// The service is deliberately model-only: validation against the encoder
/// and the code representation happens in [`crate::CentralServer`], which
/// also owns epoch bookkeeping and snapshot caching.
pub struct ModelService {
    shards: Vec<IngestShard>,
    config: LinUcbConfig,
    /// The persistent assembled central model, re-merged incrementally:
    /// after the first full rebuild, each assembly resets and re-merges only
    /// the arms some shard folded since the previous assembly. `None` until
    /// the first assembly, and reset to `None` if an incremental re-merge
    /// fails partway (the next assembly then falls back to a full rebuild).
    assembled: Option<LinUcb>,
}

impl ModelService {
    /// Spawns a service with `shards` ingest workers for models of the given
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `shards` is zero and
    /// propagates LinUCB configuration errors.
    pub fn spawn(config: LinUcbConfig, shards: usize) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "ingest_shards",
                message: "must be at least 1".to_owned(),
            });
        }
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let model = LinUcb::new(config)?;
            let (tx, rx) = unbounded::<ShardCommand>();
            let worker = std::thread::spawn(move || run_shard(&rx, model));
            workers.push(IngestShard {
                commands: tx,
                worker: Some(worker),
            });
        }
        Ok(Self {
            shards: workers,
            config,
            assembled: None,
        })
    }

    /// Number of ingest shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The LinUCB configuration of the served model.
    #[must_use]
    pub fn model_config(&self) -> &LinUcbConfig {
        &self.config
    }

    /// Dispatches a batch of pre-validated coalesced updates to the ingest
    /// shards, partitioned by `action % shards`. Returns without waiting for
    /// the folds to complete; [`ModelService::assemble`] synchronizes.
    ///
    /// Relative order of updates sharing an action is preserved (each arm
    /// lives on exactly one shard and the shard queue is FIFO), which is
    /// what keeps the assembled model independent of the shard count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if a shard worker has shut down,
    /// which cannot happen while the service is alive.
    pub fn ingest(&self, updates: Vec<CoalescedUpdate>) -> Result<(), CoreError> {
        let shards = self.shards.len();
        if shards == 1 {
            return self.dispatch(0, updates);
        }
        let mut partitions: Vec<Vec<CoalescedUpdate>> = vec![Vec::new(); shards];
        for update in updates {
            partitions[update.action().index() % shards].push(update);
        }
        for (shard, partition) in partitions.into_iter().enumerate() {
            if !partition.is_empty() {
                self.dispatch(shard, partition)?;
            }
        }
        Ok(())
    }

    fn dispatch(&self, shard: usize, updates: Vec<CoalescedUpdate>) -> Result<(), CoreError> {
        if updates.is_empty() {
            return Ok(());
        }
        self.shards[shard]
            .commands
            .send(ShardCommand::Apply(updates))
            .map_err(|_| CoreError::InvalidConfig {
                parameter: "model_service",
                message: "ingest shard worker has shut down".to_owned(),
            })
    }

    /// Requests a state snapshot from every shard and collects the replies
    /// in shard-index order.
    fn collect_shards(&self, take_dirty: bool) -> Result<Vec<ShardState>, CoreError> {
        let mut replies = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = unbounded();
            shard
                .commands
                .send(ShardCommand::Snapshot {
                    reply: tx,
                    take_dirty,
                })
                .map_err(|_| CoreError::InvalidConfig {
                    parameter: "model_service",
                    message: "ingest shard worker has shut down".to_owned(),
                })?;
            replies.push(rx);
        }
        let mut states = Vec::with_capacity(replies.len());
        for reply in replies {
            let state = reply
                .recv()
                .map_err(|_| CoreError::InvalidConfig {
                    parameter: "model_service",
                    message: "ingest shard worker has shut down".to_owned(),
                })?
                .map_err(CoreError::Bandit)?;
            states.push(state);
        }
        Ok(states)
    }

    /// Synchronizes with every ingest shard and assembles the current
    /// central model, re-merging only the arms some shard folded since the
    /// previous assembly (see [`ModelService::assemble_with_dirty`]).
    ///
    /// # Errors
    ///
    /// Surfaces the first internal update error any shard encountered, or a
    /// shard shutdown. Both indicate a bug rather than bad input: every
    /// update is validated before dispatch.
    pub fn assemble(&mut self) -> Result<LinUcb, CoreError> {
        self.assemble_with_dirty().map(|(model, _)| model)
    }

    /// Incremental epoch assembly: synchronizes with every ingest shard,
    /// re-merges only the dirty arms into the persistent assembled model,
    /// and returns the model together with the sorted dirty-arm union.
    ///
    /// The first call performs a full from-scratch rebuild (`LinUcb::new` +
    /// per-shard [`LinUcb::merge`] in shard-index order) — exactly the
    /// historical assembly arithmetic, which also fixes never-updated arms'
    /// bit patterns to the post-merge Cholesky refresh. Every subsequent
    /// call resets each dirty arm to cold and re-merges that arm from every
    /// shard in shard order ([`LinUcb::reset_arm`] + [`LinUcb::merge_arm`]),
    /// which runs the identical per-arm arithmetic the full rebuild would —
    /// so the assembled model is bit-identical to a from-scratch rebuild
    /// ([`ModelService::assemble_reference`]) at every epoch, while the
    /// assembly cost scales with the number of *dirty* arms, not the number
    /// of arms. Publication piggybacks on this: `LinUcb` stores its arms
    /// behind per-arm `Arc`s, so the returned clone shares every clean arm's
    /// storage with the previous epoch's snapshot.
    ///
    /// An arm appears in the dirty union iff some shard folded an update
    /// into it since the previous taking assembly (the conservation
    /// property pinned by the `assembly_equivalence` suite).
    ///
    /// # Errors
    ///
    /// Same contract as [`ModelService::assemble`]. If an incremental
    /// re-merge fails partway, the persistent model is discarded so the next
    /// assembly falls back to a full rebuild instead of serving a
    /// half-merged state.
    pub fn assemble_with_dirty(&mut self) -> Result<(LinUcb, Vec<usize>), CoreError> {
        let states = self.collect_shards(true)?;
        let mut dirty: Vec<usize> = states
            .iter()
            .flat_map(|state| state.dirty.iter().copied())
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        match self.assembled.take() {
            None => {
                let mut assembled = LinUcb::new(self.config)?;
                for state in &states {
                    assembled.merge(&state.model)?;
                }
                self.assembled = Some(assembled);
            }
            Some(mut assembled) => {
                let mut remerge = || -> Result<(), CoreError> {
                    for &arm in &dirty {
                        let action = Action::new(arm);
                        assembled.reset_arm(action)?;
                        for state in &states {
                            assembled.merge_arm(action, &state.model)?;
                        }
                    }
                    Ok(())
                };
                // On failure `self.assembled` stays `None`: the next call
                // rebuilds from scratch rather than reusing partial state.
                remerge()?;
                self.assembled = Some(assembled);
            }
        }
        let model = self
            .assembled
            .as_ref()
            .ok_or_else(|| CoreError::InvalidConfig {
                parameter: "model_service",
                message: "assembled model missing after assembly".to_owned(),
            })?
            .clone();
        Ok((model, dirty))
    }

    /// From-scratch reference assembly: merges every shard model into a cold
    /// model in shard-index order, without touching the persistent
    /// incremental state or the shards' dirty tracking.
    ///
    /// This is the historical assembly path, preserved as the bit-exact
    /// reference the incremental path is pinned against (and the baseline
    /// the ingest benchmark measures assembly speedups from).
    ///
    /// # Errors
    ///
    /// Same contract as [`ModelService::assemble`].
    pub fn assemble_reference(&self) -> Result<LinUcb, CoreError> {
        let states = self.collect_shards(false)?;
        let mut assembled = LinUcb::new(self.config)?;
        for state in &states {
            assembled.merge(&state.model)?;
        }
        Ok(assembled)
    }
}

impl fmt::Debug for ModelService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelService")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Drop for ModelService {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            // Dropping the sender disconnects the worker's receive loop.
            let (closed, _) = unbounded();
            shard.commands = closed;
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_bandit::{Action, ContextualPolicy};
    use p2b_linalg::Vector;

    fn update(action: usize, count: u64, reward_sum: f64) -> CoalescedUpdate {
        CoalescedUpdate::new(
            Vector::from(vec![0.25, 0.75]),
            Action::new(action),
            count,
            reward_sum,
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(ModelService::spawn(LinUcbConfig::new(2, 3), 0).is_err());
    }

    #[test]
    fn empty_service_assembles_a_cold_model() {
        let mut service = ModelService::spawn(LinUcbConfig::new(2, 3), 2).unwrap();
        assert_eq!(service.shards(), 2);
        let model = service.assemble().unwrap();
        assert_eq!(model.observations(), 0);
        assert_eq!(model.context_dimension(), 2);
    }

    #[test]
    fn assembly_is_identical_across_shard_counts() {
        let updates = vec![
            update(0, 5, 4.0),
            update(1, 3, 0.0),
            update(2, 7, 7.0),
            update(0, 2, 1.0),
            update(3, 1, 1.0),
        ];
        let mut assembled = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut service = ModelService::spawn(LinUcbConfig::new(2, 4), shards).unwrap();
            service.ingest(updates.clone()).unwrap();
            assembled.push(service.assemble().unwrap());
        }
        for model in &assembled[1..] {
            for action in 0..4 {
                let action = Action::new(action);
                assert_eq!(
                    model.design(action).unwrap(),
                    assembled[0].design(action).unwrap(),
                    "assembled design must not depend on the shard count"
                );
                assert_eq!(
                    model.reward_vector(action).unwrap(),
                    assembled[0].reward_vector(action).unwrap()
                );
                assert_eq!(
                    model.pulls(action).unwrap(),
                    assembled[0].pulls(action).unwrap()
                );
            }
            assert_eq!(model.observations(), assembled[0].observations());
        }
        assert_eq!(assembled[0].observations(), 18);
    }

    #[test]
    fn per_action_update_order_is_preserved_across_ingests() {
        // Two ingests hitting the same arm: the folded design is the ordered
        // sum either way, but pulls/observations must accumulate exactly.
        let mut service = ModelService::spawn(LinUcbConfig::new(2, 2), 2).unwrap();
        service.ingest(vec![update(0, 4, 2.0)]).unwrap();
        service
            .ingest(vec![update(0, 6, 3.0), update(1, 2, 2.0)])
            .unwrap();
        let model = service.assemble().unwrap();
        assert_eq!(model.pulls(Action::new(0)).unwrap(), 10);
        assert_eq!(model.pulls(Action::new(1)).unwrap(), 2);
        assert_eq!(model.observations(), 12);
    }

    #[test]
    fn snapshot_f32_scorer_is_built_once_and_agrees_with_the_model() {
        use p2b_bandit::{SelectScratch, SelectScratchF32};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut service = ModelService::spawn(LinUcbConfig::new(2, 4), 2).unwrap();
        service
            .ingest(vec![
                update(0, 5, 4.0),
                update(2, 7, 7.0),
                update(3, 1, 1.0),
            ])
            .unwrap();
        let snapshot = ModelSnapshot::new(1, service.assemble().unwrap());

        // Lazy + memoized: both calls hand back the same derived scorer.
        let first = snapshot.f32_scorer() as *const _;
        let second = snapshot.f32_scorer() as *const _;
        assert_eq!(first, second, "scorer must be derived at most once");

        // The derived tier serves the same actions as the f64 model here.
        let mut rng64 = StdRng::seed_from_u64(11);
        let mut rng32 = rng64.clone();
        let mut scratch64 = SelectScratch::new();
        let mut scratch32 = SelectScratchF32::new();
        for step in 0..64u64 {
            let ctx = Vector::from(vec![
                0.25 + (step % 5) as f64 * 0.1,
                0.75 - (step % 5) as f64 * 0.1,
            ]);
            let a64 = snapshot
                .model()
                .select_action_with(&ctx, &mut rng64, &mut scratch64)
                .unwrap();
            let a32 = snapshot
                .f32_scorer()
                .select_action_with(&ctx, &mut rng32, &mut scratch32)
                .unwrap();
            assert_eq!(a64, a32, "f32 tier diverged at step {step}");
        }

        // Cloned snapshots re-derive their own scorer lazily and still agree.
        let clone = snapshot.clone();
        assert_eq!(clone.epoch(), snapshot.epoch());
        let mut rng = StdRng::seed_from_u64(3);
        let mut rng_clone = rng.clone();
        let ctx = Vector::from(vec![0.5, 0.5]);
        assert_eq!(
            snapshot
                .f32_scorer()
                .select_action_with(&ctx, &mut rng, &mut scratch32)
                .unwrap(),
            clone
                .f32_scorer()
                .select_action_with(&ctx, &mut rng_clone, &mut scratch32)
                .unwrap()
        );
    }

    #[test]
    fn internal_shard_failures_surface_on_assemble() {
        let mut service = ModelService::spawn(LinUcbConfig::new(2, 2), 1).unwrap();
        // A mis-dimensioned context slips past the (bypassed) validation.
        let bad = CoalescedUpdate::new(Vector::zeros(5), Action::new(0), 1, 0.0).unwrap();
        service.ingest(vec![bad]).unwrap();
        assert!(matches!(service.assemble(), Err(CoreError::Bandit(_))));
    }
}
