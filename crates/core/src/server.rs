//! The central model server: validation, epoch bookkeeping and snapshot
//! publication in front of the sharded [`ModelService`].

use crate::coalesce::{Coalescer, CodeVectorCache};
use crate::{CodeRepresentation, CoreError, ModelService, ModelSnapshot, P2bConfig};
use p2b_bandit::{Action, CoalescedUpdate, LinUcb};
use p2b_encoding::Encoder;
use p2b_linalg::Vector;
use p2b_shuffler::ShuffledBatch;
use std::fmt;
use std::sync::Arc;

/// The analyzer/server of the ESA pipeline: it receives anonymized,
/// shuffled, thresholded tuples `(y, a, r)` and folds them into a central
/// LinUCB model that local agents use as their warm start.
///
/// Since the model-service refactor the server is a facade: the model state
/// lives on the [`ModelService`]'s ingest shards (partitioned by action),
/// and the server's job is validation, code→vector memoization, epoch
/// bookkeeping and the publication of epoch-versioned [`ModelSnapshot`]s.
/// Two ingestion paths feed the shards:
///
/// * [`CentralServer::ingest_batch`] — per-report, in batch order, with the
///   context vector memoized per code. This is the reference path: its
///   seeded behavior is bit-for-bit identical to the historical per-report
///   loop and is pinned by the golden determinism suite.
/// * [`CentralServer::ingest_batch_coalesced`] — groups the batch by
///   `(code, action)` first, so `N` reports over `K` distinct pairs cost
///   `K` weighted model updates instead of `N`. Equivalent to the
///   sequential path up to floating-point rounding (≤ 1e-9 in the property
///   suite); the serving-scale engine paths use it.
///
/// For the non-private baseline (agents sharing raw contexts) the server also
/// accepts raw tuples through [`CentralServer::ingest_raw`]; that path is
/// only valid when the code representation is
/// [`CodeRepresentation::Centroid`], because otherwise the central model's
/// context space is the code space and raw contexts have the wrong dimension.
pub struct CentralServer {
    service: ModelService,
    encoder: Arc<dyn Encoder>,
    representation: CodeRepresentation,
    model_dimension: usize,
    num_actions: usize,
    ingested_reports: u64,
    epoch: u64,
    cached: Option<Arc<ModelSnapshot>>,
    coalescer: Coalescer,
}

impl CentralServer {
    /// Creates an empty central server, spawning its model service with
    /// [`P2bConfig::ingest_shards`] ingest workers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EncoderMismatch`] if the encoder's context
    /// dimension does not match the configuration, or configuration errors.
    pub fn new(config: &P2bConfig, encoder: Arc<dyn Encoder>) -> Result<Self, CoreError> {
        config.validate()?;
        if encoder.context_dimension() != config.context_dimension {
            return Err(CoreError::EncoderMismatch {
                expected: config.context_dimension,
                found: encoder.context_dimension(),
            });
        }
        let model_config = config.central_linucb(encoder.as_ref());
        let service = ModelService::spawn(model_config, config.ingest_shards)?;
        Ok(Self {
            service,
            model_dimension: model_config.context_dimension,
            num_actions: model_config.num_actions,
            encoder,
            representation: config.code_representation,
            ingested_reports: 0,
            epoch: 0,
            cached: None,
            coalescer: Coalescer::default(),
        })
    }

    /// The number of report tuples folded into the model so far.
    #[must_use]
    pub fn ingested_reports(&self) -> u64 {
        self.ingested_reports
    }

    /// The current ingestion epoch: bumped every time an ingest call folded
    /// at least one report, i.e. every time the model state changed.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of ingest shards of the backing model service.
    #[must_use]
    pub fn ingest_shards(&self) -> usize {
        self.service.shards()
    }

    /// The current central model, assembled from the ingest shards.
    ///
    /// Borrows from the epoch's cached snapshot; the first call per epoch
    /// pays one assembly, subsequent calls are free.
    ///
    /// # Errors
    ///
    /// Surfaces internal model-service failures (never triggered by
    /// malformed reports, which are rejected before dispatch).
    pub fn model(&mut self) -> Result<&LinUcb, CoreError> {
        Ok(self.refresh_snapshot()?.model())
    }

    /// The epoch-versioned snapshot of the central model, shared behind an
    /// `Arc`: every warm start within one epoch receives a pointer to the
    /// same allocation instead of its own copy of the model.
    ///
    /// # Errors
    ///
    /// Surfaces internal model-service failures.
    pub fn snapshot(&mut self) -> Result<Arc<ModelSnapshot>, CoreError> {
        Ok(Arc::clone(self.refresh_snapshot()?))
    }

    /// Ensures the epoch's snapshot exists and returns a borrow of it.
    ///
    /// Since the incremental-assembly refactor the backing
    /// [`ModelService::assemble`] re-merges only the arms dirtied since the
    /// previous assembly, so the per-epoch refresh cost scales with how many
    /// arms the epoch's flushes actually touched.
    fn refresh_snapshot(&mut self) -> Result<&Arc<ModelSnapshot>, CoreError> {
        if self.cached.is_none() {
            let model = self.service.assemble()?;
            self.cached = Some(Arc::new(ModelSnapshot::new(self.epoch, model)));
        }
        self.cached
            .as_ref()
            .ok_or_else(|| CoreError::InvalidConfig {
                parameter: "central_server",
                message: "snapshot cache empty after refresh".to_owned(),
            })
    }

    /// Marks the model state changed: bump the epoch, invalidate the cached
    /// snapshot.
    fn mark_updated(&mut self, accepted: u64) {
        if accepted > 0 {
            self.ingested_reports += accepted;
            self.epoch += 1;
            self.cached = None;
        }
    }

    /// Folds one shuffled batch into the central model, one report at a time
    /// in batch order, memoizing the code→vector lookup per batch.
    ///
    /// Reports whose code or action fall outside the configured ranges are
    /// counted as rejected rather than aborting the whole batch: in a
    /// deployment the server cannot assume every client is well behaved.
    /// Returns the number of accepted reports.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`]/[`CoreError::Linalg`] only for internal
    /// model failures, not for malformed reports.
    pub fn ingest_batch(&mut self, batch: &ShuffledBatch) -> Result<u64, CoreError> {
        let mut cache = CodeVectorCache::default();
        let mut updates = Vec::with_capacity(batch.reports().len());
        for report in batch.reports() {
            if report.code() >= self.encoder.num_codes() || report.action() >= self.num_actions {
                continue;
            }
            let context = cache
                .get(self.representation, self.encoder.as_ref(), report.code())?
                .clone();
            updates.push(
                CoalescedUpdate::new(context, Action::new(report.action()), 1, report.reward())
                    .map_err(CoreError::Bandit)?,
            );
        }
        let accepted = updates.len() as u64;
        self.service.ingest(updates)?;
        self.mark_updated(accepted);
        Ok(accepted)
    }

    /// Folds one shuffled batch into the central model as coalesced
    /// sufficient statistics: the batch is grouped by `(code, action)` and
    /// each group becomes a single weighted update, so a batch with heavy
    /// code reuse costs a fraction of the per-report path.
    ///
    /// Accepts and rejects exactly the same reports as
    /// [`CentralServer::ingest_batch`] and produces the same model up to
    /// floating-point rounding. Returns the number of accepted reports.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`]/[`CoreError::Linalg`] only for internal
    /// model failures, not for malformed reports.
    pub fn ingest_batch_coalesced(&mut self, batch: &ShuffledBatch) -> Result<u64, CoreError> {
        let coalesced = self.coalescer.coalesce(
            self.representation,
            self.encoder.as_ref(),
            self.num_actions,
            batch,
        )?;
        self.service.ingest(coalesced.updates)?;
        self.mark_updated(coalesced.accepted);
        Ok(coalesced.accepted)
    }

    /// Folds a raw (non-encoded) interaction into the central model — the
    /// warm **non-private** baseline where agents share their original
    /// context vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the representation is not
    /// [`CodeRepresentation::Centroid`] and policy errors for malformed input.
    pub fn ingest_raw(
        &mut self,
        context: &Vector,
        action: Action,
        reward: f64,
    ) -> Result<(), CoreError> {
        if self.representation != CodeRepresentation::Centroid {
            return Err(CoreError::InvalidConfig {
                parameter: "code_representation",
                message: "raw ingestion requires the centroid representation".to_owned(),
            });
        }
        if context.len() != self.model_dimension {
            return Err(CoreError::Bandit(
                p2b_bandit::BanditError::ContextDimensionMismatch {
                    expected: self.model_dimension,
                    found: context.len(),
                },
            ));
        }
        if action.index() >= self.num_actions {
            return Err(CoreError::Bandit(p2b_bandit::BanditError::InvalidAction {
                action: action.index(),
                num_actions: self.num_actions,
            }));
        }
        let update =
            CoalescedUpdate::new(context.clone(), action, 1, reward).map_err(CoreError::Bandit)?;
        self.service.ingest(vec![update])?;
        self.mark_updated(1);
        Ok(())
    }
}

impl fmt::Debug for CentralServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralServer")
            .field("service", &self.service)
            .field("representation", &self.representation)
            .field("ingested_reports", &self.ingested_reports)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_bandit::ContextualPolicy;
    use p2b_encoding::{ContextCode, EncoderStats, EncodingError, KMeansConfig, KMeansEncoder};
    use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn encoder(seed: u64) -> Arc<dyn Encoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..60)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap())
    }

    fn batch(reports: Vec<(usize, usize, f64)>, threshold: usize, seed: u64) -> ShuffledBatch {
        let shuffler = Shuffler::new(ShufflerConfig::new(threshold)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = reports
            .into_iter()
            .enumerate()
            .map(|(i, (code, action, reward))| {
                RawReport::new(
                    format!("a{i}"),
                    EncodedReport::new(code, action, reward).unwrap(),
                )
            })
            .collect();
        shuffler.process(raw, &mut rng)
    }

    #[test]
    fn rejects_mismatched_encoder() {
        let cfg = P2bConfig::new(9, 3);
        assert!(matches!(
            CentralServer::new(&cfg, encoder(0)),
            Err(CoreError::EncoderMismatch { .. })
        ));
    }

    #[test]
    fn ingesting_batches_updates_the_model() {
        let cfg = P2bConfig::new(4, 3);
        let mut server = CentralServer::new(&cfg, encoder(1)).unwrap();
        let b = batch(vec![(0, 1, 1.0), (0, 1, 1.0), (1, 2, 0.0)], 1, 2);
        let accepted = server.ingest_batch(&b).unwrap();
        assert_eq!(accepted, 3);
        assert_eq!(server.ingested_reports(), 3);
        assert_eq!(server.model().unwrap().observations(), 3);
    }

    #[test]
    fn malformed_reports_are_skipped_not_fatal() {
        let cfg = P2bConfig::new(4, 3);
        let mut server = CentralServer::new(&cfg, encoder(2)).unwrap();
        // Code 99 does not exist, action 7 is out of range; both are skipped.
        let b = batch(vec![(99, 0, 1.0), (0, 7, 1.0), (0, 0, 1.0)], 1, 3);
        let accepted = server.ingest_batch(&b).unwrap();
        assert_eq!(accepted, 1);
        assert_eq!(server.model().unwrap().observations(), 1);

        // The coalesced path applies the same acceptance rule.
        let b = batch(vec![(99, 0, 1.0), (0, 7, 1.0), (0, 0, 1.0)], 1, 3);
        assert_eq!(server.ingest_batch_coalesced(&b).unwrap(), 1);
        assert_eq!(server.ingested_reports(), 2);
    }

    #[test]
    fn warm_snapshot_reflects_ingested_knowledge() {
        let cfg = P2bConfig::new(4, 2);
        let enc = encoder(3);
        let mut server = CentralServer::new(&cfg, Arc::clone(&enc)).unwrap();
        // Every report says action 1 is rewarding for code 0.
        let reports = (0..50).map(|_| (0usize, 1usize, 1.0)).collect::<Vec<_>>();
        server.ingest_batch(&batch(reports, 1, 4)).unwrap();

        let snapshot = server.snapshot().unwrap();
        let ctx = enc.representative(ContextCode::new(0)).unwrap();
        let scores = snapshot.model().scores(&ctx).unwrap();
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn snapshots_are_shared_within_an_epoch_and_replaced_across_epochs() {
        let cfg = P2bConfig::new(4, 2);
        let mut server = CentralServer::new(&cfg, encoder(6)).unwrap();
        assert_eq!(server.epoch(), 0);

        let first = server.snapshot().unwrap();
        let again = server.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "within an epoch the snapshot must be one shared allocation"
        );
        assert_eq!(first.epoch(), 0);

        server
            .ingest_batch(&batch(vec![(0, 0, 1.0), (1, 1, 0.5)], 1, 7))
            .unwrap();
        assert_eq!(server.epoch(), 1);
        let bumped = server.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&first, &bumped));
        assert_eq!(bumped.epoch(), 1);
        assert_eq!(bumped.model().observations(), 2);

        // A batch folding nothing keeps both the epoch and the snapshot.
        server
            .ingest_batch(&batch(vec![(99, 0, 1.0)], 1, 8))
            .unwrap();
        assert_eq!(server.epoch(), 1);
        assert!(Arc::ptr_eq(&bumped, &server.snapshot().unwrap()));
    }

    #[test]
    fn coalesced_and_sequential_ingestion_agree() {
        let reports: Vec<(usize, usize, f64)> = (0..60)
            .map(|i| (i % 3, i % 2, f64::from(u8::from(i % 4 == 0))))
            .collect();
        let cfg = P2bConfig::new(4, 2);
        let mut sequential = CentralServer::new(&cfg, encoder(5)).unwrap();
        let mut coalesced =
            CentralServer::new(&cfg.clone().with_ingest_shards(2), encoder(5)).unwrap();
        let b = batch(reports, 1, 9);
        let a1 = sequential.ingest_batch(&b).unwrap();
        let a2 = coalesced.ingest_batch_coalesced(&b).unwrap();
        assert_eq!(a1, a2);
        let ms = sequential.model().unwrap();
        let mc = coalesced.model().unwrap();
        assert_eq!(ms.observations(), mc.observations());
        for action in 0..2 {
            let action = Action::new(action);
            assert!(
                ms.design(action)
                    .unwrap()
                    .max_abs_diff(mc.design(action).unwrap())
                    .unwrap()
                    < 1e-9
            );
            let ts = ms.theta(action).unwrap();
            let tc = mc.theta(action).unwrap();
            for i in 0..4 {
                assert!((ts[i] - tc[i]).abs() < 1e-9);
            }
        }
    }

    /// Encoder wrapper counting `representative` calls, to pin the per-batch
    /// memoization of the code→vector lookup.
    #[derive(Debug)]
    struct CountingEncoder {
        inner: Arc<dyn Encoder>,
        representative_calls: AtomicUsize,
    }

    impl Encoder for CountingEncoder {
        fn num_codes(&self) -> usize {
            self.inner.num_codes()
        }
        fn context_dimension(&self) -> usize {
            self.inner.context_dimension()
        }
        fn encode(&self, context: &Vector) -> Result<ContextCode, EncodingError> {
            self.inner.encode(context)
        }
        fn representative(&self, code: ContextCode) -> Result<Vector, EncodingError> {
            self.representative_calls.fetch_add(1, Ordering::Relaxed);
            self.inner.representative(code)
        }
        fn stats(&self) -> &EncoderStats {
            self.inner.stats()
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn sequential_ingestion_memoizes_repeated_codes() {
        let counting = Arc::new(CountingEncoder {
            inner: encoder(4),
            representative_calls: AtomicUsize::new(0),
        });
        let cfg = P2bConfig::new(4, 3);
        let mut server =
            CentralServer::new(&cfg, Arc::clone(&counting) as Arc<dyn Encoder>).unwrap();
        // 30 reports over exactly 2 distinct codes.
        let reports: Vec<(usize, usize, f64)> = (0..30).map(|i| (i % 2, i % 3, 1.0)).collect();
        let accepted = server.ingest_batch(&batch(reports, 1, 10)).unwrap();
        assert_eq!(accepted, 30);
        assert_eq!(
            counting.representative_calls.load(Ordering::Relaxed),
            2,
            "the context vector must be computed once per distinct code, not per report"
        );
    }

    #[test]
    fn raw_ingestion_requires_centroid_representation() {
        let enc = encoder(4);
        let centroid_cfg = P2bConfig::new(4, 2);
        let mut server = CentralServer::new(&centroid_cfg, Arc::clone(&enc)).unwrap();
        let ctx = Vector::filled(4, 0.25);
        assert!(server.ingest_raw(&ctx, Action::new(0), 1.0).is_ok());
        // Validation happens before dispatch: bad dimension, action, reward.
        assert!(server
            .ingest_raw(&Vector::zeros(7), Action::new(0), 1.0)
            .is_err());
        assert!(server.ingest_raw(&ctx, Action::new(9), 1.0).is_err());
        assert!(server.ingest_raw(&ctx, Action::new(0), 1.5).is_err());
        assert_eq!(server.ingested_reports(), 1);

        let onehot_cfg = P2bConfig::new(4, 2).with_code_representation(CodeRepresentation::OneHot);
        let mut server = CentralServer::new(&onehot_cfg, enc).unwrap();
        assert!(server.ingest_raw(&ctx, Action::new(0), 1.0).is_err());
    }

    #[test]
    fn onehot_representation_sizes_the_model_by_code_count() {
        let enc = encoder(5);
        let cfg = P2bConfig::new(4, 2).with_code_representation(CodeRepresentation::OneHot);
        let mut server = CentralServer::new(&cfg, enc).unwrap();
        assert_eq!(server.model().unwrap().context_dimension(), 4); // k = 4 codes
        let cfg = P2bConfig::new(4, 2);
        let mut server = CentralServer::new(&cfg, encoder(5)).unwrap();
        assert_eq!(server.model().unwrap().context_dimension(), 4); // d = 4
    }

    #[test]
    fn ingest_shards_follow_the_configuration() {
        let cfg = P2bConfig::new(4, 3).with_ingest_shards(3);
        let server = CentralServer::new(&cfg, encoder(1)).unwrap();
        assert_eq!(server.ingest_shards(), 3);
    }
}
