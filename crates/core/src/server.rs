//! The central model server.

use crate::{CodeRepresentation, CoreError, P2bConfig};
use p2b_bandit::{Action, ContextualPolicy, LinUcb};
use p2b_encoding::{ContextCode, Encoder};
use p2b_linalg::Vector;
use p2b_shuffler::ShuffledBatch;
use std::sync::Arc;

/// The analyzer/server of the ESA pipeline: it receives anonymized,
/// shuffled, thresholded tuples `(y, a, r)` and folds them into a central
/// LinUCB model that local agents use as their warm start.
///
/// For the non-private baseline (agents sharing raw contexts) the server also
/// accepts raw tuples through [`CentralServer::ingest_raw`]; that path is
/// only valid when the code representation is
/// [`CodeRepresentation::Centroid`], because otherwise the central model's
/// context space is the code space and raw contexts have the wrong dimension.
#[derive(Debug, Clone)]
pub struct CentralServer {
    model: LinUcb,
    encoder: Arc<dyn Encoder>,
    representation: CodeRepresentation,
    ingested_reports: u64,
}

impl CentralServer {
    /// Creates an empty central server.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EncoderMismatch`] if the encoder's context
    /// dimension does not match the configuration, or configuration errors.
    pub fn new(config: &P2bConfig, encoder: Arc<dyn Encoder>) -> Result<Self, CoreError> {
        config.validate()?;
        if encoder.context_dimension() != config.context_dimension {
            return Err(CoreError::EncoderMismatch {
                expected: config.context_dimension,
                found: encoder.context_dimension(),
            });
        }
        let model = LinUcb::new(config.central_linucb(encoder.as_ref()))?;
        Ok(Self {
            model,
            encoder,
            representation: config.code_representation,
            ingested_reports: 0,
        })
    }

    /// The number of report tuples folded into the model so far.
    #[must_use]
    pub fn ingested_reports(&self) -> u64 {
        self.ingested_reports
    }

    /// Borrows the central model.
    #[must_use]
    pub fn model(&self) -> &LinUcb {
        &self.model
    }

    /// Clones the central model for distribution to a local agent.
    #[must_use]
    pub fn snapshot(&self) -> LinUcb {
        self.model.clone()
    }

    /// Folds one shuffled batch into the central model.
    ///
    /// Reports whose code or action fall outside the configured ranges are
    /// counted as rejected rather than aborting the whole batch: in a
    /// deployment the server cannot assume every client is well behaved.
    /// Returns the number of accepted reports.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Bandit`]/[`CoreError::Linalg`] only for internal
    /// model failures, not for malformed reports.
    pub fn ingest_batch(&mut self, batch: &ShuffledBatch) -> Result<u64, CoreError> {
        let mut accepted = 0u64;
        for report in batch.reports() {
            if report.code() >= self.encoder.num_codes()
                || report.action() >= self.model.num_actions()
            {
                continue;
            }
            let context = self
                .representation
                .vector(self.encoder.as_ref(), ContextCode::new(report.code()))?;
            self.model
                .update(&context, Action::new(report.action()), report.reward())?;
            accepted += 1;
        }
        self.ingested_reports += accepted;
        Ok(accepted)
    }

    /// Folds a raw (non-encoded) interaction into the central model — the
    /// warm **non-private** baseline where agents share their original
    /// context vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the representation is not
    /// [`CodeRepresentation::Centroid`] and policy errors for malformed input.
    pub fn ingest_raw(
        &mut self,
        context: &Vector,
        action: Action,
        reward: f64,
    ) -> Result<(), CoreError> {
        if self.representation != CodeRepresentation::Centroid {
            return Err(CoreError::InvalidConfig {
                parameter: "code_representation",
                message: "raw ingestion requires the centroid representation".to_owned(),
            });
        }
        self.model.update(context, action, reward)?;
        self.ingested_reports += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_encoding::{KMeansConfig, KMeansEncoder};
    use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(seed: u64) -> Arc<dyn Encoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vector> = (0..60)
            .map(|i| {
                let mut v = vec![0.1; 4];
                v[i % 4] = 1.0;
                Vector::from(v).normalized_l1().unwrap()
            })
            .collect();
        Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng).unwrap())
    }

    fn batch(reports: Vec<(usize, usize, f64)>, threshold: usize, seed: u64) -> ShuffledBatch {
        let shuffler = Shuffler::new(ShufflerConfig::new(threshold)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = reports
            .into_iter()
            .enumerate()
            .map(|(i, (code, action, reward))| {
                RawReport::new(
                    format!("a{i}"),
                    EncodedReport::new(code, action, reward).unwrap(),
                )
            })
            .collect();
        shuffler.process(raw, &mut rng)
    }

    #[test]
    fn rejects_mismatched_encoder() {
        let cfg = P2bConfig::new(9, 3);
        assert!(matches!(
            CentralServer::new(&cfg, encoder(0)),
            Err(CoreError::EncoderMismatch { .. })
        ));
    }

    #[test]
    fn ingesting_batches_updates_the_model() {
        let cfg = P2bConfig::new(4, 3);
        let mut server = CentralServer::new(&cfg, encoder(1)).unwrap();
        let b = batch(vec![(0, 1, 1.0), (0, 1, 1.0), (1, 2, 0.0)], 1, 2);
        let accepted = server.ingest_batch(&b).unwrap();
        assert_eq!(accepted, 3);
        assert_eq!(server.ingested_reports(), 3);
        assert_eq!(server.model().observations(), 3);
    }

    #[test]
    fn malformed_reports_are_skipped_not_fatal() {
        let cfg = P2bConfig::new(4, 3);
        let mut server = CentralServer::new(&cfg, encoder(2)).unwrap();
        // Code 99 does not exist, action 7 is out of range; both are skipped.
        let b = batch(vec![(99, 0, 1.0), (0, 7, 1.0), (0, 0, 1.0)], 1, 3);
        let accepted = server.ingest_batch(&b).unwrap();
        assert_eq!(accepted, 1);
        assert_eq!(server.model().observations(), 1);
    }

    #[test]
    fn warm_snapshot_reflects_ingested_knowledge() {
        let cfg = P2bConfig::new(4, 2);
        let enc = encoder(3);
        let mut server = CentralServer::new(&cfg, Arc::clone(&enc)).unwrap();
        // Every report says action 1 is rewarding for code 0.
        let reports = (0..50).map(|_| (0usize, 1usize, 1.0)).collect::<Vec<_>>();
        server.ingest_batch(&batch(reports, 1, 4)).unwrap();

        let snapshot = server.snapshot();
        let ctx = enc.representative(ContextCode::new(0)).unwrap();
        let scores = snapshot.scores(&ctx).unwrap();
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn raw_ingestion_requires_centroid_representation() {
        let enc = encoder(4);
        let centroid_cfg = P2bConfig::new(4, 2);
        let mut server = CentralServer::new(&centroid_cfg, Arc::clone(&enc)).unwrap();
        let ctx = Vector::filled(4, 0.25);
        assert!(server.ingest_raw(&ctx, Action::new(0), 1.0).is_ok());

        let onehot_cfg = P2bConfig::new(4, 2).with_code_representation(CodeRepresentation::OneHot);
        let mut server = CentralServer::new(&onehot_cfg, enc).unwrap();
        assert!(server.ingest_raw(&ctx, Action::new(0), 1.0).is_err());
    }

    #[test]
    fn onehot_representation_sizes_the_model_by_code_count() {
        let enc = encoder(5);
        let cfg = P2bConfig::new(4, 2).with_code_representation(CodeRepresentation::OneHot);
        let server = CentralServer::new(&cfg, enc).unwrap();
        assert_eq!(server.model().context_dimension(), 4); // k = 4 codes
        let cfg = P2bConfig::new(4, 2);
        let server = CentralServer::new(&cfg, encoder(5)).unwrap();
        assert_eq!(server.model().context_dimension(), 4); // d = 4
    }
}
