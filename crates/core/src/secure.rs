//! Routing coalesced sufficient statistics through secure aggregation and
//! assembling epoch models from the recombined sums.
//!
//! This is the core-side half of the secure-aggregation regime. The
//! [`p2b_shuffler::SecureAggEngine`] owns the `k` shard workers and the
//! share arithmetic; this module owns the statistics layout and the model
//! lifecycle around it:
//!
//! ```text
//!   CoalescedUpdate (x, a, n, s) ──▶ leaf [n·vec(xxᵀ) | s·x | n]
//!                                          │ fixed-point encode + split
//!                                          ▼
//!                            k aggregator shards (shares only)
//!                                          │ finish() at epoch boundary
//!                                          ▼
//!               recombined i128 sums ──▶ cumulative totals (wrapping Σ)
//!                                          │ decode + λI ridge
//!                                          ▼
//!                    LinUcb::from_sufficient_statistics (published model)
//! ```
//!
//! The leaf layout matches the central-DP curator's
//! (`[vec(x xᵀ) | r·x | 1]`, dimension `d² + d + 1`), weighted by the
//! coalesced group: a group of `n` reports sharing context `x` with reward
//! sum `s` contributes `n·x xᵀ` to the Gram block, `s·x` to the reward
//! block and `n` to the pull counter — exactly the sum of its `n`
//! per-report leaves, in one submission.
//!
//! Determinism: the recombined sums are exact group elements (wrapping
//! `i128` addition), so the assembled model is bit-identical across shard
//! counts, submission interleavings and mask seeds. Epoch totals accumulate
//! with the same wrapping addition, so multi-epoch assembly keeps the
//! guarantee. `xᵢxⱼ` and `xⱼxᵢ` are the same `f64` product and encode to
//! the same fixed-point word, so the decoded Gram block is symmetric
//! without a repair pass.

use crate::CoreError;
use p2b_bandit::{ArmStatistics, CoalescedUpdate, LinUcb, LinUcbConfig};
use p2b_linalg::{Matrix, Vector};
use p2b_privacy::decode_fixed;
use p2b_shuffler::{SecureAggEngine, SecureAggHandle};

/// A model service ingesting coalesced updates through `k`-shard secure
/// aggregation and publishing epoch models from the recombined sums.
///
/// The service never sees an individual contribution in the clear once it
/// has been split: each [`CoalescedUpdate`] is converted to a weighted
/// statistics leaf and handed to the share engine, and only the recombined
/// per-arm sums — equal to what a single trusted accumulator would have
/// computed — come back at [`SecureIngestService::assemble`].
///
/// # Examples
///
/// ```
/// use p2b_bandit::{Action, CoalescedUpdate, ContextualPolicy, LinUcbConfig};
/// use p2b_core::SecureIngestService;
/// use p2b_linalg::Vector;
///
/// # fn main() -> Result<(), p2b_core::CoreError> {
/// let config = LinUcbConfig::new(2, 2);
/// let mut service = SecureIngestService::new(config, 2, 7)?;
/// let update = CoalescedUpdate::new(
///     Vector::from(vec![0.6, 0.8]),
///     Action::new(0),
///     3,
///     2.0,
/// )?;
/// service.ingest(&update)?;
/// let model = service.assemble()?;
/// assert_eq!(model.observations(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureIngestService {
    config: LinUcbConfig,
    engine: SecureAggEngine,
    handle: SecureAggHandle,
    /// Cumulative recombined fixed-point sums, `num_actions × (d² + d + 1)`,
    /// carried across epochs with wrapping addition (exact).
    totals: Vec<i128>,
    seed: u64,
    epoch: u64,
    ingested: u64,
}

impl SecureIngestService {
    /// Creates the service and starts the first epoch's shard workers.
    ///
    /// `shards` is the aggregator count `k`; the assembled model does not
    /// depend on it (see the module docs), only the trust split does.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shuffler`] when `shards` is zero or the engine
    /// configuration is otherwise degenerate.
    pub fn new(config: LinUcbConfig, shards: usize, seed: u64) -> Result<Self, CoreError> {
        let d = config.context_dimension;
        let leaf_dimension = d * d + d + 1;
        let engine = SecureAggEngine::builder(config.num_actions, leaf_dimension)
            .shards(shards)
            .build()?;
        let handle = engine.spawn(epoch_seed(seed, 0));
        Ok(Self {
            config,
            totals: vec![0i128; config.num_actions * leaf_dimension],
            engine,
            handle,
            seed,
            epoch: 0,
            ingested: 0,
        })
    }

    /// The number of aggregator shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// The per-arm statistics-leaf dimension, `d² + d + 1`.
    #[must_use]
    pub fn leaf_dimension(&self) -> usize {
        self.engine.dimension()
    }

    /// The number of completed assembly epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total coalesced updates ingested since construction.
    #[must_use]
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Splits one coalesced update into shares and routes them to the shard
    /// workers.
    ///
    /// The context is clipped to the unit L2 ball and the reward sum to
    /// `[0, n]`, mirroring the central-DP curator's leaf normalization, so
    /// every leaf coordinate is bounded by the group count `n` and stays
    /// inside the fixed-point dynamic range for any
    /// `n ≤` [`p2b_privacy::FIXED_POINT_MAX_ABS`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EncoderMismatch`] when the update's context
    /// dimension differs from the configured one, and
    /// [`CoreError::Shuffler`] when a leaf coordinate falls outside the
    /// fixed-point range or the engine has shut down.
    pub fn ingest(&mut self, update: &CoalescedUpdate) -> Result<(), CoreError> {
        let d = self.config.context_dimension;
        let context = update.context();
        if context.len() != d {
            return Err(CoreError::EncoderMismatch {
                expected: d,
                found: context.len(),
            });
        }
        let norm = context.norm2();
        let scale = if norm > 1.0 { 1.0 / norm } else { 1.0 };
        let count = update.count() as f64;
        let reward_sum = update.reward_sum().clamp(0.0, count);
        let mut leaf = vec![0.0f64; d * d + d + 1];
        for i in 0..d {
            let xi = context[i] * scale;
            for j in 0..d {
                leaf[i * d + j] = count * (xi * (context[j] * scale));
            }
            leaf[d * d + i] = reward_sum * xi;
        }
        leaf[d * d + d] = count;
        self.handle.submit(update.action().index(), &leaf)?;
        self.ingested += 1;
        Ok(())
    }

    /// Ingests a batch of coalesced updates in order and returns how many
    /// were routed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SecureIngestService::ingest`] failure.
    pub fn ingest_batch(&mut self, updates: &[CoalescedUpdate]) -> Result<u64, CoreError> {
        for update in updates {
            self.ingest(update)?;
        }
        Ok(updates.len() as u64)
    }

    /// Closes the current epoch: joins the shard workers, folds their
    /// recombined sums into the cumulative totals, assembles a servable
    /// model and starts the next epoch's workers.
    ///
    /// The published model is rebuilt from the *cumulative* totals, so each
    /// epoch's model reflects everything ingested since construction — the
    /// snapshot semantics of the plaintext model service.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shuffler`] if a shard worker terminated
    /// abnormally and [`CoreError::Bandit`] if the decoded statistics
    /// cannot form a positive-definite design even after the ridge repair.
    pub fn assemble(&mut self) -> Result<LinUcb, CoreError> {
        self.epoch += 1;
        let next = self.engine.spawn(epoch_seed(self.seed, self.epoch));
        let handle = std::mem::replace(&mut self.handle, next);
        let output = handle.finish()?;
        let leaf_dimension = self.leaf_dimension();
        for arm in 0..self.config.num_actions {
            let base = arm * leaf_dimension;
            let sums = output.arm_sums(arm)?;
            for (total, &sum) in self.totals[base..base + leaf_dimension]
                .iter_mut()
                .zip(sums)
            {
                *total = total.wrapping_add(sum);
            }
        }
        self.model_from_totals()
    }

    /// FNV-1a digest over the cumulative recombined totals (little-endian
    /// bytes, arms in order). Byte-identical across shard counts and
    /// reruns; the bench stage asserts on it in-process and CI byte-diffs
    /// the summaries it lands in.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for value in &self.totals {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }

    /// Rebuilds the servable model from the cumulative totals: decode,
    /// ridge-shift the Gram block and fold through
    /// [`LinUcb::from_sufficient_statistics`].
    fn model_from_totals(&self) -> Result<LinUcb, CoreError> {
        let d = self.config.context_dimension;
        let leaf_dimension = self.leaf_dimension();
        let mut statistics = Vec::with_capacity(self.config.num_actions);
        for arm in 0..self.config.num_actions {
            let base = arm * leaf_dimension;
            let decoded: Vec<f64> = self.totals[base..base + leaf_dimension]
                .iter()
                .copied()
                .map(decode_fixed)
                .collect();
            let mut gram = Matrix::zeros(d, d);
            for i in 0..d {
                for j in 0..d {
                    gram.set(i, j, decoded[i * d + j]);
                }
            }
            let reward_vector = Vector::from(decoded[d * d..d * d + d].to_vec());
            let pulls = decoded[d * d + d].round().max(0.0) as u64;
            // The decoded Gram is PSD up to ~2⁻⁴⁸ quantization, so λI
            // almost always suffices; the escalating shift mirrors the
            // central curator's repair and terminates quickly if rounding
            // ever tips an eigenvalue negative.
            let mut boost = 0.0f64;
            let statistics_for_arm = loop {
                let mut design = gram.clone();
                for i in 0..d {
                    design.set(i, i, design.get(i, i) + self.config.regularizer + boost);
                }
                match p2b_linalg::RankOneInverse::from_matrix(&design) {
                    Ok(_) => {
                        break ArmStatistics {
                            design,
                            reward_vector: reward_vector.clone(),
                            pulls,
                        }
                    }
                    Err(e) if boost < 1e12 => {
                        let _ = e;
                        boost = if boost == 0.0 { 1.0 } else { boost * 2.0 };
                    }
                    Err(e) => return Err(CoreError::Linalg(e)),
                }
            };
            statistics.push(statistics_for_arm);
        }
        Ok(LinUcb::from_sufficient_statistics(
            self.config,
            &statistics,
        )?)
    }
}

/// Derives the mask seed for one epoch's share session. The recombined
/// sums are seed-independent (masks cancel exactly), so the derivation
/// only has to keep distinct epochs on distinct mask lanes.
fn epoch_seed(seed: u64, epoch: u64) -> u64 {
    seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2b_bandit::{Action, ContextualPolicy};

    fn update(context: Vec<f64>, action: usize, count: u64, reward_sum: f64) -> CoalescedUpdate {
        CoalescedUpdate::new(Vector::from(context), Action::new(action), count, reward_sum)
            .unwrap()
    }

    fn traffic() -> Vec<CoalescedUpdate> {
        vec![
            update(vec![0.6, 0.8, 0.0], 0, 3, 2.0),
            update(vec![0.0, 1.0, 0.0], 1, 5, 4.5),
            update(vec![0.3, 0.3, 0.9], 0, 2, 0.5),
            update(vec![2.0, 0.0, 0.0], 1, 7, 6.0), // clipped to the unit ball
        ]
    }

    #[test]
    fn assembled_model_is_bit_identical_across_shard_counts() {
        let run = |shards: usize, seed: u64| {
            let mut service =
                SecureIngestService::new(LinUcbConfig::new(3, 2), shards, seed).unwrap();
            service.ingest_batch(&traffic()).unwrap();
            let model = service.assemble().unwrap();
            (service.digest(), model)
        };
        let (reference_digest, reference_model) = run(1, 11);
        for shards in [2usize, 4] {
            // Different mask seeds on purpose: recombination cancels them.
            let (digest, model) = run(shards, 997 * shards as u64);
            assert_eq!(digest, reference_digest, "shards={shards}");
            assert_eq!(model.observations(), reference_model.observations());
            let probe = Vector::from(vec![0.5, 0.5, 0.5]);
            let a = model.scores(&probe).unwrap();
            let b = reference_model.scores(&probe).unwrap();
            for arm in 0..2 {
                assert_eq!(a[arm].to_bits(), b[arm].to_bits(), "arm {arm} score");
            }
        }
    }

    #[test]
    fn assembled_model_matches_the_plaintext_fold_up_to_quantization() {
        let mut service = SecureIngestService::new(LinUcbConfig::new(2, 2), 2, 3).unwrap();
        let updates = vec![
            update(vec![0.6, 0.8], 0, 4, 3.0),
            update(vec![1.0, 0.0], 1, 2, 1.0),
        ];
        service.ingest_batch(&updates).unwrap();
        let model = service.assemble().unwrap();
        // Plaintext reference: the same weighted leaves folded in f64.
        let config = LinUcbConfig::new(2, 2);
        let mut statistics = Vec::new();
        for arm in 0..2 {
            let mut design = Matrix::zeros(2, 2);
            let mut reward = vec![0.0f64; 2];
            let mut pulls = 0u64;
            for u in updates.iter().filter(|u| u.action().index() == arm) {
                let n = u.count() as f64;
                for i in 0..2 {
                    for j in 0..2 {
                        design.set(i, j, design.get(i, j) + n * u.context()[i] * u.context()[j]);
                    }
                    reward[i] += u.reward_sum() * u.context()[i];
                }
                pulls += u.count();
            }
            for i in 0..2 {
                design.set(i, i, design.get(i, i) + config.regularizer);
            }
            statistics.push(ArmStatistics {
                design,
                reward_vector: Vector::from(reward),
                pulls,
            });
        }
        let reference = LinUcb::from_sufficient_statistics(config, &statistics).unwrap();
        assert_eq!(model.observations(), reference.observations());
        let probe = Vector::from(vec![0.3, 0.7]);
        let a = model.scores(&probe).unwrap();
        let b = reference.scores(&probe).unwrap();
        for arm in 0..2 {
            assert!(
                (a[arm] - b[arm]).abs() < 1e-9,
                "arm {arm}: secure {} vs plaintext {}",
                a[arm],
                b[arm]
            );
        }
    }

    #[test]
    fn totals_accumulate_across_epochs() {
        let mut service = SecureIngestService::new(LinUcbConfig::new(2, 2), 3, 5).unwrap();
        service.ingest(&update(vec![0.5, 0.5], 0, 2, 1.0)).unwrap();
        let first = service.assemble().unwrap();
        assert_eq!(first.observations(), 2);
        assert_eq!(service.epoch(), 1);
        service.ingest(&update(vec![0.5, 0.5], 1, 3, 2.0)).unwrap();
        let second = service.assemble().unwrap();
        // The second epoch's model reflects both epochs' ingests.
        assert_eq!(second.observations(), 5);
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.ingested(), 2);
    }

    #[test]
    fn context_dimension_mismatch_is_a_typed_error() {
        let mut service = SecureIngestService::new(LinUcbConfig::new(3, 2), 1, 1).unwrap();
        let err = service
            .ingest(&update(vec![1.0, 0.0], 0, 1, 0.5))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::EncoderMismatch {
                expected: 3,
                found: 2
            }
        ));
    }

    #[test]
    fn oversized_group_counts_error_rather_than_wrap() {
        let mut service = SecureIngestService::new(LinUcbConfig::new(2, 1), 1, 1).unwrap();
        let oversized = update(vec![1.0, 0.0], 0, 1 << 40, 0.0);
        assert!(matches!(
            service.ingest(&oversized).unwrap_err(),
            CoreError::Shuffler(_)
        ));
        // A rejected update is not counted as ingested.
        assert_eq!(service.ingested(), 0);
    }

    #[test]
    fn zero_shards_is_rejected_at_construction() {
        assert!(matches!(
            SecureIngestService::new(LinUcbConfig::new(2, 2), 0, 1).unwrap_err(),
            CoreError::Shuffler(_)
        ));
    }

    #[test]
    fn empty_epoch_publishes_the_prior_model() {
        let mut service = SecureIngestService::new(LinUcbConfig::new(2, 2), 2, 9).unwrap();
        service.ingest(&update(vec![0.8, 0.6], 0, 2, 1.5)).unwrap();
        let first = service.assemble().unwrap();
        let digest_after_first = service.digest();
        let second = service.assemble().unwrap();
        assert_eq!(service.digest(), digest_after_first);
        assert_eq!(first.observations(), second.observations());
    }
}
