//! Randomized data reporting (Section 3.1 of the paper).

use p2b_bandit::Action;
use p2b_encoding::ContextCode;
use p2b_privacy::Participation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An interaction the agent has decided to share, before it is wrapped into a
/// wire-format [`p2b_shuffler::RawReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingReport {
    /// Encoded context code `y`.
    pub code: usize,
    /// Proposed action `a`.
    pub action: usize,
    /// Observed reward `r`.
    pub reward: f64,
}

/// The randomized participation mechanism.
///
/// After every `T` local interactions the reporter flips a `p`-biased coin;
/// on success it emits the most recent interaction as a [`PendingReport`].
/// Randomizing both *whether* and *when* data is shared is what provides the
/// pre-sampling the privacy analysis relies on, and it additionally blurs the
/// timing side channel of the reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomizedReporter {
    participation: Participation,
    interval: u64,
    interactions_seen: u64,
    opportunities: u64,
    reports_emitted: u64,
}

impl RandomizedReporter {
    /// Creates a reporter that considers sharing after every `interval`
    /// interactions and participates with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`; the [`crate::P2bConfig`] validation
    /// guarantees this never happens when constructed through the system.
    #[must_use]
    pub fn new(participation: Participation, interval: u64) -> Self {
        assert!(interval > 0, "reporting interval must be at least 1");
        Self {
            participation,
            interval,
            interactions_seen: 0,
            opportunities: 0,
            reports_emitted: 0,
        }
    }

    /// The participation probability `p`.
    #[must_use]
    pub fn participation(&self) -> Participation {
        self.participation
    }

    /// The reporting interval `T`.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of interactions observed so far.
    #[must_use]
    pub fn interactions_seen(&self) -> u64 {
        self.interactions_seen
    }

    /// Number of reporting opportunities so far (one per `T` interactions).
    #[must_use]
    pub fn opportunities(&self) -> u64 {
        self.opportunities
    }

    /// Number of reports actually emitted.
    #[must_use]
    pub fn reports_emitted(&self) -> u64 {
        self.reports_emitted
    }

    /// Records one local interaction; every `T` interactions this becomes a
    /// reporting opportunity and, with probability `p`, the interaction is
    /// returned for sharing.
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        code: ContextCode,
        action: Action,
        reward: f64,
        rng: &mut R,
    ) -> Option<PendingReport> {
        self.interactions_seen += 1;
        if self.interactions_seen % self.interval != 0 {
            return None;
        }
        self.opportunities += 1;
        if rng.gen::<f64>() >= self.participation.value() {
            return None;
        }
        self.reports_emitted += 1;
        Some(PendingReport {
            code: code.value(),
            action: action.index(),
            reward,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reporter(p: f64, interval: u64) -> RandomizedReporter {
        RandomizedReporter::new(Participation::new(p).unwrap(), interval)
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = RandomizedReporter::new(Participation::new(0.5).unwrap(), 0);
    }

    #[test]
    fn no_report_before_the_interval_elapses() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = reporter(0.999, 5);
        for i in 1..5 {
            assert!(
                r.observe(ContextCode::new(0), Action::new(0), 1.0, &mut rng)
                    .is_none(),
                "reported early at interaction {i}"
            );
        }
        assert_eq!(r.opportunities(), 0);
    }

    #[test]
    fn reports_carry_the_latest_interaction() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = reporter(0.999, 2);
        assert!(r
            .observe(ContextCode::new(3), Action::new(1), 0.25, &mut rng)
            .is_none());
        let report = r
            .observe(ContextCode::new(7), Action::new(4), 0.75, &mut rng)
            .expect("participation is nearly certain");
        assert_eq!(report.code, 7);
        assert_eq!(report.action, 4);
        assert!((report.reward - 0.75).abs() < 1e-12);
        assert_eq!(r.reports_emitted(), 1);
    }

    #[test]
    fn participation_rate_is_respected_empirically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = reporter(0.5, 1);
        let mut emitted = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            if r.observe(ContextCode::new(0), Action::new(0), 1.0, &mut rng)
                .is_some()
            {
                emitted += 1;
            }
        }
        let rate = emitted as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "observed rate {rate}");
        assert_eq!(r.opportunities(), trials as u64);
        assert_eq!(r.reports_emitted(), emitted as u64);
    }

    #[test]
    fn low_participation_rarely_reports() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = reporter(0.01, 1);
        let mut emitted = 0usize;
        for _ in 0..1000 {
            if r.observe(ContextCode::new(0), Action::new(0), 1.0, &mut rng)
                .is_some()
            {
                emitted += 1;
            }
        }
        assert!(emitted < 50, "emitted {emitted} reports at p = 0.01");
    }

    #[test]
    fn interval_counts_opportunities_not_interactions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = reporter(0.5, 10);
        for _ in 0..100 {
            let _ = r.observe(ContextCode::new(0), Action::new(0), 1.0, &mut rng);
        }
        assert_eq!(r.interactions_seen(), 100);
        assert_eq!(r.opportunities(), 10);
        assert!(r.reports_emitted() <= 10);
    }
}
