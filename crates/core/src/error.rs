//! Error type for the P2B core crate.

use std::error::Error;
use std::fmt;

/// Error returned by the P2B system, agents and server.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// The encoder's context dimension does not match the system configuration.
    EncoderMismatch {
        /// Dimension the configuration expects.
        expected: usize,
        /// Dimension the encoder produces/consumes.
        found: usize,
    },
    /// An underlying bandit-policy operation failed.
    Bandit(p2b_bandit::BanditError),
    /// An underlying encoding operation failed.
    Encoding(p2b_encoding::EncodingError),
    /// An underlying privacy computation failed.
    Privacy(p2b_privacy::PrivacyError),
    /// An underlying shuffler operation failed.
    Shuffler(p2b_shuffler::ShufflerError),
    /// An underlying linear-algebra operation failed.
    Linalg(p2b_linalg::LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            CoreError::EncoderMismatch { expected, found } => write!(
                f,
                "encoder dimension mismatch: configuration expects {expected}, encoder handles {found}"
            ),
            CoreError::Bandit(e) => write!(f, "bandit failure: {e}"),
            CoreError::Encoding(e) => write!(f, "encoding failure: {e}"),
            CoreError::Privacy(e) => write!(f, "privacy failure: {e}"),
            CoreError::Shuffler(e) => write!(f, "shuffler failure: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Bandit(e) => Some(e),
            CoreError::Encoding(e) => Some(e),
            CoreError::Privacy(e) => Some(e),
            CoreError::Shuffler(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<p2b_bandit::BanditError> for CoreError {
    fn from(e: p2b_bandit::BanditError) -> Self {
        CoreError::Bandit(e)
    }
}

impl From<p2b_encoding::EncodingError> for CoreError {
    fn from(e: p2b_encoding::EncodingError) -> Self {
        CoreError::Encoding(e)
    }
}

impl From<p2b_privacy::PrivacyError> for CoreError {
    fn from(e: p2b_privacy::PrivacyError) -> Self {
        CoreError::Privacy(e)
    }
}

impl From<p2b_shuffler::ShufflerError> for CoreError {
    fn from(e: p2b_shuffler::ShufflerError) -> Self {
        CoreError::Shuffler(e)
    }
}

impl From<p2b_linalg::LinalgError> for CoreError {
    fn from(e: p2b_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_sources() {
        let e = CoreError::from(p2b_linalg::LinalgError::Empty);
        assert!(Error::source(&e).is_some());
        let e = CoreError::from(p2b_privacy::PrivacyError::InvalidProbability {
            name: "p",
            value: 2.0,
        });
        assert!(e.to_string().contains("privacy"));
        let e = CoreError::from(p2b_shuffler::ShufflerError::PipelineClosed);
        assert!(e.to_string().contains("shuffler"));
    }

    #[test]
    fn display_for_config_errors() {
        let e = CoreError::EncoderMismatch {
            expected: 10,
            found: 4,
        };
        assert!(e.to_string().contains("10"));
        let e = CoreError::InvalidConfig {
            parameter: "num_actions",
            message: "must be at least 1".to_owned(),
        };
        assert!(e.to_string().contains("num_actions"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
