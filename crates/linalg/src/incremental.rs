//! Incrementally maintained matrix inverse via the Sherman–Morrison formula.

use crate::cholesky::{factor_lower, solve_in_place};
use crate::{Cholesky, LinalgError, Matrix, Vector};

/// Caller-owned scratch buffers for the allocation-free update path.
///
/// One `UpdateScratch` serves any number of [`RankOneInverse`] trackers of
/// any dimension (buffers re-size lazily and only grow). Threading it through
/// [`RankOneInverse::update_with`] / [`RankOneInverse::update_weighted_with`]
/// / [`RankOneInverse::update_batch_weighted_with`] makes the whole rank-k
/// ingest fold — the `A⁻¹x` matvec, the outer-product fold, *and* the
/// periodic exact refresh (Cholesky factor + basis solves) — allocation-free
/// after the first call.
///
/// The buffers are pure scratch: their contents between calls are
/// meaningless and never observed, so sharing one scratch across trackers
/// cannot couple their results. Every `_with` path is bit-identical to its
/// internally-buffered counterpart because both run the same kernel.
#[derive(Debug, Clone, Default)]
pub struct UpdateScratch {
    /// `A⁻¹x` lane for the Sherman–Morrison fold (`dim` elements).
    ax: Vec<f64>,
    /// Flat lower-triangular Cholesky factor for the exact refresh
    /// (`dim²` elements; strict upper triangle may hold stale values,
    /// which the solves never read).
    chol: Vec<f64>,
    /// Basis-solve column for the refresh inverse rebuild (`dim` elements).
    col: Vec<f64>,
}

impl UpdateScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the fold lane holds exactly `dim` elements.
    fn ensure_ax(&mut self, dim: usize) {
        if self.ax.len() != dim {
            self.ax.resize(dim, 0.0);
        }
    }

    /// Ensures the refresh buffers match `dim` (factor `dim²`, column `dim`).
    fn ensure_refresh(&mut self, dim: usize) {
        if self.chol.len() != dim * dim {
            self.chol.resize(dim * dim, 0.0);
        }
        if self.col.len() != dim {
            self.col.resize(dim, 0.0);
        }
    }
}

/// Maintains `A⁻¹` for `A = λI + Σ xᵢ xᵢᵀ` under rank-1 updates.
///
/// LinUCB touches its design matrix once per interaction: it needs
/// `A_a⁻¹ b_a` (the ridge-regression point estimate) and `xᵀ A_a⁻¹ x`
/// (the exploration bonus), then performs the update `A_a ← A_a + x xᵀ`.
/// Recomputing the inverse each step costs `O(d³)`; the Sherman–Morrison
/// identity
///
/// ```text
/// (A + x xᵀ)⁻¹ = A⁻¹ − (A⁻¹ x xᵀ A⁻¹) / (1 + xᵀ A⁻¹ x)
/// ```
///
/// brings it down to `O(d²)`, which dominates the simulation budget of the
/// large-population experiments (Figure 4 sweeps millions of steps).
///
/// # Example
///
/// ```
/// use p2b_linalg::{RankOneInverse, Vector};
///
/// # fn main() -> Result<(), p2b_linalg::LinalgError> {
/// let mut inv = RankOneInverse::identity(3, 1.0)?;
/// inv.update(&Vector::from(vec![1.0, 0.0, 1.0]))?;
/// let bonus = inv.quadratic_form(&Vector::from(vec![0.0, 1.0, 0.0]))?;
/// assert!((bonus - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RankOneInverse {
    inverse: Matrix,
    updates: u64,
    regularizer: f64,
    /// Number of rank-1 updates after which the inverse is refreshed from a
    /// fresh Cholesky factorization to bound floating-point drift.
    refresh_interval: u64,
    /// Running design matrix `A`, kept to allow periodic exact refreshes.
    design: Matrix,
    /// Internal scratch so the borrowing (`update` / `update_weighted`)
    /// entry points allocate nothing per call. The `_with` variants use a
    /// caller-owned [`UpdateScratch`] instead and leave this one untouched.
    /// Pure scratch: excluded from equality.
    scratch: UpdateScratch,
}

/// Equality compares the tracked state only (inverse, design, counters);
/// the scratch buffers are transient and intentionally ignored.
impl PartialEq for RankOneInverse {
    fn eq(&self, other: &Self) -> bool {
        self.inverse == other.inverse
            && self.updates == other.updates
            && self.regularizer == other.regularizer
            && self.refresh_interval == other.refresh_interval
            && self.design == other.design
    }
}

/// Applies the Sherman–Morrison correction `M ← M − scale·(ax)(ax)ᵀ/denom`
/// over the flat storage of `inverse`.
///
/// The flat row-major storage *is* the element-major fold layout (the
/// write-side mirror of `ScoreArena`): coordinate `(i, j)` of the inverse
/// lives at lane `i·n + j`, every lane's correction `axᵢ·axⱼ/denom` is
/// independent of every other lane, and the inner loop walks `n` contiguous
/// lanes with a single hoisted `axᵢ` — a pure streaming multiply-subtract
/// chain the compiler can vectorize. The division stays inside the lane
/// expression (not hoisted into a reciprocal) because the historical FP
/// sequence divides per element, and bit-identical inverses are part of the
/// contract.
///
/// The `scale == 1.0` case uses the literal unscaled expression so the plain
/// rank-1 update keeps the exact floating-point sequence it has always had.
fn sherman_morrison_step(inverse: &mut Matrix, ax: &[f64], scale: f64, denom: f64) {
    let n = ax.len();
    let data = inverse.as_mut_slice();
    if scale == 1.0 {
        for (i, row) in data.chunks_exact_mut(n).enumerate() {
            let axi = ax[i];
            for (entry, &axj) in row.iter_mut().zip(ax.iter()) {
                *entry -= axi * axj / denom;
            }
        }
    } else {
        for (i, row) in data.chunks_exact_mut(n).enumerate() {
            let axi = ax[i];
            for (entry, &axj) in row.iter_mut().zip(ax.iter()) {
                *entry -= scale * axi * axj / denom;
            }
        }
    }
}

impl RankOneInverse {
    /// Default number of rank-1 updates between exact refreshes.
    pub const DEFAULT_REFRESH_INTERVAL: u64 = 4096;

    /// Creates the inverse of `λ·I` of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidScalar`] if `regularizer` is not a
    /// strictly positive finite number and [`LinalgError::Empty`] if
    /// `dim == 0`.
    pub fn identity(dim: usize, regularizer: f64) -> Result<Self, LinalgError> {
        if dim == 0 {
            return Err(LinalgError::Empty);
        }
        if !regularizer.is_finite() || regularizer <= 0.0 {
            return Err(LinalgError::InvalidScalar {
                name: "regularizer",
                value: regularizer,
            });
        }
        Ok(Self {
            inverse: Matrix::identity(dim).scaled(1.0 / regularizer),
            updates: 0,
            regularizer,
            refresh_interval: Self::DEFAULT_REFRESH_INTERVAL,
            design: Matrix::identity(dim).scaled(regularizer),
            scratch: UpdateScratch::new(),
        })
    }

    /// Creates the inverse of an arbitrary symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`Cholesky::new`] errors for non-SPD inputs.
    pub fn from_matrix(a: &Matrix) -> Result<Self, LinalgError> {
        let chol = Cholesky::new(a)?;
        Ok(Self {
            inverse: chol.inverse(),
            updates: 0,
            regularizer: 1.0,
            refresh_interval: Self::DEFAULT_REFRESH_INTERVAL,
            design: a.clone(),
            scratch: UpdateScratch::new(),
        })
    }

    /// Overrides the refresh interval (number of updates between exact
    /// re-factorizations). Mostly useful in tests; the default is
    /// [`Self::DEFAULT_REFRESH_INTERVAL`].
    pub fn set_refresh_interval(&mut self, interval: u64) {
        self.refresh_interval = interval.max(1);
    }

    /// Dimension of the tracked matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.inverse.rows()
    }

    /// Number of rank-1 updates applied so far.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Borrows the current inverse matrix.
    #[must_use]
    pub fn inverse(&self) -> &Matrix {
        &self.inverse
    }

    /// Borrows the current design matrix `A`.
    #[must_use]
    pub fn design(&self) -> &Matrix {
        &self.design
    }

    /// Computes `A⁻¹ b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        self.inverse.matvec(b)
    }

    /// Computes `A⁻¹ b` into a caller-provided buffer (allocation-free
    /// variant of [`RankOneInverse::solve`], bit-identical result).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`
    /// or `out.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.inverse.matvec_into(b, out)
    }

    /// Evaluates the quadratic form `xᵀ A⁻¹ x`.
    ///
    /// Uses the fused single-pass kernel ([`Matrix::quadratic_form`]), which
    /// performs the exact floating-point sequence of the historical
    /// matvec-then-dot implementation without the intermediate allocation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`.
    pub fn quadratic_form(&self, x: &Vector) -> Result<f64, LinalgError> {
        self.inverse.quadratic_form(x.as_slice())
    }

    /// Applies the rank-1 update `A ← A + x xᵀ`, maintaining the inverse.
    ///
    /// Every [`refresh_interval`](Self::set_refresh_interval) updates the
    /// inverse is recomputed exactly from the accumulated design matrix to
    /// bound floating-point drift.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`.
    pub fn update(&mut self, x: &Vector) -> Result<(), LinalgError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.fold(x, 1.0, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// Allocation-free variant of [`RankOneInverse::update`] using a
    /// caller-owned [`UpdateScratch`]; bit-identical result (both paths run
    /// the same kernel).
    ///
    /// # Errors
    ///
    /// Same contract as [`RankOneInverse::update`].
    pub fn update_with(
        &mut self,
        x: &Vector,
        scratch: &mut UpdateScratch,
    ) -> Result<(), LinalgError> {
        self.fold(x, 1.0, scratch)
    }

    /// The single weighted Sherman–Morrison fold kernel behind every update
    /// entry point (internal-scratch and `_with` alike), so bit-identity
    /// between the paths holds by construction.
    ///
    /// `weight == 1.0` reproduces the plain update exactly: `1.0 · xax`
    /// is `xax` (multiplication by one is exact) and
    /// [`sherman_morrison_step`] special-cases the unscaled expression.
    fn fold(
        &mut self,
        x: &Vector,
        weight: f64,
        scratch: &mut UpdateScratch,
    ) -> Result<(), LinalgError> {
        let dim = self.dim();
        scratch.ensure_ax(dim);
        self.inverse.matvec_into(x.as_slice(), &mut scratch.ax)?;
        let mut xax = 0.0;
        for (a, b) in x.iter().zip(scratch.ax.iter()) {
            xax += a * b;
        }
        let denom = 1.0 + weight * xax;
        // denom = 1 + w·xᵀA⁻¹x > 0 for SPD A and w > 0: never a division by 0.
        sherman_morrison_step(&mut self.inverse, &scratch.ax, weight, denom);
        self.design.add_outer_product(x, weight)?;
        self.updates += 1;
        if self.updates % self.refresh_interval == 0 {
            self.refresh_with(scratch)?;
        }
        Ok(())
    }

    /// Applies the weighted rank-1 update `A ← A + w·x xᵀ`, maintaining the
    /// inverse through the weighted Sherman–Morrison identity
    ///
    /// ```text
    /// (A + w x xᵀ)⁻¹ = A⁻¹ − w (A⁻¹ x)(A⁻¹ x)ᵀ / (1 + w xᵀ A⁻¹ x)
    /// ```
    ///
    /// This is the coalesced-ingestion primitive: `w` identical contexts
    /// fold into the design matrix in a single `O(d²)` operation instead of
    /// `w` separate rank-1 updates. A weight of exactly `1.0` delegates to
    /// [`RankOneInverse::update`], so the unweighted path stays bit-for-bit
    /// identical. Each call counts as **one** update toward the refresh
    /// interval, because one Sherman–Morrison application contributes one
    /// step of floating-point drift regardless of its weight.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`
    /// and [`LinalgError::InvalidScalar`] if `weight` is not a strictly
    /// positive finite number.
    pub fn update_weighted(&mut self, x: &Vector, weight: f64) -> Result<(), LinalgError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(LinalgError::InvalidScalar {
                name: "weight",
                value: weight,
            });
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.fold(x, weight, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// Allocation-free variant of [`RankOneInverse::update_weighted`] using a
    /// caller-owned [`UpdateScratch`]; bit-identical result (both paths run
    /// the same kernel).
    ///
    /// # Errors
    ///
    /// Same contract as [`RankOneInverse::update_weighted`].
    pub fn update_weighted_with(
        &mut self,
        x: &Vector,
        weight: f64,
        scratch: &mut UpdateScratch,
    ) -> Result<(), LinalgError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(LinalgError::InvalidScalar {
                name: "weight",
                value: weight,
            });
        }
        self.fold(x, weight, scratch)
    }

    /// Applies a weighted rank-k update `A ← A + Σᵢ wᵢ·xᵢ xᵢᵀ` as a batch of
    /// weighted Sherman–Morrison steps ([`RankOneInverse::update_weighted`]).
    ///
    /// The batch form exists so callers folding coalesced sufficient
    /// statistics (one `(vector, weight)` pair per distinct context) express
    /// the whole fold in one call; the cost is `O(k·d²)` for `k` pairs, with
    /// `k` bounded by the number of *distinct* contexts rather than the
    /// number of raw observations.
    ///
    /// # Errors
    ///
    /// Propagates the first failing update; earlier pairs in the batch stay
    /// applied (the tracked matrix remains valid — the identity holds after
    /// every individual step).
    pub fn update_batch_weighted<'a, I>(&mut self, pairs: I) -> Result<(), LinalgError>
    where
        I: IntoIterator<Item = (&'a Vector, f64)>,
    {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.update_batch_weighted_with(pairs, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// Allocation-free variant of [`RankOneInverse::update_batch_weighted`]
    /// using a caller-owned [`UpdateScratch`]; bit-identical result.
    ///
    /// # Errors
    ///
    /// Same contract as [`RankOneInverse::update_batch_weighted`]: the first
    /// failing pair aborts the batch, earlier pairs stay applied.
    pub fn update_batch_weighted_with<'a, I>(
        &mut self,
        pairs: I,
        scratch: &mut UpdateScratch,
    ) -> Result<(), LinalgError>
    where
        I: IntoIterator<Item = (&'a Vector, f64)>,
    {
        for (x, weight) in pairs {
            self.update_weighted_with(x, weight, scratch)?;
        }
        Ok(())
    }

    /// Recomputes the inverse exactly from the accumulated design matrix.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; the design matrix is SPD by
    /// construction so this only fails after severe numerical corruption.
    pub fn refresh(&mut self) -> Result<(), LinalgError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.refresh_with(&mut scratch);
        self.scratch = scratch;
        result
    }

    /// Allocation-free exact refresh: factors the design matrix into the
    /// scratch buffer and solves the basis columns directly into the tracked
    /// inverse, with the exact arithmetic of [`Cholesky::new`] followed by
    /// [`Cholesky::inverse`] (both delegate to the same slice kernels), so
    /// the recomputed inverse is bit-identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Same contract as [`RankOneInverse::refresh`].
    pub fn refresh_with(&mut self, scratch: &mut UpdateScratch) -> Result<(), LinalgError> {
        let n = self.dim();
        scratch.ensure_refresh(n);
        factor_lower(&self.design, &mut scratch.chol)?;
        let data = self.inverse.as_mut_slice();
        for j in 0..n {
            scratch.col.fill(0.0);
            scratch.col[j] = 1.0;
            solve_in_place(&scratch.chol, n, &mut scratch.col);
            for (i, &value) in scratch.col.iter().enumerate() {
                data[i * n + j] = value;
            }
        }
        Ok(())
    }

    /// Merges the observations of another tracker into this one.
    ///
    /// The design matrices are summed (subtracting one copy of the shared
    /// `λI` prior so it is not double counted) and the inverse is recomputed
    /// exactly. This is how the P2B server folds reported interaction data
    /// into the central model.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the dimensions differ.
    pub fn merge(&mut self, other: &RankOneInverse) -> Result<(), LinalgError> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.dim(), self.dim()),
                found: (other.dim(), other.dim()),
            });
        }
        let prior = Matrix::identity(self.dim()).scaled(other.regularizer);
        let mut contribution = other.design.clone();
        // Remove the other tracker's prior so the merged design matrix keeps a
        // single regularization term.
        contribution.add_assign(&prior.scaled(-1.0))?;
        self.design.add_assign(&contribution)?;
        self.updates += other.updates;
        self.refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn rejects_invalid_construction() {
        assert!(matches!(
            RankOneInverse::identity(0, 1.0),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            RankOneInverse::identity(3, 0.0),
            Err(LinalgError::InvalidScalar { .. })
        ));
        assert!(matches!(
            RankOneInverse::identity(3, f64::NAN),
            Err(LinalgError::InvalidScalar { .. })
        ));
    }

    #[test]
    fn matches_direct_inverse_after_updates() {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        let mut a = Matrix::identity(3);
        let xs = [
            Vector::from(vec![1.0, 2.0, -0.5]),
            Vector::from(vec![0.1, -0.3, 0.7]),
            Vector::from(vec![2.0, 0.0, 1.0]),
            Vector::from(vec![-1.0, 1.0, 1.0]),
        ];
        for x in &xs {
            inc.update(x).unwrap();
            a.add_outer_product(x, 1.0).unwrap();
        }
        let direct = Cholesky::new(&a).unwrap().inverse();
        assert!(inc.inverse().max_abs_diff(&direct).unwrap() < 1e-9);
        assert_eq!(inc.update_count(), 4);
    }

    #[test]
    fn quadratic_form_positive_for_nonzero_input() {
        let mut inc = RankOneInverse::identity(4, 1.0).unwrap();
        inc.update(&Vector::from(vec![1.0, 1.0, 0.0, 0.0])).unwrap();
        let q = inc
            .quadratic_form(&Vector::from(vec![0.5, -0.5, 1.0, 0.0]))
            .unwrap();
        assert!(q > 0.0);
    }

    #[test]
    fn regularizer_scales_initial_inverse() {
        let inc = RankOneInverse::identity(2, 4.0).unwrap();
        assert!(approx_eq(inc.inverse().get(0, 0), 0.25));
        assert!(approx_eq(inc.design().get(0, 0), 4.0));
    }

    #[test]
    fn refresh_preserves_inverse() {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        for i in 0..10 {
            inc.update(&Vector::from(vec![i as f64, 1.0, -(i as f64) / 2.0]))
                .unwrap();
        }
        let before = inc.inverse().clone();
        inc.refresh().unwrap();
        assert!(before.max_abs_diff(inc.inverse()).unwrap() < 1e-8);
    }

    #[test]
    fn periodic_refresh_triggers() {
        let mut inc = RankOneInverse::identity(2, 1.0).unwrap();
        inc.set_refresh_interval(2);
        for _ in 0..5 {
            inc.update(&Vector::from(vec![1.0, 0.5])).unwrap();
        }
        // The design matrix after 5 identical updates is I + 5 x x'.
        let mut expected = Matrix::identity(2);
        expected
            .add_outer_product(&Vector::from(vec![1.0, 0.5]), 5.0)
            .unwrap();
        assert!(inc.design().max_abs_diff(&expected).unwrap() < 1e-9);
    }

    #[test]
    fn from_matrix_round_trips() {
        let mut a = Matrix::identity(2);
        a.add_outer_product(&Vector::from(vec![1.0, -1.0]), 2.0)
            .unwrap();
        let inc = RankOneInverse::from_matrix(&a).unwrap();
        let prod = a.matmul(inc.inverse()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-9);
    }

    #[test]
    fn merge_combines_observations() {
        let x1 = Vector::from(vec![1.0, 0.0]);
        let x2 = Vector::from(vec![0.0, 1.0]);

        let mut a = RankOneInverse::identity(2, 1.0).unwrap();
        a.update(&x1).unwrap();
        let mut b = RankOneInverse::identity(2, 1.0).unwrap();
        b.update(&x2).unwrap();

        a.merge(&b).unwrap();

        // Combined design matrix should be I + x1 x1' + x2 x2' = diag(2, 2).
        let expected = Matrix::diagonal(&[2.0, 2.0]);
        assert!(a.design().max_abs_diff(&expected).unwrap() < 1e-9);
        assert_eq!(a.update_count(), 2);
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = RankOneInverse::identity(2, 1.0).unwrap();
        let b = RankOneInverse::identity(3, 1.0).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn update_rejects_wrong_dimension() {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        assert!(inc.update(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn weighted_update_rejects_invalid_weights() {
        let mut inc = RankOneInverse::identity(2, 1.0).unwrap();
        let x = Vector::from(vec![1.0, 0.5]);
        assert!(matches!(
            inc.update_weighted(&x, 0.0),
            Err(LinalgError::InvalidScalar { .. })
        ));
        assert!(matches!(
            inc.update_weighted(&x, -2.0),
            Err(LinalgError::InvalidScalar { .. })
        ));
        assert!(matches!(
            inc.update_weighted(&x, f64::NAN),
            Err(LinalgError::InvalidScalar { .. })
        ));
        assert!(inc.update_weighted(&Vector::zeros(3), 2.0).is_err());
    }

    #[test]
    fn unit_weight_is_bit_identical_to_the_plain_update() {
        let xs = [
            Vector::from(vec![1.0, 2.0, -0.5]),
            Vector::from(vec![0.1, -0.3, 0.7]),
            Vector::from(vec![2.0, 0.0, 1.0]),
        ];
        let mut plain = RankOneInverse::identity(3, 1.0).unwrap();
        let mut weighted = RankOneInverse::identity(3, 1.0).unwrap();
        for x in &xs {
            plain.update(x).unwrap();
            weighted.update_weighted(x, 1.0).unwrap();
        }
        assert_eq!(plain, weighted, "w = 1 must take the exact same code path");
    }

    #[test]
    fn weighted_update_matches_repeated_updates() {
        let x = Vector::from(vec![0.8, -0.2, 0.4]);
        let mut repeated = RankOneInverse::identity(3, 2.0).unwrap();
        for _ in 0..7 {
            repeated.update(&x).unwrap();
        }
        let mut coalesced = RankOneInverse::identity(3, 2.0).unwrap();
        coalesced.update_weighted(&x, 7.0).unwrap();

        assert!(coalesced.design().max_abs_diff(repeated.design()).unwrap() < 1e-9);
        assert!(
            coalesced
                .inverse()
                .max_abs_diff(repeated.inverse())
                .unwrap()
                < 1e-9
        );
        // One Sherman–Morrison application = one drift step.
        assert_eq!(coalesced.update_count(), 1);
        assert_eq!(repeated.update_count(), 7);
    }

    #[test]
    fn weighted_update_matches_direct_inverse() {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        let mut a = Matrix::identity(3);
        let pairs = [
            (Vector::from(vec![1.0, 2.0, -0.5]), 3.0),
            (Vector::from(vec![0.1, -0.3, 0.7]), 12.0),
            (Vector::from(vec![2.0, 0.0, 1.0]), 0.5),
        ];
        inc.update_batch_weighted(pairs.iter().map(|(x, w)| (x, *w)))
            .unwrap();
        for (x, w) in &pairs {
            a.add_outer_product(x, *w).unwrap();
        }
        let direct = Cholesky::new(&a).unwrap().inverse();
        assert!(inc.inverse().max_abs_diff(&direct).unwrap() < 1e-9);
    }

    #[test]
    fn scratch_paths_are_bit_identical_to_internal_paths() {
        let pairs = [
            (Vector::from(vec![1.0, 2.0, -0.5]), 3.0),
            (Vector::from(vec![0.1, -0.3, 0.7]), 1.0),
            (Vector::from(vec![2.0, 0.0, 1.0]), 12.5),
            (Vector::from(vec![-1.0, 1.0, 1.0]), 1.0),
        ];
        let mut internal = RankOneInverse::identity(3, 2.0).unwrap();
        let mut external = RankOneInverse::identity(3, 2.0).unwrap();
        internal.set_refresh_interval(2);
        external.set_refresh_interval(2);
        let mut scratch = UpdateScratch::new();
        for (x, w) in &pairs {
            internal.update_weighted(x, *w).unwrap();
            external.update_weighted_with(x, *w, &mut scratch).unwrap();
            assert_eq!(internal, external, "states diverged at weight {w}");
        }
        // The plain update and the batch form, through the same scratch.
        let x = Vector::from(vec![0.25, -0.75, 0.5]);
        internal.update(&x).unwrap();
        external.update_with(&x, &mut scratch).unwrap();
        assert_eq!(internal, external);
        internal
            .update_batch_weighted(pairs.iter().map(|(x, w)| (x, *w)))
            .unwrap();
        external
            .update_batch_weighted_with(pairs.iter().map(|(x, w)| (x, *w)), &mut scratch)
            .unwrap();
        assert_eq!(internal, external);
    }

    #[test]
    fn refresh_with_matches_the_allocating_cholesky_inverse() {
        let mut inc = RankOneInverse::identity(4, 1.5).unwrap();
        let mut scratch = UpdateScratch::new();
        for i in 0..6 {
            let x = Vector::from(vec![i as f64, 1.0, -0.5 * i as f64, 0.25]);
            inc.update_with(&x, &mut scratch).unwrap();
        }
        let direct = Cholesky::new(inc.design()).unwrap().inverse();
        inc.refresh_with(&mut scratch).unwrap();
        assert_eq!(
            inc.inverse().as_slice(),
            direct.as_slice(),
            "scratch refresh must reproduce the allocating path bit-for-bit"
        );
    }

    #[test]
    fn one_scratch_serves_trackers_of_different_dimensions() {
        let mut small = RankOneInverse::identity(2, 1.0).unwrap();
        let mut large = RankOneInverse::identity(5, 1.0).unwrap();
        let mut scratch = UpdateScratch::new();
        small
            .update_with(&Vector::from(vec![1.0, -1.0]), &mut scratch)
            .unwrap();
        large
            .update_with(&Vector::from(vec![1.0, 0.0, 2.0, -1.0, 0.5]), &mut scratch)
            .unwrap();
        small
            .update_weighted_with(&Vector::from(vec![0.5, 0.25]), 3.0, &mut scratch)
            .unwrap();
        let mut reference = RankOneInverse::identity(2, 1.0).unwrap();
        reference.update(&Vector::from(vec![1.0, -1.0])).unwrap();
        reference
            .update_weighted(&Vector::from(vec![0.5, 0.25]), 3.0)
            .unwrap();
        assert_eq!(small, reference);
    }

    #[test]
    fn weighted_updates_trigger_the_periodic_refresh() {
        let mut inc = RankOneInverse::identity(2, 1.0).unwrap();
        inc.set_refresh_interval(2);
        for _ in 0..4 {
            inc.update_weighted(&Vector::from(vec![1.0, 0.25]), 5.0)
                .unwrap();
        }
        let mut expected = Matrix::identity(2);
        expected
            .add_outer_product(&Vector::from(vec![1.0, 0.25]), 20.0)
            .unwrap();
        assert!(inc.design().max_abs_diff(&expected).unwrap() < 1e-9);
        // After the refresh the inverse is exact.
        let direct = Cholesky::new(&expected).unwrap().inverse();
        assert!(inc.inverse().max_abs_diff(&direct).unwrap() < 1e-9);
    }
}
