//! Error type shared by all fallible linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible operations in [`crate`].
///
/// The variants carry the offending dimensions so that callers can produce
/// actionable diagnostics; the `Display` implementation renders a concise
/// lowercase message per the API guidelines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Shape expected by the operation (rows, cols); vectors use `cols = 1`.
        expected: (usize, usize),
        /// Shape actually provided.
        found: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix that must be (strictly) positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot at which the Cholesky factorization failed.
        pivot: usize,
    },
    /// An operation requiring a non-empty vector or matrix received an empty one.
    Empty,
    /// A scalar argument was invalid (NaN, infinite, or out of the documented range).
    InvalidScalar {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty operand"),
            LinalgError::InvalidScalar { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: (3, 3),
            found: (2, 3),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x3, found 2x3");

        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2x5"));

        let e = LinalgError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));

        let e = LinalgError::InvalidScalar {
            name: "alpha",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<LinalgError>();
    }
}
