//! Dense row-major matrices.

use crate::{LinalgError, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f64` values.
///
/// Used for LinUCB's per-arm design matrices `A_a = I + Σ x xᵀ`, for the
/// synthetic preference weight matrix `W` and for random-projection
/// dimensionality reduction in the dataset substrate.
///
/// # Example
///
/// ```
/// use p2b_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), p2b_linalg::LinalgError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let v = Vector::from(vec![1.0, 1.0]);
/// assert_eq!(m.matvec(&v)?.as_slice(), &[3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty and
    /// [`LinalgError::DimensionMismatch`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: (1, cols),
                    found: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies row `row` into a new [`Vector`].
    #[must_use]
    pub fn row_vector(&self, row: usize) -> Vector {
        Vector::from(self.row(row))
    }

    /// Borrows the flat row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major storage.
    ///
    /// Hot-path callers (the rank-one fold, the scoring arena sync) use this
    /// to update entries without per-element bounds checks; the shape is
    /// fixed at construction so the invariant `data.len() == rows * cols`
    /// always holds.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector, LinalgError> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x.as_slice(), &mut out)?;
        Ok(Vector::from(out))
    }

    /// Matrix–vector product written into a caller-provided buffer.
    ///
    /// Allocation-free variant of [`Matrix::matvec`] for per-round callers
    /// (scoring, the Sherman–Morrison fold, snapshot assembly). The
    /// accumulation order is identical to `matvec`, so results are
    /// bit-for-bit equal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *o = acc;
        }
        Ok(())
    }

    /// Fused quadratic form `xᵀ M x` without intermediate allocation.
    ///
    /// Each row product is accumulated left-to-right and folded into the
    /// total in row order — exactly the sequence of operations performed by
    /// `matvec` followed by a dot product — so the result is bit-for-bit
    /// identical to the two-step computation. This invariant is what lets
    /// the scoring hot path use the fused form while the determinism goldens
    /// stay byte-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square and
    /// [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut total = 0.0;
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            total += xr * acc;
        }
        Ok(total)
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a * xr;
            }
        }
        Ok(Vector::from(out))
    }

    /// Matrix–matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, other.cols),
                found: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + aik * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds another matrix in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Adds the outer product `scale · x xᵀ` to the matrix in place.
    ///
    /// This is the LinUCB design-matrix update `A_a ← A_a + x xᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square and
    /// [`LinalgError::DimensionMismatch`] if `x.len()` does not match.
    pub fn add_outer_product(&mut self, x: &Vector, scale: f64) -> Result<(), LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        for (i, row) in self.data.chunks_exact_mut(self.cols).enumerate() {
            let xi = xs[i];
            for (entry, &xj) in row.iter_mut().zip(xs.iter()) {
                *entry += scale * xi * xj;
            }
        }
        Ok(())
    }

    /// Frobenius norm (`sqrt(Σ aᵢⱼ²)`).
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute entry-wise difference with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(3);
        let v = Vector::from(vec![1.0, -2.0, 3.5]);
        assert_eq!(m.matvec(&v).unwrap(), v);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(err, Err(LinalgError::DimensionMismatch { .. })));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let v = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&v).unwrap().as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_into_is_bit_identical_to_matvec() {
        let m = Matrix::from_rows(&[
            vec![0.1, 0.2, 0.3],
            vec![0.4, 0.5, 0.6],
            vec![0.7, 0.8, 0.9],
        ])
        .unwrap();
        let v = Vector::from(vec![1.5, -2.5, 3.25]);
        let expected = m.matvec(&v).unwrap();
        let mut out = vec![0.0; 3];
        m.matvec_into(v.as_slice(), &mut out).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn matvec_into_rejects_mismatched_shapes() {
        let m = Matrix::zeros(2, 3);
        let mut out2 = vec![0.0; 2];
        let mut out3 = vec![0.0; 3];
        // Wrong input length.
        assert!(matches!(
            m.matvec_into(&[1.0, 2.0], &mut out2),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // Wrong output length.
        assert!(matches!(
            m.matvec_into(&[1.0, 2.0, 3.0], &mut out3),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn quadratic_form_is_bit_identical_to_matvec_then_dot() {
        let m = Matrix::from_rows(&[
            vec![2.0, 0.3, -0.1],
            vec![0.3, 1.5, 0.2],
            vec![-0.1, 0.2, 0.9],
        ])
        .unwrap();
        let v = Vector::from(vec![0.7, -1.3, 2.1]);
        let ax = m.matvec(&v).unwrap();
        let two_step = v.dot(&ax).unwrap();
        let fused = m.quadratic_form(v.as_slice()).unwrap();
        assert_eq!(fused.to_bits(), two_step.to_bits());
    }

    #[test]
    fn quadratic_form_rejects_bad_shapes() {
        assert!(matches!(
            Matrix::zeros(2, 3).quadratic_form(&[1.0, 2.0, 3.0]),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Matrix::zeros(3, 3).quadratic_form(&[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        let a = m.matvec_transposed(&v).unwrap();
        let b = m.transposed().matvec(&v).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let prod = m.matmul(&Matrix::identity(2)).unwrap();
        assert_eq!(prod, m);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn outer_product_update() {
        let mut a = Matrix::identity(2);
        let x = Vector::from(vec![1.0, 2.0]);
        a.add_outer_product(&x, 1.0).unwrap();
        assert!(approx_eq(a.get(0, 0), 2.0));
        assert!(approx_eq(a.get(0, 1), 2.0));
        assert!(approx_eq(a.get(1, 0), 2.0));
        assert!(approx_eq(a.get(1, 1), 5.0));
    }

    #[test]
    fn outer_product_requires_square() {
        let mut a = Matrix::zeros(2, 3);
        let x = Vector::from(vec![1.0, 2.0]);
        assert!(matches!(
            a.add_outer_product(&x, 1.0),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::identity(2);
        let b = a.scaled(3.0);
        let c = a.add(&b).unwrap();
        assert!(approx_eq(c.get(0, 0), 4.0));
        assert!(approx_eq(c.get(0, 1), 0.0));
        let mut d = a.clone();
        d.add_assign(&b).unwrap();
        assert_eq!(d, c);
    }

    #[test]
    fn diagonal_constructor() {
        let m = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert!(approx_eq(m.get(1, 1), 2.0));
        assert!(approx_eq(m.get(0, 1), 0.0));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!(approx_eq(Matrix::identity(4).frobenius_norm(), 2.0));
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b.set(0, 1, 0.5);
        assert!(approx_eq(a.max_abs_diff(&b).unwrap(), 0.5));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn display_contains_shape() {
        let m = Matrix::identity(2);
        assert!(format!("{m}").contains("2x2"));
    }
}
