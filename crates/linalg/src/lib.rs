//! Small dense linear-algebra substrate for the P2B reproduction.
//!
//! The Privacy-Preserving Bandits system needs only a handful of numerical
//! primitives: dense vectors and matrices, positive-definite solves for the
//! LinUCB ridge-regression updates, an incrementally maintained inverse
//! (Sherman–Morrison) so that each bandit step is `O(d²)` instead of `O(d³)`,
//! and a few statistical helpers (softmax, mean, argmax).
//!
//! None of the crates in the approved offline dependency set provide linear
//! algebra, so this crate implements the required subset from scratch with an
//! emphasis on clarity and numerical robustness for the small dimensions
//! (`d ≤ 128`) used throughout the paper's experiments.
//!
//! # Example
//!
//! ```
//! use p2b_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), p2b_linalg::LinalgError> {
//! let a = Matrix::identity(3);
//! let x = Vector::from(vec![1.0, 2.0, 3.0]);
//! let y = a.matvec(&x)?;
//! assert_eq!(y.as_slice(), x.as_slice());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arena;
mod cholesky;
mod error;
mod incremental;
mod matrix;
mod stats;
mod vector;

pub use arena::{ScoreArena, ScoreArenaF32, ScoreScratch, ScoreScratchF32};
pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use incremental::{RankOneInverse, UpdateScratch};
pub use matrix::Matrix;
pub use stats::{argmax, mean, softmax, standard_deviation, variance};
pub use vector::Vector;

/// Numerical tolerance used throughout the crate when comparing floating
/// point quantities (e.g. checking positive-definiteness or normalization).
pub const EPSILON: f64 = 1e-10;

/// Returns `true` when two floating point numbers are equal up to an
/// absolute *and* relative tolerance of [`EPSILON`]-scale.
///
/// This is the comparison used by the test-suites of the downstream crates;
/// exposing it here keeps the notion of "numerically equal" consistent.
///
/// ```
/// assert!(p2b_linalg::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!p2b_linalg::approx_eq(1.0, 1.1));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= 1e-9 * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_is_reflexive() {
        for v in [-1e9, -1.0, 0.0, 1e-30, 1.0, 1e9] {
            assert!(approx_eq(v, v));
        }
    }

    #[test]
    fn approx_eq_rejects_distinct_values() {
        assert!(!approx_eq(0.0, 1.0));
        assert!(!approx_eq(1e9, 1e9 + 10.0));
    }

    #[test]
    fn approx_eq_is_symmetric() {
        assert_eq!(approx_eq(1.0, 1.0 + 1e-12), approx_eq(1.0 + 1e-12, 1.0));
    }
}
