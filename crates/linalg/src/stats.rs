//! Small statistical helpers shared across the workspace.

/// Numerically stable softmax.
///
/// The synthetic preference benchmark (Section 5.1 of the paper) defines the
/// mean reward of an action as a scaled component of `softmax(W x)`; this is
/// the implementation used there.
///
/// Returns an empty vector for empty input.
///
/// ```
/// let p = p2b_linalg::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element, breaking ties towards the lowest index.
///
/// Returns `None` for empty input. `NaN` entries are never selected unless
/// every entry is `NaN`, in which case index 0 is returned.
#[must_use]
pub fn argmax(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    let mut seen_finite = false;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        if !seen_finite || v > best_value {
            best = i;
            best_value = v;
            seen_finite = true;
        }
    }
    Some(best)
}

/// Arithmetic mean. Returns 0.0 for empty input.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance. Returns 0.0 for inputs with fewer than two elements.
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn standard_deviation(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0));
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(approx_eq(*x, *y));
        }
    }

    #[test]
    fn softmax_handles_extreme_values_without_overflow() {
        let p = softmax(&[1e4, -1e4]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn softmax_empty_input() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&xs), 5.0));
        assert!(approx_eq(variance(&xs), 4.0));
        assert!(approx_eq(standard_deviation(&xs), 2.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(standard_deviation(&[]), 0.0);
    }
}
