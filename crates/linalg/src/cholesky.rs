//! Cholesky factorization for symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Vector};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// LinUCB's design matrices `A_a = I + Σ x xᵀ` are symmetric positive
/// definite by construction, so Cholesky is the appropriate (and numerically
/// stable) way to solve `A_a θ = b_a` and to evaluate the exploration bonus
/// `xᵀ A_a⁻¹ x`. The factorization is `O(d³)`; for the per-step hot path the
/// [`crate::RankOneInverse`] incremental inverse is preferred.
///
/// # Example
///
/// ```
/// use p2b_linalg::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), p2b_linalg::LinalgError> {
/// let mut a = Matrix::identity(2);
/// a.add_outer_product(&Vector::from(vec![1.0, 2.0]), 1.0)?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&Vector::from(vec![1.0, 0.0]))?;
/// let back = a.matvec(&x)?;
/// assert!((back[0] - 1.0).abs() < 1e-9);
/// assert!(back[1].abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    /// Lower-triangular factor stored as a full square matrix.
    lower: Matrix,
}

/// Writes the lower-triangular Cholesky factor of `a` into the flat
/// row-major buffer `lower` (`n·n` elements, lower triangle written, strict
/// upper triangle untouched).
///
/// This is the allocation-free kernel behind [`Cholesky::new`]: both paths
/// run the exact same arithmetic sequence, so a factor computed into a
/// reused scratch buffer is bit-identical to a freshly allocated one. Stale
/// upper-triangle contents in a reused buffer are harmless — every consumer
/// ([`solve_in_place`]) reads only the diagonal and lower triangle.
///
/// # Errors
///
/// Same contract as [`Cholesky::new`]: [`LinalgError::NotSquare`],
/// [`LinalgError::Empty`], [`LinalgError::NotPositiveDefinite`], plus
/// [`LinalgError::DimensionMismatch`] if `lower` is not `n·n` long.
pub(crate) fn factor_lower(a: &Matrix, lower: &mut [f64]) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if lower.len() != n * n {
        return Err(LinalgError::DimensionMismatch {
            expected: (n, n),
            found: (lower.len(), 1),
        });
    }
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= lower[i * n + k] * lower[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                lower[i * n + j] = sum.sqrt();
            } else {
                lower[i * n + j] = sum / lower[j * n + j];
            }
        }
    }
    Ok(())
}

/// Solves `L Lᵀ x = b` in place: `out` holds `b` on entry and `x` on exit.
///
/// `l` is a flat row-major `n·n` lower-triangular factor as produced by
/// [`factor_lower`]. The forward-substitution intermediate overwrites `out`
/// progressively (position `i` of `b` is last read at step `i`), then the
/// backward substitution runs in place — the exact arithmetic sequence of
/// [`Cholesky::solve_into`], which delegates here.
pub(crate) fn solve_in_place(l: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(out.len(), n);
    // Forward substitution: L y = b, y written into `out`.
    for i in 0..n {
        let mut sum = out[i];
        let row = &l[i * n..i * n + i];
        for (lk, y_k) in row.iter().zip(out.iter()) {
            sum -= lk * y_k;
        }
        out[i] = sum / l[i * n + i];
    }
    // Backward substitution: Lᵀ x = y, in place over `out`.
    for i in (0..n).rev() {
        let mut sum = out[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * out[k];
        }
        out[i] = sum / l[i * n + i];
    }
}

impl Cholesky {
    /// Computes the factorization of a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` is 0×0.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly positive.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lower = Matrix::zeros(n, n);
        factor_lower(a, lower.as_mut_slice())?;
        Ok(Self { lower })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Solves `A x = b` using the precomputed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let mut out = vec![0.0; self.dim()];
        self.solve_into(b.as_slice(), &mut out)?;
        Ok(Vector::from(out))
    }

    /// Solves `A x = b` into a caller-provided buffer without allocating.
    ///
    /// The forward-substitution intermediate is written into `out` and then
    /// overwritten in place by the backward substitution (position `i` of the
    /// intermediate is last read at step `i`, so a single buffer suffices).
    /// The arithmetic sequence matches [`Cholesky::solve`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` or `out.len()`
    /// differs from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        if out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (out.len(), 1),
            });
        }
        out.copy_from_slice(b);
        solve_in_place(self.lower.as_slice(), n, out);
        Ok(())
    }

    /// Computes the full inverse `A⁻¹` by solving against each basis vector.
    ///
    /// This is `O(d³)` and intended for initialization; incremental updates
    /// should use [`crate::RankOneInverse`].
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut basis = vec![0.0; n];
        let mut col = vec![0.0; n];
        for j in 0..n {
            basis[j] = 1.0;
            // Both buffers are sized to `n` by construction, so this cannot
            // fail; the binding keeps the invariant checked in debug builds.
            let solved = self.solve_into(&basis, &mut col);
            debug_assert!(solved.is_ok(), "basis vector has matching dimension");
            basis[j] = 0.0;
            for (i, &value) in col.iter().enumerate() {
                inv.set(i, j, value);
            }
        }
        inv
    }

    /// Log-determinant of the factored matrix, `ln det A = 2 Σ ln Lᵢᵢ`.
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| self.lower.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Evaluates the quadratic form `xᵀ A⁻¹ x` without forming the inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`.
    pub fn quadratic_form_inverse(&self, x: &Vector) -> Result<f64, LinalgError> {
        // x' A^{-1} x = || L^{-1} x ||^2, obtained by forward substitution.
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = x[i];
            for (k, &y_k) in y.iter().enumerate().take(i) {
                sum -= self.lower.get(i, k) * y_k;
            }
            y[i] = sum / self.lower.get(i, i);
        }
        Ok(y.iter().map(|v| v * v).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd_matrix() -> Matrix {
        // A = I + x x' + z z' is symmetric positive definite.
        let mut a = Matrix::identity(3);
        a.add_outer_product(&Vector::from(vec![1.0, 2.0, 3.0]), 1.0)
            .unwrap();
        a.add_outer_product(&Vector::from(vec![-1.0, 0.5, 0.25]), 1.0)
            .unwrap();
        a
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let reconstructed = l.matmul(&l.transposed()).unwrap();
        assert!(a.max_abs_diff(&reconstructed).unwrap() < 1e-9);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!(approx_eq(back[i], b[i]));
        }
    }

    #[test]
    fn solve_into_is_bit_identical_to_solve() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        let b = Vector::from(vec![0.9, -1.7, 0.45]);
        let expected = chol.solve(&b).unwrap();
        let mut out = vec![0.0; 3];
        chol.solve_into(b.as_slice(), &mut out).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn solve_into_rejects_mismatched_buffers() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let mut short = vec![0.0; 2];
        let mut ok = vec![0.0; 3];
        assert!(matches!(
            chol.solve_into(&[1.0, 0.0, 0.0], &mut short),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            chol.solve_into(&[1.0, 0.0], &mut ok),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_matrix();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-9);
    }

    #[test]
    fn quadratic_form_matches_explicit_inverse() {
        let a = spd_matrix();
        let chol = Cholesky::new(&a).unwrap();
        let x = Vector::from(vec![0.3, -1.2, 2.0]);
        let inv = chol.inverse();
        let explicit = x.dot(&inv.matvec(&x).unwrap()).unwrap();
        let implicit = chol.quadratic_form_inverse(&x).unwrap();
        assert!(approx_eq(explicit, implicit));
    }

    #[test]
    fn log_determinant_of_identity_is_zero() {
        let chol = Cholesky::new(&Matrix::identity(5)).unwrap();
        assert!(approx_eq(chol.log_determinant(), 0.0));
    }

    #[test]
    fn rejects_non_square() {
        let err = Cholesky::new(&Matrix::zeros(2, 3));
        assert!(matches!(err, Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_empty_matrix() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(chol.solve(&Vector::zeros(2)).is_err());
        assert!(chol.quadratic_form_inverse(&Vector::zeros(4)).is_err());
    }
}
