//! Dense, heap-allocated `f64` vectors.

use crate::LinalgError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector of `f64` values.
///
/// `Vector` is the context-vector representation used throughout P2B: the
/// normalized user context observed by a local agent, LinUCB's `θ` and `b`
/// parameters, and the cluster centroids of the encoder are all `Vector`s.
///
/// # Example
///
/// ```
/// use p2b_linalg::Vector;
///
/// let v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.norm2(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `len`.
    ///
    /// ```
    /// let v = p2b_linalg::Vector::zeros(4);
    /// assert_eq!(v.len(), 4);
    /// assert!(v.iter().all(|&x| x == 0.0));
    /// ```
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of length `len` filled with `value`.
    #[must_use]
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates the `i`-th standard basis vector of dimension `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn basis(len: usize, i: usize) -> Self {
        assert!(i < len, "basis index {i} out of range for length {len}");
        let mut v = Self::zeros(len);
        v.data[i] = 1.0;
        v
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    #[must_use]
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Iterates mutably over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Squared Euclidean distance to another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn squared_distance(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Element-wise addition, returning a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn add(&self, other: &Vector) -> Result<Vector, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(Vector::from(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect::<Vec<_>>(),
        ))
    }

    /// Element-wise subtraction (`self - other`), returning a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(Vector::from(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        ))
    }

    /// Adds `scale * other` into `self` in place (the BLAS `axpy` operation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&mut self, scale: f64, other: &Vector) -> Result<(), LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns a new vector scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector::from(self.data.iter().map(|x| x * factor).collect::<Vec<_>>())
    }

    /// Scales the vector in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns an L1-normalized copy of the vector (entries sum to one).
    ///
    /// This is the normalization P2B applies to contexts before quantizing
    /// them to `q` decimal digits (Section 3.2 of the paper). Entries are
    /// first shifted to be non-negative when necessary.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty vector.
    pub fn normalized_l1(&self) -> Result<Vector, LinalgError> {
        if self.is_empty() {
            return Err(LinalgError::Empty);
        }
        let min = self.data.iter().cloned().fold(f64::INFINITY, f64::min);
        let shift = if min < 0.0 { -min } else { 0.0 };
        let shifted: Vec<f64> = self.data.iter().map(|x| x + shift).collect();
        let sum: f64 = shifted.iter().sum();
        if sum <= f64::EPSILON {
            // Degenerate all-zero vector: fall back to the uniform distribution,
            // which is the natural "no information" context.
            let n = self.len() as f64;
            return Ok(Vector::filled(self.len(), 1.0 / n));
        }
        Ok(Vector::from(
            shifted.into_iter().map(|x| x / sum).collect::<Vec<_>>(),
        ))
    }

    /// Returns an L2-normalized copy (unit Euclidean norm).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty vector.
    pub fn normalized_l2(&self) -> Result<Vector, LinalgError> {
        if self.is_empty() {
            return Err(LinalgError::Empty);
        }
        let norm = self.norm2();
        if norm <= f64::EPSILON {
            let n = (self.len() as f64).sqrt();
            return Ok(Vector::filled(self.len(), 1.0 / n));
        }
        Ok(self.scaled(1.0 / norm))
    }

    /// Index of the maximum entry, breaking ties towards the lowest index.
    ///
    /// Returns `None` for an empty vector.
    #[must_use]
    pub fn argmax(&self) -> Option<usize> {
        crate::stats::argmax(&self.data)
    }

    /// Sum of the entries.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Returns `true` if every entry is finite (neither NaN nor infinite).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn basis_vector_has_single_one() {
        let e2 = Vector::basis(4, 2);
        assert_eq!(e2.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(e2.sum(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert!(approx_eq(a.dot(&b).unwrap(), 32.0));
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert!(approx_eq(v.norm2(), 5.0));
        assert!(approx_eq(v.norm1(), 7.0));
    }

    #[test]
    fn add_sub_axpy() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
    }

    #[test]
    fn normalized_l1_sums_to_one() {
        let v = Vector::from(vec![1.0, 3.0, 4.0]);
        let n = v.normalized_l1().unwrap();
        assert!(approx_eq(n.sum(), 1.0));
        assert!(approx_eq(n[2], 0.5));
    }

    #[test]
    fn normalized_l1_handles_negative_entries() {
        let v = Vector::from(vec![-1.0, 0.0, 1.0]);
        let n = v.normalized_l1().unwrap();
        assert!(approx_eq(n.sum(), 1.0));
        assert!(n.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normalized_l1_of_zero_vector_is_uniform() {
        let v = Vector::zeros(4);
        let n = v.normalized_l1().unwrap();
        assert!(n.iter().all(|&x| approx_eq(x, 0.25)));
    }

    #[test]
    fn normalized_l2_is_unit_norm() {
        let v = Vector::from(vec![3.0, 4.0]);
        let n = v.normalized_l2().unwrap();
        assert!(approx_eq(n.norm2(), 1.0));
    }

    #[test]
    fn normalize_empty_is_error() {
        assert!(matches!(
            Vector::zeros(0).normalized_l1(),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            Vector::zeros(0).normalized_l2(),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn squared_distance() {
        let a = Vector::from(vec![0.0, 0.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        assert!(approx_eq(a.squared_distance(&b).unwrap(), 25.0));
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let v = Vector::from(vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut v = v;
        v.extend([3.0]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![1.0, 2.0]);
        assert!(format!("{v}").contains("1.0000"));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[0] = f64::NAN;
        assert!(!v.is_finite());
    }
}
