//! Contiguous, lane-major scoring arenas for batched LinUCB-style scoring.
//!
//! A [`ScoreArena`] packs the scoring state of *all* arms of one per-code
//! model — each arm's inverse design matrix `A_a⁻¹` and its cached ridge
//! estimate `θ_a = A_a⁻¹ b_a` — into two flat buffers laid out
//! **element-major** ("structure of arrays"): for every matrix position
//! `(i, j)` the values of all arms sit next to each other.
//!
//! ```text
//! inv   = [ m₀(0,0) m₁(0,0) … m_{A-1}(0,0) | m₀(0,1) m₁(0,1) … | … ]   (d·d lanes of A)
//! theta = [ θ₀(0)   θ₁(0)   … θ_{A-1}(0)   | θ₀(1)   θ₁(1)   … | … ]   (d   lanes of A)
//! ```
//!
//! This layout lets [`ScoreArena::ucb_scores_into`] score every arm in a
//! single sweep over the buffers: the inner loop runs across arms, so each
//! arm owns an independent accumulator and the floating-point dependency
//! chain that serializes the classic one-arm-at-a-time loop disappears,
//! while every load is sequential in memory.
//!
//! **Determinism invariant:** for each individual arm the sequence of
//! floating-point operations is *identical* to the scalar reference path
//! (`matvec` row by row, then a dot product, then `estimate + α·√bonus`),
//! so arena scores are bit-for-bit equal to the scalar scores. The f64
//! arena is a derived *view* of the `RankOneInverse` state — the f64
//! reference path remains the source of truth.

use crate::{LinalgError, Matrix};

/// Reusable scratch for [`ScoreArena::ucb_scores_into`]: three `f64` lanes of
/// length `arms`. Buffers grow on demand and are never shrunk.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    rowacc: Vec<f64>,
    qf: Vec<f64>,
    est: Vec<f64>,
}

impl ScoreScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, arms: usize) {
        if self.rowacc.len() < arms {
            self.rowacc.resize(arms, 0.0);
            self.qf.resize(arms, 0.0);
            self.est.resize(arms, 0.0);
        }
    }
}

/// Flat, element-major scoring arena over all arms of one model (`f64`).
///
/// See the module documentation in `arena.rs` for the layout and the
/// determinism invariant. Arms are loaded with [`ScoreArena::load_arm`] whenever the
/// backing `RankOneInverse` state changes and scored with
/// [`ScoreArena::ucb_scores_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreArena {
    arms: usize,
    dim: usize,
    /// Element-major inverses: entry `(i, j)` of arm `a` lives at
    /// `(i·dim + j)·arms + a`.
    inv: Vec<f64>,
    /// Element-major ridge estimates: entry `i` of arm `a` lives at
    /// `i·arms + a`.
    theta: Vec<f64>,
}

impl ScoreArena {
    /// Creates a zeroed arena for `arms` arms of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `arms == 0` or `dim == 0`.
    pub fn new(arms: usize, dim: usize) -> Result<Self, LinalgError> {
        if arms == 0 || dim == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(Self {
            arms,
            dim,
            inv: vec![0.0; arms * dim * dim],
            theta: vec![0.0; arms * dim],
        })
    }

    /// Number of arms the arena holds.
    #[must_use]
    pub fn arms(&self) -> usize {
        self.arms
    }

    /// Per-arm dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scatters one arm's inverse and cached `θ` into the arena lanes.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `arm` is out of range,
    /// `inverse` is not `dim × dim`, or `theta.len() != dim`.
    pub fn load_arm(
        &mut self,
        arm: usize,
        inverse: &Matrix,
        theta: &[f64],
    ) -> Result<(), LinalgError> {
        if arm >= self.arms {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.arms, 1),
                found: (arm + 1, 1),
            });
        }
        if inverse.rows() != self.dim || inverse.cols() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.dim, self.dim),
                found: (inverse.rows(), inverse.cols()),
            });
        }
        if theta.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.dim, 1),
                found: (theta.len(), 1),
            });
        }
        let arms = self.arms;
        for (k, &value) in inverse.as_slice().iter().enumerate() {
            self.inv[k * arms + arm] = value;
        }
        for (i, &value) in theta.iter().enumerate() {
            self.theta[i * arms + arm] = value;
        }
        Ok(())
    }

    /// Reads back one arm's cached `θ` entry (test and debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `arm` or `i` is out of range.
    #[must_use]
    pub fn theta_entry(&self, arm: usize, i: usize) -> f64 {
        assert!(arm < self.arms && i < self.dim, "index out of bounds");
        self.theta[i * self.arms + arm]
    }

    /// Scores all arms against one context in a single pass:
    /// `out[a] = θ_aᵀx + α·√(max(0, xᵀ A_a⁻¹ x))`.
    ///
    /// Allocation-free given a warm `scratch`. Per arm, the floating-point
    /// sequence is identical to the scalar reference (row-major `matvec`,
    /// dot product, `estimate + α·bonus`), so the scores are bit-for-bit
    /// equal to scoring each arm individually.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`
    /// or `out.len() != self.arms()`.
    pub fn ucb_scores_into(
        &self,
        x: &[f64],
        alpha: f64,
        scratch: &mut ScoreScratch,
        out: &mut [f64],
    ) -> Result<(), LinalgError> {
        if x.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.dim, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.arms {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.arms, 1),
                found: (out.len(), 1),
            });
        }
        let arms = self.arms;
        scratch.ensure(arms);
        let rowacc = &mut scratch.rowacc[..arms];
        let qf = &mut scratch.qf[..arms];
        let est = &mut scratch.est[..arms];
        qf.fill(0.0);
        est.fill(0.0);
        // Quadratic forms: qf[a] = Σᵢ xᵢ·(Σⱼ m_a(i,j)·xⱼ), accumulated in the
        // same row-then-total order as the scalar matvec + dot reference.
        for (i, &xi) in x.iter().enumerate() {
            rowacc.fill(0.0);
            for (j, &xj) in x.iter().enumerate() {
                let lane = &self.inv[(i * self.dim + j) * arms..][..arms];
                for (acc, &m) in rowacc.iter_mut().zip(lane) {
                    *acc += m * xj;
                }
            }
            for (q, &acc) in qf.iter_mut().zip(rowacc.iter()) {
                *q += xi * acc;
            }
        }
        // Point estimates: est[a] = θ_aᵀ x.
        for (i, &xi) in x.iter().enumerate() {
            let lane = &self.theta[i * arms..][..arms];
            for (e, &t) in est.iter_mut().zip(lane) {
                *e += t * xi;
            }
        }
        for ((o, &e), &q) in out.iter_mut().zip(est.iter()).zip(qf.iter()) {
            *o = e + alpha * q.max(0.0).sqrt();
        }
        Ok(())
    }
}

/// Flat, element-major scoring arena in single precision.
///
/// A *derived*, read-only tier converted from `f64` state: updates always
/// happen in `f64` and the f64 path remains the source of truth. The f32
/// tier halves memory traffic and doubles SIMD width for serving workloads
/// that tolerate ~1e-7 relative score error; scores are widened back to
/// `f64` so downstream tie-breaking logic is shared with the f64 path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreArenaF32 {
    arms: usize,
    dim: usize,
    inv: Vec<f32>,
    theta: Vec<f32>,
}

/// Reusable scratch for [`ScoreArenaF32::ucb_scores_into`].
#[derive(Debug, Clone, Default)]
pub struct ScoreScratchF32 {
    x: Vec<f32>,
    rowacc: Vec<f32>,
    qf: Vec<f32>,
    est: Vec<f32>,
}

impl ScoreScratchF32 {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, arms: usize, dim: usize) {
        if self.rowacc.len() < arms {
            self.rowacc.resize(arms, 0.0);
            self.qf.resize(arms, 0.0);
            self.est.resize(arms, 0.0);
        }
        if self.x.len() < dim {
            self.x.resize(dim, 0.0);
        }
    }
}

impl ScoreArenaF32 {
    /// Creates a zeroed f32 arena for `arms` arms of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `arms == 0` or `dim == 0`.
    pub fn new(arms: usize, dim: usize) -> Result<Self, LinalgError> {
        if arms == 0 || dim == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(Self {
            arms,
            dim,
            inv: vec![0.0; arms * dim * dim],
            theta: vec![0.0; arms * dim],
        })
    }

    /// Converts an f64 arena into the f32 tier (one narrowing pass).
    #[must_use]
    pub fn from_f64(arena: &ScoreArena) -> Self {
        Self {
            arms: arena.arms,
            dim: arena.dim,
            inv: arena.inv.iter().map(|&v| v as f32).collect(),
            theta: arena.theta.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of arms the arena holds.
    #[must_use]
    pub fn arms(&self) -> usize {
        self.arms
    }

    /// Per-arm dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scores all arms against one context in a single pass, computing in
    /// `f32` and widening the final scores to `f64` for shared tie-breaking.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.dim()`
    /// or `out.len() != self.arms()`.
    pub fn ucb_scores_into(
        &self,
        x: &[f64],
        alpha: f64,
        scratch: &mut ScoreScratchF32,
        out: &mut [f64],
    ) -> Result<(), LinalgError> {
        if x.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.dim, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.arms {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.arms, 1),
                found: (out.len(), 1),
            });
        }
        let arms = self.arms;
        scratch.ensure(arms, self.dim);
        let xs = &mut scratch.x[..self.dim];
        for (narrow, &wide) in xs.iter_mut().zip(x.iter()) {
            *narrow = wide as f32;
        }
        let rowacc = &mut scratch.rowacc[..arms];
        let qf = &mut scratch.qf[..arms];
        let est = &mut scratch.est[..arms];
        qf.fill(0.0);
        est.fill(0.0);
        let alpha = alpha as f32;
        for i in 0..self.dim {
            rowacc.fill(0.0);
            for (j, &xj) in xs.iter().enumerate() {
                let lane = &self.inv[(i * self.dim + j) * arms..][..arms];
                for (acc, &m) in rowacc.iter_mut().zip(lane) {
                    *acc += m * xj;
                }
            }
            let xi = xs[i];
            for (q, &acc) in qf.iter_mut().zip(rowacc.iter()) {
                *q += xi * acc;
            }
        }
        for (i, &xi) in xs.iter().enumerate() {
            let lane = &self.theta[i * arms..][..arms];
            for (e, &t) in est.iter_mut().zip(lane) {
                *e += t * xi;
            }
        }
        for ((o, &e), &q) in out.iter_mut().zip(est.iter()).zip(qf.iter()) {
            *o = f64::from(e + alpha * q.max(0.0).sqrt());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankOneInverse, Vector};

    fn trained_arena(arms: usize, dim: usize) -> (ScoreArena, Vec<RankOneInverse>, Vec<Vector>) {
        let mut arena = ScoreArena::new(arms, dim).unwrap();
        let mut inverses = Vec::new();
        let mut rewards = Vec::new();
        for a in 0..arms {
            let mut inv = RankOneInverse::identity(dim, 1.0).unwrap();
            let mut b = Vector::zeros(dim);
            for t in 0..5 {
                let x: Vector = (0..dim)
                    .map(|k| ((a * 31 + t * 7 + k * 3) % 11) as f64 / 11.0)
                    .collect();
                inv.update(&x).unwrap();
                b.axpy(((a + t) % 3) as f64 / 2.0, &x).unwrap();
            }
            let theta = inv.solve(&b).unwrap();
            arena.load_arm(a, inv.inverse(), theta.as_slice()).unwrap();
            inverses.push(inv);
            rewards.push(b);
        }
        (arena, inverses, rewards)
    }

    #[test]
    fn arena_scores_are_bit_identical_to_the_scalar_reference() {
        let (arena, inverses, rewards) = trained_arena(7, 6);
        let x: Vector = (0..6).map(|k| (k as f64 + 0.5) / 6.0).collect();
        let alpha = 0.25;
        let mut scratch = ScoreScratch::new();
        let mut out = vec![0.0; 7];
        arena
            .ucb_scores_into(x.as_slice(), alpha, &mut scratch, &mut out)
            .unwrap();
        for (a, inv) in inverses.iter().enumerate() {
            // The historical scalar path: solve, dot, quadratic form.
            let theta = inv.solve(&rewards[a]).unwrap();
            let estimate = theta.dot(&x).unwrap();
            let bonus = inv.quadratic_form(&x).unwrap().max(0.0).sqrt();
            let reference = estimate + alpha * bonus;
            assert_eq!(
                out[a].to_bits(),
                reference.to_bits(),
                "arm {a} diverged from the scalar reference"
            );
        }
    }

    #[test]
    fn f32_tier_tracks_the_f64_scores() {
        let (arena, _, _) = trained_arena(5, 8);
        let fast = ScoreArenaF32::from_f64(&arena);
        let x: Vector = (0..8).map(|k| (k as f64 * 0.13).sin().abs()).collect();
        let mut s64 = ScoreScratch::new();
        let mut s32 = ScoreScratchF32::new();
        let mut out64 = vec![0.0; 5];
        let mut out32 = vec![0.0; 5];
        arena
            .ucb_scores_into(x.as_slice(), 0.5, &mut s64, &mut out64)
            .unwrap();
        fast.ucb_scores_into(x.as_slice(), 0.5, &mut s32, &mut out32)
            .unwrap();
        for (a, (w, n)) in out64.iter().zip(out32.iter()).enumerate() {
            let scale = w.abs().max(1.0);
            assert!(
                (w - n).abs() <= 1e-5 * scale,
                "arm {a}: f32 score {n} too far from f64 score {w}"
            );
        }
    }

    #[test]
    fn rejects_zero_sized_arenas_and_bad_shapes() {
        assert!(matches!(ScoreArena::new(0, 4), Err(LinalgError::Empty)));
        assert!(matches!(ScoreArena::new(4, 0), Err(LinalgError::Empty)));
        let mut arena = ScoreArena::new(2, 3).unwrap();
        let id = Matrix::identity(3);
        assert!(arena.load_arm(2, &id, &[0.0; 3]).is_err());
        assert!(arena.load_arm(0, &Matrix::identity(2), &[0.0; 3]).is_err());
        assert!(arena.load_arm(0, &id, &[0.0; 2]).is_err());
        let mut scratch = ScoreScratch::new();
        let mut out = vec![0.0; 2];
        assert!(arena
            .ucb_scores_into(&[0.0; 2], 1.0, &mut scratch, &mut out)
            .is_err());
        let mut short = vec![0.0; 1];
        assert!(arena
            .ucb_scores_into(&[0.0; 3], 1.0, &mut scratch, &mut short)
            .is_err());
    }

    #[test]
    fn load_arm_round_trips_theta() {
        let mut arena = ScoreArena::new(3, 2).unwrap();
        arena
            .load_arm(1, &Matrix::identity(2), &[0.25, -0.75])
            .unwrap();
        assert_eq!(arena.theta_entry(1, 0), 0.25);
        assert_eq!(arena.theta_entry(1, 1), -0.75);
        assert_eq!(arena.theta_entry(0, 0), 0.0);
    }
}
