//! Property-based tests for the linear-algebra substrate.

use p2b_linalg::{softmax, Cholesky, Matrix, RankOneInverse, Vector};
use proptest::prelude::*;

/// Strategy producing small finite vectors of the given length.
fn vector(len: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(-10.0f64..10.0, len).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn dot_product_is_commutative(a in vector(6), b in vector(6)) {
        let ab = a.dot(&b).unwrap();
        let ba = b.dot(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn cauchy_schwarz_holds(a in vector(5), b in vector(5)) {
        let dot = a.dot(&b).unwrap().abs();
        prop_assert!(dot <= a.norm2() * b.norm2() + 1e-9);
    }

    #[test]
    fn l1_normalization_yields_distribution(a in vector(8)) {
        let n = a.normalized_l1().unwrap();
        prop_assert!((n.sum() - 1.0).abs() < 1e-9);
        prop_assert!(n.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn l2_normalization_yields_unit_vector(a in vector(8)) {
        let n = a.normalized_l2().unwrap();
        prop_assert!((n.norm2() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f64..50.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut data = Vec::with_capacity(rows * cols);
        let mut state = seed;
        for _ in 0..rows * cols {
            // Simple xorshift so the matrix content is derived from the seed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push((state % 1000) as f64 / 100.0 - 5.0);
        }
        let m = Matrix::from_flat(rows, cols, data).unwrap();
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn design_matrix_stays_invertible(xs in prop::collection::vec(vector(4), 1..20)) {
        // A = I + sum x x' is SPD regardless of the observed contexts, so the
        // Cholesky factorization must always succeed and solving must round-trip.
        let mut a = Matrix::identity(4);
        for x in &xs {
            a.add_outer_product(x, 1.0).unwrap();
        }
        let chol = Cholesky::new(&a).unwrap();
        let b = Vector::from(vec![1.0, -1.0, 0.5, 2.0]);
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for i in 0..4 {
            prop_assert!((back[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn sherman_morrison_matches_direct_inverse(xs in prop::collection::vec(vector(3), 1..15)) {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        let mut a = Matrix::identity(3);
        for x in &xs {
            inc.update(x).unwrap();
            a.add_outer_product(x, 1.0).unwrap();
        }
        let direct = Cholesky::new(&a).unwrap().inverse();
        prop_assert!(inc.inverse().max_abs_diff(&direct).unwrap() < 1e-6);
    }

    #[test]
    fn quadratic_form_is_nonnegative(xs in prop::collection::vec(vector(3), 0..10), probe in vector(3)) {
        let mut inc = RankOneInverse::identity(3, 1.0).unwrap();
        for x in &xs {
            inc.update(x).unwrap();
        }
        let q = inc.quadratic_form(&probe).unwrap();
        prop_assert!(q >= -1e-9);
    }
}
