//! Error type for the bandit substrate.

use p2b_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Error returned by bandit-policy construction, action selection and updates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BanditError {
    /// A configuration parameter was invalid (zero arms, NaN exploration rate, ...).
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// The observed context had a different dimension than the policy expects.
    ContextDimensionMismatch {
        /// Dimension the policy was configured with.
        expected: usize,
        /// Dimension of the offending context.
        found: usize,
    },
    /// The action index is outside `0..num_actions`.
    InvalidAction {
        /// Offending action index.
        action: usize,
        /// Number of actions the policy was configured with.
        num_actions: usize,
    },
    /// A reward outside the `[0, 1]` range required by the paper's setting.
    InvalidReward {
        /// Offending reward value.
        reward: f64,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for BanditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BanditError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            BanditError::ContextDimensionMismatch { expected, found } => write!(
                f,
                "context dimension mismatch: policy expects {expected}, observed {found}"
            ),
            BanditError::InvalidAction {
                action,
                num_actions,
            } => write!(
                f,
                "action index {action} out of range for {num_actions} actions"
            ),
            BanditError::InvalidReward { reward } => {
                write!(f, "reward {reward} outside the [0, 1] range")
            }
            BanditError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for BanditError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BanditError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for BanditError {
    fn from(e: LinalgError) -> Self {
        BanditError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BanditError::ContextDimensionMismatch {
            expected: 10,
            found: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));

        let e = BanditError::InvalidAction {
            action: 7,
            num_actions: 5,
        };
        assert!(e.to_string().contains('7'));

        let e = BanditError::InvalidReward { reward: 2.0 };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn wraps_linalg_errors_with_source() {
        let inner = LinalgError::Empty;
        let e = BanditError::from(inner.clone());
        assert!(e.to_string().contains("linear algebra"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<BanditError>();
    }
}
