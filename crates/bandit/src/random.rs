//! Uniformly random policy, the weakest baseline.

use crate::policy::{check_action, check_context, check_reward, random_action};
use crate::{Action, BanditError, ContextualPolicy, Reward};
use p2b_linalg::Vector;

/// A policy that ignores both context and feedback and picks uniformly at
/// random.
///
/// Its expected reward equals the average reward over arms, which anchors the
/// bottom of every figure: any learning policy must clear this line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomPolicy {
    context_dimension: usize,
    num_actions: usize,
    observations: u64,
}

impl RandomPolicy {
    /// Creates a random policy over `num_actions` arms.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] when either argument is zero.
    pub fn new(context_dimension: usize, num_actions: usize) -> Result<Self, BanditError> {
        if context_dimension == 0 || num_actions == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "dimensions",
                message: "context_dimension and num_actions must be at least 1".to_owned(),
            });
        }
        Ok(Self {
            context_dimension,
            num_actions,
            observations: 0,
        })
    }
}

impl ContextualPolicy for RandomPolicy {
    fn num_actions(&self) -> usize {
        self.num_actions
    }

    fn context_dimension(&self) -> usize {
        self.context_dimension
    }

    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        check_context(self.context_dimension, context)?;
        Ok(random_action(self.num_actions, rng))
    }

    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError> {
        check_context(self.context_dimension, context)?;
        check_action(self.num_actions, action)?;
        check_reward(reward)?;
        self.observations += 1;
        Ok(())
    }

    fn observations(&self) -> u64 {
        self.observations
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_all_arms_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut policy = RandomPolicy::new(1, 4).unwrap();
        let ctx = Vector::from(vec![1.0]);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[policy.select_action(&ctx, &mut rng).unwrap().index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn update_counts_observations_but_learns_nothing() {
        let mut policy = RandomPolicy::new(2, 3).unwrap();
        policy
            .update(&Vector::zeros(2), Action::new(1), 1.0)
            .unwrap();
        assert_eq!(policy.observations(), 1);
        assert_eq!(policy.name(), "random");
    }

    #[test]
    fn validates_construction_and_inputs() {
        assert!(RandomPolicy::new(0, 3).is_err());
        assert!(RandomPolicy::new(3, 0).is_err());
        let mut policy = RandomPolicy::new(2, 3).unwrap();
        assert!(policy
            .update(&Vector::zeros(2), Action::new(7), 0.5)
            .is_err());
    }
}
