//! Disjoint-arm LinUCB (Li et al. 2010; Chu et al. 2011).

use crate::policy::{check_action, check_context, check_reward, random_action};
use crate::{Action, BanditError, ContextualPolicy, Reward};
use p2b_linalg::{
    Matrix, RankOneInverse, ScoreArena, ScoreArenaF32, ScoreScratch, ScoreScratchF32,
    UpdateScratch, Vector,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a [`LinUcb`] policy.
///
/// `alpha` controls the exploration/exploitation trade-off exactly as in the
/// paper (α ≥ 0); the experiments all use α = 1. `regularizer` is the ridge
/// parameter λ of the per-arm design matrix `A_a = λI + Σ x xᵀ` (the paper
/// uses the standard λ = 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinUcbConfig {
    /// Context dimension `d`.
    pub context_dimension: usize,
    /// Number of arms `A`.
    pub num_actions: usize,
    /// Exploration parameter `α ≥ 0`.
    pub alpha: f64,
    /// Ridge regularization `λ > 0`.
    pub regularizer: f64,
}

impl LinUcbConfig {
    /// Creates a configuration with the paper's defaults (α = 1, λ = 1).
    ///
    /// ```
    /// let cfg = p2b_bandit::LinUcbConfig::new(10, 20);
    /// assert_eq!(cfg.alpha, 1.0);
    /// ```
    #[must_use]
    pub fn new(context_dimension: usize, num_actions: usize) -> Self {
        Self {
            context_dimension,
            num_actions,
            alpha: 1.0,
            regularizer: 1.0,
        }
    }

    /// Sets the exploration parameter α.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the ridge regularizer λ.
    #[must_use]
    pub fn with_regularizer(mut self, regularizer: f64) -> Self {
        self.regularizer = regularizer;
        self
    }

    fn validate(&self) -> Result<(), BanditError> {
        if self.context_dimension == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_actions == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "num_actions",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(BanditError::InvalidConfig {
                parameter: "alpha",
                message: format!("must be a finite non-negative number, got {}", self.alpha),
            });
        }
        if !self.regularizer.is_finite() || self.regularizer <= 0.0 {
            return Err(BanditError::InvalidConfig {
                parameter: "regularizer",
                message: format!("must be a finite positive number, got {}", self.regularizer),
            });
        }
        Ok(())
    }
}

/// The sufficient statistics of `count` identical observations: the same
/// context vector was observed with the same action `count` times, with
/// rewards summing to `reward_sum`.
///
/// This is what LinUCB's ridge regression actually needs from repeated
/// observations: the design-matrix contribution is `count · x xᵀ` and the
/// reward-vector contribution is `reward_sum · x`, so a batch of `N` reports
/// over `K` distinct `(context, action)` pairs folds in `K` matrix
/// operations via [`LinUcb::update_batch`] instead of `N`.
///
/// # Example
///
/// ```
/// use p2b_bandit::{Action, CoalescedUpdate};
/// use p2b_linalg::Vector;
///
/// # fn main() -> Result<(), p2b_bandit::BanditError> {
/// // 12 identical observations with 9 total reward, folded as one update.
/// let update = CoalescedUpdate::new(Vector::from(vec![0.5, 0.5]), Action::new(1), 12, 9.0)?;
/// assert_eq!(update.count(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoalescedUpdate {
    context: Vector,
    action: Action,
    count: u64,
    reward_sum: f64,
}

impl CoalescedUpdate {
    /// Creates a coalesced update.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] when `count` is zero and
    /// [`BanditError::InvalidReward`] when `reward_sum` is not a finite
    /// number in `[0, count]` — the only range reachable by summing `count`
    /// rewards that each lie in `[0, 1]`.
    pub fn new(
        context: Vector,
        action: Action,
        count: u64,
        reward_sum: f64,
    ) -> Result<Self, BanditError> {
        if count == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "count",
                message: "a coalesced update must cover at least one observation".to_owned(),
            });
        }
        if !reward_sum.is_finite() || reward_sum < 0.0 || reward_sum > count as f64 {
            return Err(BanditError::InvalidReward { reward: reward_sum });
        }
        Ok(Self {
            context,
            action,
            count,
            reward_sum,
        })
    }

    /// The shared context vector of the coalesced observations.
    #[must_use]
    pub fn context(&self) -> &Vector {
        &self.context
    }

    /// The shared action of the coalesced observations.
    #[must_use]
    pub fn action(&self) -> Action {
        self.action
    }

    /// How many identical observations this update folds.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sum of the observed rewards.
    #[must_use]
    pub fn reward_sum(&self) -> f64 {
        self.reward_sum
    }
}

/// Explicit per-arm sufficient statistics for
/// [`LinUcb::from_sufficient_statistics`]: a design matrix `A_a`, a reward
/// vector `b_a`, and a pull count.
///
/// This is the exchange format of the central-DP trust model: a curator
/// accumulates the exact statistics, perturbs them (e.g. through a
/// tree-aggregation release), and rebuilds a servable model from the noisy
/// copies. The design matrix must be symmetric positive definite — noisy
/// matrices are the caller's responsibility to symmetrize and ridge-shift
/// until they are.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStatistics {
    /// The design matrix `A_a = λI + Σ x xᵀ` (possibly noisy).
    pub design: Matrix,
    /// The reward vector `b_a = Σ r·x` (possibly noisy).
    pub reward_vector: Vector,
    /// Number of pulls the statistics summarize.
    pub pulls: u64,
}

/// Per-arm sufficient statistics: `A_a⁻¹` (incrementally maintained) and `b_a`.
#[derive(Debug, Clone, PartialEq)]
struct Arm {
    inverse: RankOneInverse,
    reward_vector: Vector,
    pulls: u64,
}

impl Arm {
    fn new(dimension: usize, regularizer: f64) -> Result<Self, BanditError> {
        Ok(Self {
            inverse: RankOneInverse::identity(dimension, regularizer)?,
            reward_vector: Vector::zeros(dimension),
            pulls: 0,
        })
    }

    /// Upper confidence bound `θ_aᵀ x + α √(xᵀ A_a⁻¹ x)`.
    fn upper_confidence_bound(&self, context: &Vector, alpha: f64) -> Result<f64, BanditError> {
        let theta = self.inverse.solve(&self.reward_vector)?;
        let estimate = theta.dot(context)?;
        let bonus = self.inverse.quadratic_form(context)?.max(0.0).sqrt();
        Ok(estimate + alpha * bonus)
    }

    fn update(&mut self, context: &Vector, reward: Reward) -> Result<(), BanditError> {
        self.inverse.update(context)?;
        self.reward_vector.axpy(reward, context)?;
        self.pulls += 1;
        Ok(())
    }
}

/// Reusable scratch buffers for allocation-free action selection
/// ([`LinUcb::select_action_with`] and friends).
///
/// One `SelectScratch` serves models of any shape: buffers grow on demand.
/// The scratch carries no behavioral state — a fresh scratch and a warm one
/// produce bit-identical selections.
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    inner: ScoreScratch,
    scores: Vec<f64>,
    ties: Vec<usize>,
}

impl SelectScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable scratch buffers for the allocation-free ingest path
/// ([`LinUcb::update_coalesced_with`] / [`LinUcb::update_batch_with`]).
///
/// Wraps a linalg [`UpdateScratch`] (the `A⁻¹x` fold lane and the refresh
/// factor/column buffers) plus the per-batch touched-arm tracking used to
/// defer arena syncs to once per touched arm per batch. One `IngestScratch`
/// serves models of any shape; like every scratch in this crate it carries
/// no behavioral state — a fresh scratch and a warm one produce bit-identical
/// models.
#[derive(Debug, Clone, Default)]
pub struct IngestScratch {
    linalg: UpdateScratch,
    /// Per-arm "touched this batch" flags; sized to `num_actions` on use.
    dirty: Vec<bool>,
    /// Arm indices touched by the last [`LinUcb::update_batch_with`] call,
    /// in order of first touch.
    touched: Vec<usize>,
}

impl IngestScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm indices touched by the most recent [`LinUcb::update_batch_with`]
    /// call, in order of first touch. This is how ingest shards report their
    /// dirty-arm sets for incremental epoch assembly.
    #[must_use]
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// Resets the per-batch touch tracking for a model with `num_actions` arms.
    fn begin_batch(&mut self, num_actions: usize) {
        self.dirty.clear();
        self.dirty.resize(num_actions, false);
        self.touched.clear();
    }
}

/// Reusable scratch buffers for the f32 scoring tier
/// ([`F32Scorer::select_action_with`]).
#[derive(Debug, Clone, Default)]
pub struct SelectScratchF32 {
    inner: ScoreScratchF32,
    scores: Vec<f64>,
    ties: Vec<usize>,
}

impl SelectScratchF32 {
    /// Creates an empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Shared argmax-with-ties rule: the historical LinUCB tie-breaking
/// semantics, kept in one place so the f64 and f32 paths can never drift.
///
/// Scores within `1e-12` of the running best are collected as ties; a single
/// winner is returned without consuming randomness, multiple winners draw
/// one uniform index, and an all-NaN score vector falls back to a uniform
/// random action (unreachable with validated inputs, but the policy stays
/// total).
fn pick_best(
    scores: &[f64],
    ties: &mut Vec<usize>,
    num_actions: usize,
    rng: &mut dyn rand::RngCore,
) -> Action {
    let mut best_score = f64::NEG_INFINITY;
    ties.clear();
    for (idx, &score) in scores.iter().enumerate() {
        if score > best_score + 1e-12 {
            best_score = score;
            ties.clear();
            ties.push(idx);
        } else if (score - best_score).abs() <= 1e-12 {
            ties.push(idx);
        }
    }
    if ties.is_empty() {
        return random_action(num_actions, rng);
    }
    let choice = if ties.len() == 1 {
        ties[0]
    } else {
        use rand::Rng as _;
        ties[(*rng).gen_range(0..ties.len())]
    };
    Action::new(choice)
}

/// The disjoint-arm LinUCB contextual bandit.
///
/// Every arm `a` keeps ridge-regression statistics `(A_a, b_a)`; the policy
/// proposes the arm with the highest upper confidence bound
/// `θ_aᵀ x + α √(xᵀ A_a⁻¹ x)` and updates only the chosen arm's statistics.
/// Ties are broken uniformly at random, which matters in the early cold-start
/// rounds where all arms share identical statistics.
///
/// # Scoring paths
///
/// Selection reads a flat, element-major [`ScoreArena`] that mirrors every
/// arm's inverse and cached `θ_a = A_a⁻¹ b_a`, re-synced after each arm
/// mutation, so one pass scores all arms without allocating
/// ([`LinUcb::select_action_with`]). The per-arm [`RankOneInverse`] state is
/// the f64 source of truth; [`LinUcb::scores_reference`] evaluates the
/// historical one-arm-at-a-time path against it, and the two are bit-for-bit
/// equal by construction. An optional single-precision tier ([`F32Scorer`])
/// can be derived from a trained model for serving workloads.
///
/// # Example
///
/// ```
/// use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig};
/// use p2b_linalg::Vector;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), p2b_bandit::BanditError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut policy = LinUcb::new(LinUcbConfig::new(2, 2).with_alpha(0.5))?;
/// for _ in 0..20 {
///     let context = Vector::from(vec![1.0, 0.0]);
///     let action = policy.select_action(&context, &mut rng)?;
///     // Arm 1 is always better in this toy environment.
///     let reward = if action.index() == 1 { 1.0 } else { 0.0 };
///     policy.update(&context, action, reward)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinUcb {
    config: LinUcbConfig,
    /// Per-arm statistics behind `Arc` so cloning a model (epoch snapshot
    /// publication) is O(arms) pointer bumps, not O(arms·d²) copies, and
    /// arms untouched between epochs share storage across snapshots.
    /// Mutation goes through `Arc::make_mut` (copy-on-write).
    arms: Vec<Arc<Arm>>,
    observations: u64,
    /// Flat scoring mirror of all arms (inverse + cached θ), element-major.
    /// Derived state: re-synced from `arms` after every mutation. Shared
    /// copy-on-write across clones like the arms.
    arena: Arc<ScoreArena>,
    /// Buffer for recomputing θ during arena syncs; always `d` long.
    theta_scratch: Vec<f64>,
}

impl LinUcb {
    /// Creates a cold-start LinUCB policy.
    ///
    /// # Example
    ///
    /// A minimal pull/update loop:
    ///
    /// ```
    /// use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig};
    /// use p2b_linalg::Vector;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), p2b_bandit::BanditError> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let mut policy = LinUcb::new(LinUcbConfig::new(3, 4))?;
    /// let context = Vector::from(vec![0.5, 0.3, 0.2]);
    /// let action = policy.select_action(&context, &mut rng)?;
    /// policy.update(&context, action, 1.0)?;
    /// assert_eq!(policy.observations(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] for invalid configurations.
    pub fn new(config: LinUcbConfig) -> Result<Self, BanditError> {
        config.validate()?;
        let arms = (0..config.num_actions)
            .map(|_| Arm::new(config.context_dimension, config.regularizer).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        let arena = Arc::new(ScoreArena::new(
            config.num_actions,
            config.context_dimension,
        )?);
        let mut policy = Self {
            config,
            arms,
            observations: 0,
            arena,
            theta_scratch: vec![0.0; config.context_dimension],
        };
        for idx in 0..policy.config.num_actions {
            policy.sync_arm(idx)?;
        }
        Ok(policy)
    }

    /// Builds a LinUCB policy directly from explicit per-arm sufficient
    /// statistics instead of replaying observations.
    ///
    /// Each arm's inverse is recovered with one Cholesky factorization of
    /// the provided design matrix ([`RankOneInverse::from_matrix`]); the
    /// reward vectors and pull counts are adopted as-is, and the model's
    /// observation count is the sum of the pulls. This is how a central-DP
    /// curator publishes a servable snapshot assembled from noisy
    /// tree-aggregation releases.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] for an invalid configuration,
    /// a statistics count differing from `num_actions`, or mis-shaped
    /// matrices/vectors, and [`BanditError::Linalg`] when a design matrix is
    /// not symmetric positive definite.
    pub fn from_sufficient_statistics(
        config: LinUcbConfig,
        statistics: &[ArmStatistics],
    ) -> Result<Self, BanditError> {
        config.validate()?;
        if statistics.len() != config.num_actions {
            return Err(BanditError::InvalidConfig {
                parameter: "statistics",
                message: format!(
                    "expected statistics for {} arms, got {}",
                    config.num_actions,
                    statistics.len()
                ),
            });
        }
        let d = config.context_dimension;
        let mut arms = Vec::with_capacity(statistics.len());
        let mut observations = 0u64;
        for (idx, stats) in statistics.iter().enumerate() {
            if stats.design.rows() != d || stats.design.cols() != d {
                return Err(BanditError::InvalidConfig {
                    parameter: "design",
                    message: format!(
                        "arm {idx}: expected a {d}x{d} design matrix, got {}x{}",
                        stats.design.rows(),
                        stats.design.cols()
                    ),
                });
            }
            if stats.reward_vector.len() != d {
                return Err(BanditError::InvalidConfig {
                    parameter: "reward_vector",
                    message: format!(
                        "arm {idx}: expected a length-{d} reward vector, got {}",
                        stats.reward_vector.len()
                    ),
                });
            }
            arms.push(Arc::new(Arm {
                inverse: RankOneInverse::from_matrix(&stats.design)?,
                reward_vector: stats.reward_vector.clone(),
                pulls: stats.pulls,
            }));
            observations += stats.pulls;
        }
        let arena = Arc::new(ScoreArena::new(config.num_actions, d)?);
        let mut policy = Self {
            config,
            arms,
            observations,
            arena,
            theta_scratch: vec![0.0; d],
        };
        for idx in 0..policy.config.num_actions {
            policy.sync_arm(idx)?;
        }
        Ok(policy)
    }

    /// Re-derives arm `idx`'s scoring lanes (inverse mirror + cached θ) from
    /// its `RankOneInverse` source of truth. Must be called after every
    /// mutation of that arm; every mutating method in this impl does so.
    ///
    /// θ is recomputed with the exact `A⁻¹ b` matvec the historical path ran
    /// at selection time, so cached and recomputed values are bit-identical.
    fn sync_arm(&mut self, idx: usize) -> Result<(), BanditError> {
        let Self {
            arms,
            arena,
            theta_scratch,
            ..
        } = self;
        let arm = arms[idx].as_ref();
        arm.inverse
            .solve_into(arm.reward_vector.as_slice(), theta_scratch)?;
        Arc::make_mut(arena).load_arm(idx, arm.inverse.inverse(), theta_scratch)?;
        Ok(())
    }

    /// The configuration the policy was built with.
    #[must_use]
    pub fn config(&self) -> &LinUcbConfig {
        &self.config
    }

    /// Number of times arm `action` has been pulled.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn pulls(&self, action: Action) -> Result<u64, BanditError> {
        check_action(self.config.num_actions, action)?;
        Ok(self.arms[action.index()].pulls)
    }

    /// The ridge-regression point estimate `θ_a = A_a⁻¹ b_a` for an arm.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn theta(&self, action: Action) -> Result<Vector, BanditError> {
        check_action(self.config.num_actions, action)?;
        let arm = &self.arms[action.index()];
        Ok(arm.inverse.solve(&arm.reward_vector)?)
    }

    /// Upper-confidence-bound scores for every arm under `context`.
    ///
    /// Exposed so that callers (e.g. the evaluation harness) can inspect the
    /// full score vector instead of just the argmax. Computed from the
    /// scoring arena; bit-for-bit equal to [`LinUcb::scores_reference`].
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized contexts.
    pub fn scores(&self, context: &Vector) -> Result<Vec<f64>, BanditError> {
        check_context(self.config.context_dimension, context)?;
        let mut scratch = ScoreScratch::new();
        let mut out = vec![0.0; self.config.num_actions];
        self.arena.ucb_scores_into(
            context.as_slice(),
            self.config.alpha,
            &mut scratch,
            &mut out,
        )?;
        Ok(out)
    }

    /// Upper-confidence-bound scores via the historical scalar path: per arm,
    /// solve `θ_a = A_a⁻¹ b_a`, take `θ_aᵀx`, and add `α·√(xᵀA_a⁻¹x)`.
    ///
    /// This is the pre-arena implementation, preserved verbatim as the f64
    /// source of truth. The arena path ([`LinUcb::scores`]) performs the
    /// identical floating-point sequence per arm and must stay bit-for-bit
    /// equal; tests and the `select` benchmark pin that equivalence.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized contexts.
    pub fn scores_reference(&self, context: &Vector) -> Result<Vec<f64>, BanditError> {
        check_context(self.config.context_dimension, context)?;
        self.arms
            .iter()
            .map(|arm| arm.upper_confidence_bound(context, self.config.alpha))
            .collect()
    }

    /// The accumulated design matrix `A_a = λI + Σ x xᵀ` of an arm — one half
    /// of its sufficient statistics.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn design(&self, action: Action) -> Result<&Matrix, BanditError> {
        check_action(self.config.num_actions, action)?;
        Ok(self.arms[action.index()].inverse.design())
    }

    /// The accumulated reward vector `b_a = Σ r·x` of an arm — the other half
    /// of its sufficient statistics.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn reward_vector(&self, action: Action) -> Result<&Vector, BanditError> {
        check_action(self.config.num_actions, action)?;
        Ok(&self.arms[action.index()].reward_vector)
    }

    /// Folds the sufficient statistics of `count` identical observations into
    /// the chosen arm in one weighted Sherman–Morrison step
    /// ([`p2b_linalg::RankOneInverse::update_weighted`]): `A_a += count·x xᵀ`,
    /// `b_a += reward_sum·x`.
    ///
    /// Singleton groups remain bit-for-bit identical to the per-report
    /// [`ContextualPolicy::update`] path: `update_weighted` delegates a
    /// weight of exactly 1 to the plain rank-1 update, and the reward-vector
    /// and pull arithmetic below coincide at `count == 1`.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] /
    /// [`BanditError::InvalidAction`] for mis-shaped inputs.
    pub fn update_coalesced(&mut self, update: &CoalescedUpdate) -> Result<(), BanditError> {
        check_context(self.config.context_dimension, update.context())?;
        check_action(self.config.num_actions, update.action())?;
        let idx = update.action().index();
        let arm = Arc::make_mut(&mut self.arms[idx]);
        arm.inverse
            .update_weighted(update.context(), update.count() as f64)?;
        arm.reward_vector
            .axpy(update.reward_sum(), update.context())?;
        arm.pulls += update.count();
        self.observations += update.count();
        self.sync_arm(idx)?;
        Ok(())
    }

    /// The coalesced fold without the arena sync, through a caller-owned
    /// [`UpdateScratch`]. Shared by the `_with` entry points; the caller is
    /// responsible for re-syncing the touched arm before the model is scored.
    fn fold_coalesced(
        &mut self,
        update: &CoalescedUpdate,
        scratch: &mut UpdateScratch,
    ) -> Result<usize, BanditError> {
        check_context(self.config.context_dimension, update.context())?;
        check_action(self.config.num_actions, update.action())?;
        let idx = update.action().index();
        let arm = Arc::make_mut(&mut self.arms[idx]);
        arm.inverse
            .update_weighted_with(update.context(), update.count() as f64, scratch)?;
        arm.reward_vector
            .axpy(update.reward_sum(), update.context())?;
        arm.pulls += update.count();
        self.observations += update.count();
        Ok(idx)
    }

    /// Allocation-free variant of [`LinUcb::update_coalesced`] using a
    /// caller-owned [`IngestScratch`]; bit-identical resulting model (the
    /// fold runs the same weighted Sherman–Morrison kernel, and the arm is
    /// re-synced immediately).
    ///
    /// # Errors
    ///
    /// Same contract as [`LinUcb::update_coalesced`].
    pub fn update_coalesced_with(
        &mut self,
        update: &CoalescedUpdate,
        scratch: &mut IngestScratch,
    ) -> Result<(), BanditError> {
        let idx = self.fold_coalesced(update, &mut scratch.linalg)?;
        self.sync_arm(idx)?;
        Ok(())
    }

    /// Folds a batch of coalesced sufficient statistics into the model.
    ///
    /// This is the server-side ingestion primitive: a shuffled batch of `N`
    /// anonymous reports grouped by `(code, action)` becomes `K ≤ N`
    /// coalesced updates, and the model fold costs `O(K·d²)` instead of
    /// `O(N·d²)`. Returns the total number of observations folded.
    ///
    /// # Errors
    ///
    /// Propagates the first failing update; earlier updates in the batch
    /// stay applied (each update leaves the model in a valid state).
    pub fn update_batch(&mut self, updates: &[CoalescedUpdate]) -> Result<u64, BanditError> {
        let mut folded = 0u64;
        for update in updates {
            self.update_coalesced(update)?;
            folded += update.count();
        }
        Ok(folded)
    }

    /// The fast ingest path: folds a batch of coalesced sufficient statistics
    /// through a caller-owned [`IngestScratch`], syncing the scoring arena
    /// **once per touched arm per batch** instead of after every fold.
    ///
    /// The resulting model is bit-identical to [`LinUcb::update_batch`]
    /// (pinned by the `update_agreement` proptests): each fold runs the same
    /// weighted Sherman–Morrison kernel, and an arm's arena lanes are a pure
    /// function of its final `(A⁻¹, b)` state, so syncing once after the last
    /// fold yields the same lanes as syncing after every fold. What changes
    /// is the cost: the per-mutation `O(d²)` solve + strided arena scatter is
    /// amortized over all of a batch's folds into the same arm.
    ///
    /// After the call, [`IngestScratch::touched`] lists the arms this batch
    /// mutated (in order of first touch) — the dirty set ingest shards report
    /// for incremental epoch assembly.
    ///
    /// # Errors
    ///
    /// Propagates the first failing update; earlier folds in the batch stay
    /// applied and every arm touched before the failure is re-synced, so the
    /// model remains internally consistent.
    pub fn update_batch_with(
        &mut self,
        updates: &[CoalescedUpdate],
        scratch: &mut IngestScratch,
    ) -> Result<u64, BanditError> {
        scratch.begin_batch(self.config.num_actions);
        let mut folded = 0u64;
        let mut failure = None;
        for update in updates {
            match self.fold_coalesced(update, &mut scratch.linalg) {
                Ok(idx) => {
                    if !scratch.dirty[idx] {
                        scratch.dirty[idx] = true;
                        scratch.touched.push(idx);
                    }
                    folded += update.count();
                }
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        for i in 0..scratch.touched.len() {
            self.sync_arm(scratch.touched[i])?;
        }
        match failure {
            Some(error) => Err(error),
            None => Ok(folded),
        }
    }

    /// Resets one arm to its cold-start state (design `λI`, zero reward
    /// vector, zero pulls), subtracting the arm's pulls from the model's
    /// observation count.
    ///
    /// Together with [`LinUcb::merge_arm`] this is the incremental epoch
    /// assembly primitive: a persistent assembled model re-derives a dirty
    /// arm by resetting it and re-merging that arm from every shard, leaving
    /// clean arms (and their shared `Arc` storage) untouched.
    ///
    /// The subtraction is exact because every mutation path adds pulls and
    /// observations in lockstep, so `observations == Σ arm pulls` holds for
    /// any model built purely from updates and merges.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn reset_arm(&mut self, action: Action) -> Result<(), BanditError> {
        check_action(self.config.num_actions, action)?;
        let idx = action.index();
        let old_pulls = self.arms[idx].pulls;
        self.arms[idx] = Arc::new(Arm::new(
            self.config.context_dimension,
            self.config.regularizer,
        )?);
        self.observations = self.observations.saturating_sub(old_pulls);
        self.sync_arm(idx)
    }

    /// Merges one arm's sufficient statistics from `other` into the same arm
    /// of this model — the per-arm slice of [`LinUcb::merge`], with the exact
    /// same arithmetic sequence (design sum minus one shared prior, reward
    /// vector sum, Cholesky refresh of the inverse), so re-deriving an arm
    /// via `reset_arm` + `merge_arm` per shard in shard order is bit-identical
    /// to that arm's state under a full from-scratch rebuild.
    ///
    /// Observations are accounted by the merged arm's pulls (the single-arm
    /// share of `other`'s observation count; for shard models built purely
    /// from coalesced updates, summing pull counts over arms and shards
    /// equals summing shard observation counts).
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] for incompatible models and
    /// [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn merge_arm(&mut self, action: Action, other: &LinUcb) -> Result<(), BanditError> {
        if other.config.context_dimension != self.config.context_dimension
            || other.config.num_actions != self.config.num_actions
        {
            return Err(BanditError::InvalidConfig {
                parameter: "merge_arm",
                message: format!(
                    "incompatible models: ({}, {}) vs ({}, {})",
                    self.config.context_dimension,
                    self.config.num_actions,
                    other.config.context_dimension,
                    other.config.num_actions
                ),
            });
        }
        check_action(self.config.num_actions, action)?;
        let idx = action.index();
        let theirs = other.arms[idx].as_ref();
        let mine = Arc::make_mut(&mut self.arms[idx]);
        mine.inverse.merge(&theirs.inverse)?;
        mine.reward_vector = mine.reward_vector.add(&theirs.reward_vector)?;
        mine.pulls += theirs.pulls;
        self.observations += theirs.pulls;
        self.sync_arm(idx)
    }

    /// Proposes the arm with the highest upper confidence bound without
    /// requiring mutable access — the selection rule never mutates the
    /// statistics, only the tie-breaking consumes randomness.
    ///
    /// This is what lets many agents select actions against one shared,
    /// immutable model snapshot (e.g. behind an `Arc`) without cloning it;
    /// [`ContextualPolicy::select_action`] delegates here. Allocates a small
    /// local scratch per call — per-round callers should hold a
    /// [`SelectScratch`] and use [`LinUcb::select_action_with`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized
    /// contexts.
    pub fn select_action_ref(
        &self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        let mut scratch = SelectScratch::new();
        self.select_action_with(context, rng, &mut scratch)
    }

    /// Allocation-free action selection: scores every arm against `context`
    /// in one pass over the flat scoring arena, using caller-provided
    /// scratch buffers.
    ///
    /// Selections are bit-for-bit identical to the historical scalar path
    /// ([`LinUcb::select_action_reference`]): per arm the floating-point
    /// sequence matches exactly, and the tie-breaking consumes randomness in
    /// the same pattern.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized
    /// contexts.
    pub fn select_action_with(
        &self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
        scratch: &mut SelectScratch,
    ) -> Result<Action, BanditError> {
        check_context(self.config.context_dimension, context)?;
        scratch.scores.resize(self.config.num_actions, 0.0);
        self.arena.ucb_scores_into(
            context.as_slice(),
            self.config.alpha,
            &mut scratch.inner,
            &mut scratch.scores[..self.config.num_actions],
        )?;
        Ok(pick_best(
            &scratch.scores[..self.config.num_actions],
            &mut scratch.ties,
            self.config.num_actions,
            rng,
        ))
    }

    /// Batched multi-candidate selection: selects one action per context in
    /// `contexts`, reusing the same scratch buffers across the whole batch.
    ///
    /// Selected actions are appended to `out` (which is cleared first) in
    /// input order, and randomness is consumed context by context, exactly
    /// as repeated [`LinUcb::select_action_with`] calls would.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for the first
    /// mis-sized context; earlier selections stay in `out`.
    pub fn select_actions_with(
        &self,
        contexts: &[Vector],
        rng: &mut dyn rand::RngCore,
        scratch: &mut SelectScratch,
        out: &mut Vec<Action>,
    ) -> Result<(), BanditError> {
        out.clear();
        out.reserve(contexts.len());
        for context in contexts {
            out.push(self.select_action_with(context, rng, scratch)?);
        }
        Ok(())
    }

    /// The historical scalar selection path, preserved verbatim: one arm at
    /// a time (solve, dot, quadratic form — two temporary vectors per arm),
    /// then the shared tie-breaking rule.
    ///
    /// Kept as the bit-exact reference the arena path is pinned against and
    /// as the baseline the `select` benchmark measures speedups from.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized
    /// contexts.
    pub fn select_action_reference(
        &self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        check_context(self.config.context_dimension, context)?;
        let mut best_score = f64::NEG_INFINITY;
        let mut best: Vec<usize> = Vec::new();
        for (idx, arm) in self.arms.iter().enumerate() {
            let score = arm.upper_confidence_bound(context, self.config.alpha)?;
            if score > best_score + 1e-12 {
                best_score = score;
                best.clear();
                best.push(idx);
            } else if (score - best_score).abs() <= 1e-12 {
                best.push(idx);
            }
        }
        if best.is_empty() {
            // All scores were NaN (cannot happen with validated inputs, but we
            // keep the policy total): fall back to a uniform random action.
            return Ok(random_action(self.config.num_actions, rng));
        }
        let choice = if best.len() == 1 {
            best[0]
        } else {
            use rand::Rng as _;
            best[(*rng).gen_range(0..best.len())]
        };
        Ok(Action::new(choice))
    }

    /// Merges the sufficient statistics of another LinUCB model into this one.
    ///
    /// This is the warm-start primitive: the P2B server maintains a central
    /// LinUCB model built from reported tuples, and local agents merge it
    /// into their own cold model when they receive an update.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] if the dimensions or arm counts
    /// differ.
    pub fn merge(&mut self, other: &LinUcb) -> Result<(), BanditError> {
        if other.config.context_dimension != self.config.context_dimension
            || other.config.num_actions != self.config.num_actions
        {
            return Err(BanditError::InvalidConfig {
                parameter: "merge",
                message: format!(
                    "incompatible models: ({}, {}) vs ({}, {})",
                    self.config.context_dimension,
                    self.config.num_actions,
                    other.config.context_dimension,
                    other.config.num_actions
                ),
            });
        }
        for (mine, theirs) in self.arms.iter_mut().zip(other.arms.iter()) {
            let mine = Arc::make_mut(mine);
            mine.inverse.merge(&theirs.inverse)?;
            mine.reward_vector = mine.reward_vector.add(&theirs.reward_vector)?;
            mine.pulls += theirs.pulls;
        }
        self.observations += other.observations;
        for idx in 0..self.config.num_actions {
            self.sync_arm(idx)?;
        }
        Ok(())
    }
}

/// Single-precision scoring tier derived from a trained [`LinUcb`] model.
///
/// The scorer snapshots the model's scoring arena into `f32` lanes once at
/// construction; it is read-only and never updated — all learning stays in
/// `f64` on the [`LinUcb`] source of truth, and a fresh scorer is derived
/// whenever the model changes (e.g. per served snapshot epoch).
///
/// Scores carry ~1e-7 relative error versus the f64 path, so chosen actions
/// agree whenever the best arm leads by more than f32 noise; the
/// tie-breaking rule (and its randomness consumption) is shared with the
/// f64 path via the same internal argmax.
///
/// # Example
///
/// ```
/// use p2b_bandit::{F32Scorer, LinUcb, LinUcbConfig, SelectScratchF32};
/// use p2b_linalg::Vector;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), p2b_bandit::BanditError> {
/// let model = LinUcb::new(LinUcbConfig::new(2, 3))?;
/// let scorer = F32Scorer::new(&model);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut scratch = SelectScratchF32::new();
/// let action = scorer.select_action_with(&Vector::from(vec![0.5, 0.5]), &mut rng, &mut scratch)?;
/// assert!(action.index() < 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct F32Scorer {
    config: LinUcbConfig,
    arena: ScoreArenaF32,
}

impl F32Scorer {
    /// Derives an f32 scoring tier from the model's current state.
    #[must_use]
    pub fn new(model: &LinUcb) -> Self {
        Self {
            config: model.config,
            arena: ScoreArenaF32::from_f64(&model.arena),
        }
    }

    /// The configuration of the model this scorer was derived from.
    #[must_use]
    pub fn config(&self) -> &LinUcbConfig {
        &self.config
    }

    /// Upper-confidence-bound scores for every arm, computed in `f32` and
    /// widened to `f64`, written into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized
    /// contexts and [`BanditError::Linalg`] if `out` is mis-sized.
    pub fn scores_into(
        &self,
        context: &Vector,
        scratch: &mut SelectScratchF32,
        out: &mut [f64],
    ) -> Result<(), BanditError> {
        check_context(self.config.context_dimension, context)?;
        self.arena.ucb_scores_into(
            context.as_slice(),
            self.config.alpha,
            &mut scratch.inner,
            out,
        )?;
        Ok(())
    }

    /// Allocation-free single-precision action selection.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized
    /// contexts.
    pub fn select_action_with(
        &self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
        scratch: &mut SelectScratchF32,
    ) -> Result<Action, BanditError> {
        check_context(self.config.context_dimension, context)?;
        scratch.scores.resize(self.config.num_actions, 0.0);
        self.arena.ucb_scores_into(
            context.as_slice(),
            self.config.alpha,
            &mut scratch.inner,
            &mut scratch.scores[..self.config.num_actions],
        )?;
        Ok(pick_best(
            &scratch.scores[..self.config.num_actions],
            &mut scratch.ties,
            self.config.num_actions,
            rng,
        ))
    }
}

impl ContextualPolicy for LinUcb {
    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn context_dimension(&self) -> usize {
        self.config.context_dimension
    }

    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        self.select_action_ref(context, rng)
    }

    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError> {
        check_context(self.config.context_dimension, context)?;
        check_action(self.config.num_actions, action)?;
        check_reward(reward)?;
        Arc::make_mut(&mut self.arms[action.index()]).update(context, reward)?;
        self.observations += 1;
        self.sync_arm(action.index())?;
        Ok(())
    }

    fn observations(&self) -> u64 {
        self.observations
    }

    fn name(&self) -> &'static str {
        "linucb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(LinUcb::new(LinUcbConfig::new(0, 3)).is_err());
        assert!(LinUcb::new(LinUcbConfig::new(3, 0)).is_err());
        assert!(LinUcb::new(LinUcbConfig::new(3, 3).with_alpha(-1.0)).is_err());
        assert!(LinUcb::new(LinUcbConfig::new(3, 3).with_alpha(f64::NAN)).is_err());
        assert!(LinUcb::new(LinUcbConfig::new(3, 3).with_regularizer(0.0)).is_err());
    }

    #[test]
    fn learns_the_better_arm() {
        let mut rng = rng();
        let mut policy = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        let context = Vector::from(vec![0.7, 0.3]);
        // Arm 1 always pays, arm 0 never does.
        for _ in 0..200 {
            let a = policy.select_action(&context, &mut rng).unwrap();
            let r = if a.index() == 1 { 1.0 } else { 0.0 };
            policy.update(&context, a, r).unwrap();
        }
        // After training, exploitation should prefer arm 1.
        let scores = policy.scores(&context).unwrap();
        assert!(scores[1] > scores[0]);
        assert!(policy.pulls(Action::new(1)).unwrap() > policy.pulls(Action::new(0)).unwrap());
    }

    #[test]
    fn distinguishes_contexts() {
        let mut rng = rng();
        let mut policy = LinUcb::new(LinUcbConfig::new(2, 2).with_alpha(0.2)).unwrap();
        let ctx_a = Vector::from(vec![1.0, 0.0]);
        let ctx_b = Vector::from(vec![0.0, 1.0]);
        for _ in 0..300 {
            for (ctx, good_arm) in [(&ctx_a, 0usize), (&ctx_b, 1usize)] {
                let a = policy.select_action(ctx, &mut rng).unwrap();
                let r = if a.index() == good_arm { 1.0 } else { 0.0 };
                policy.update(ctx, a, r).unwrap();
            }
        }
        let sa = policy.scores(&ctx_a).unwrap();
        let sb = policy.scores(&ctx_b).unwrap();
        assert!(sa[0] > sa[1], "context A should prefer arm 0: {sa:?}");
        assert!(sb[1] > sb[0], "context B should prefer arm 1: {sb:?}");
    }

    #[test]
    fn update_validates_inputs() {
        let mut policy = LinUcb::new(LinUcbConfig::new(3, 2)).unwrap();
        let ctx = Vector::zeros(3);
        assert!(policy
            .update(&Vector::zeros(2), Action::new(0), 0.5)
            .is_err());
        assert!(policy.update(&ctx, Action::new(5), 0.5).is_err());
        assert!(policy.update(&ctx, Action::new(0), 1.5).is_err());
        assert!(policy.update(&ctx, Action::new(0), 0.5).is_ok());
        assert_eq!(policy.observations(), 1);
    }

    #[test]
    fn theta_recovers_linear_reward() {
        let mut policy = LinUcb::new(LinUcbConfig::new(2, 1)).unwrap();
        // Reward is deterministic: r = 0.8*x0 + 0.2*x1.
        let contexts = [
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![0.0, 1.0]),
            Vector::from(vec![0.5, 0.5]),
            Vector::from(vec![0.3, 0.7]),
        ];
        for _ in 0..50 {
            for ctx in &contexts {
                let r = 0.8 * ctx[0] + 0.2 * ctx[1];
                policy.update(ctx, Action::new(0), r).unwrap();
            }
        }
        let theta = policy.theta(Action::new(0)).unwrap();
        assert!((theta[0] - 0.8).abs() < 0.05, "theta = {theta}");
        assert!((theta[1] - 0.2).abs() < 0.05, "theta = {theta}");
    }

    #[test]
    fn merge_transfers_knowledge() {
        let mut rng = rng();
        let context = Vector::from(vec![0.5, 0.5]);

        // A "server" model trained on many interactions.
        let mut server = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        for _ in 0..100 {
            let a = server.select_action(&context, &mut rng).unwrap();
            let r = if a.index() == 0 { 1.0 } else { 0.0 };
            server.update(&context, a, r).unwrap();
        }

        // A fresh local agent merges the server model and should immediately
        // score arm 0 above arm 1.
        let mut local = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        local.merge(&server).unwrap();
        let scores = local.scores(&context).unwrap();
        assert!(scores[0] > scores[1]);
        assert_eq!(local.observations(), server.observations());
    }

    #[test]
    fn merge_rejects_incompatible_models() {
        let mut a = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        let b = LinUcb::new(LinUcbConfig::new(3, 2)).unwrap();
        assert!(a.merge(&b).is_err());
        let c = LinUcb::new(LinUcbConfig::new(2, 4)).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn zero_alpha_is_greedy() {
        let mut rng = rng();
        let mut policy = LinUcb::new(LinUcbConfig::new(1, 2).with_alpha(0.0)).unwrap();
        let ctx = Vector::from(vec![1.0]);
        policy.update(&ctx, Action::new(0), 1.0).unwrap();
        policy.update(&ctx, Action::new(1), 0.0).unwrap();
        // With no exploration bonus the greedy arm must always be selected.
        for _ in 0..20 {
            assert_eq!(policy.select_action(&ctx, &mut rng).unwrap().index(), 0);
        }
    }

    #[test]
    fn coalesced_update_validates_its_inputs() {
        let ctx = Vector::from(vec![0.5, 0.5]);
        assert!(CoalescedUpdate::new(ctx.clone(), Action::new(0), 0, 0.0).is_err());
        assert!(CoalescedUpdate::new(ctx.clone(), Action::new(0), 3, -0.5).is_err());
        assert!(CoalescedUpdate::new(ctx.clone(), Action::new(0), 3, 3.5).is_err());
        assert!(CoalescedUpdate::new(ctx.clone(), Action::new(0), 3, f64::NAN).is_err());
        let ok = CoalescedUpdate::new(ctx, Action::new(1), 3, 3.0).unwrap();
        assert_eq!(ok.action().index(), 1);
        assert!((ok.reward_sum() - 3.0).abs() < 1e-12);

        let mut policy = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        let wrong_dim = CoalescedUpdate::new(Vector::zeros(3), Action::new(0), 1, 0.5).unwrap();
        assert!(policy.update_coalesced(&wrong_dim).is_err());
        let wrong_action = CoalescedUpdate::new(Vector::zeros(2), Action::new(7), 1, 0.5).unwrap();
        assert!(policy.update_coalesced(&wrong_action).is_err());
    }

    #[test]
    fn singleton_coalesced_updates_are_bit_identical_to_sequential() {
        let contexts = [
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![0.3, 0.7]),
            Vector::from(vec![0.5, 0.5]),
        ];
        let mut sequential = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        let mut coalesced = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        for (i, ctx) in contexts.iter().enumerate() {
            let action = Action::new(i % 2);
            let reward = (i % 2) as f64;
            sequential.update(ctx, action, reward).unwrap();
            coalesced
                .update_coalesced(&CoalescedUpdate::new(ctx.clone(), action, 1, reward).unwrap())
                .unwrap();
        }
        for a in 0..2 {
            assert_eq!(
                sequential.design(Action::new(a)).unwrap(),
                coalesced.design(Action::new(a)).unwrap()
            );
            assert_eq!(
                sequential.reward_vector(Action::new(a)).unwrap(),
                coalesced.reward_vector(Action::new(a)).unwrap()
            );
        }
        assert_eq!(sequential.observations(), coalesced.observations());
    }

    #[test]
    fn coalesced_batch_matches_per_report_ingestion() {
        // 40 reports over 4 distinct (context, action) groups.
        let groups = [
            (Vector::from(vec![1.0, 0.0]), 0usize, 14u64, 10.0),
            (Vector::from(vec![0.0, 1.0]), 1, 11, 0.0),
            (Vector::from(vec![0.5, 0.5]), 0, 9, 4.5),
            (Vector::from(vec![0.2, 0.8]), 1, 6, 6.0),
        ];
        let mut sequential = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        for (ctx, action, count, reward_sum) in &groups {
            let per_report = reward_sum / *count as f64;
            for _ in 0..*count {
                sequential
                    .update(ctx, Action::new(*action), per_report)
                    .unwrap();
            }
        }
        let updates: Vec<CoalescedUpdate> = groups
            .iter()
            .map(|(ctx, action, count, reward_sum)| {
                CoalescedUpdate::new(ctx.clone(), Action::new(*action), *count, *reward_sum)
                    .unwrap()
            })
            .collect();
        let mut coalesced = LinUcb::new(LinUcbConfig::new(2, 2)).unwrap();
        let folded = coalesced.update_batch(&updates).unwrap();
        assert_eq!(folded, 40);
        assert_eq!(coalesced.observations(), sequential.observations());
        for a in 0..2 {
            let action = Action::new(a);
            assert!(
                coalesced
                    .design(action)
                    .unwrap()
                    .max_abs_diff(sequential.design(action).unwrap())
                    .unwrap()
                    < 1e-9
            );
            let tc = coalesced.theta(action).unwrap();
            let ts = sequential.theta(action).unwrap();
            for i in 0..2 {
                assert!((tc[i] - ts[i]).abs() < 1e-9, "theta drifted: {tc} vs {ts}");
            }
            assert_eq!(
                coalesced.pulls(action).unwrap(),
                sequential.pulls(action).unwrap()
            );
        }
    }

    #[test]
    fn select_action_ref_agrees_with_the_trait_path() {
        let mut policy = LinUcb::new(LinUcbConfig::new(2, 3).with_alpha(0.1)).unwrap();
        let ctx = Vector::from(vec![0.9, 0.1]);
        for _ in 0..30 {
            policy.update(&ctx, Action::new(2), 1.0).unwrap();
            policy.update(&ctx, Action::new(0), 0.0).unwrap();
        }
        let frozen = policy.clone();
        let mut rng_a = rng();
        let mut rng_b = rng();
        for _ in 0..20 {
            let via_trait = policy.select_action(&ctx, &mut rng_a).unwrap();
            let via_ref = frozen.select_action_ref(&ctx, &mut rng_b).unwrap();
            assert_eq!(via_trait, via_ref);
        }
    }

    #[test]
    fn from_sufficient_statistics_round_trips_a_trained_model() {
        let mut rng = rng();
        let mut trained = LinUcb::new(LinUcbConfig::new(2, 3)).unwrap();
        let contexts = [
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![0.3, 0.7]),
            Vector::from(vec![0.6, 0.4]),
        ];
        for i in 0..60 {
            let ctx = &contexts[i % contexts.len()];
            let a = trained.select_action(ctx, &mut rng).unwrap();
            let r = if a.index() == i % 3 { 1.0 } else { 0.0 };
            trained.update(ctx, a, r).unwrap();
        }
        let stats: Vec<ArmStatistics> = (0..3)
            .map(|a| ArmStatistics {
                design: trained.design(Action::new(a)).unwrap().clone(),
                reward_vector: trained.reward_vector(Action::new(a)).unwrap().clone(),
                pulls: trained.pulls(Action::new(a)).unwrap(),
            })
            .collect();
        let rebuilt = LinUcb::from_sufficient_statistics(*trained.config(), &stats).unwrap();
        assert_eq!(rebuilt.observations(), trained.observations());
        let ctx = Vector::from(vec![0.5, 0.5]);
        let a = trained.scores(&ctx).unwrap();
        let b = rebuilt.scores(&ctx).unwrap();
        // The rebuilt inverse comes from one Cholesky solve rather than the
        // incremental Sherman–Morrison chain, so scores agree to solver
        // precision, not bit-for-bit.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "scores drifted: {a:?} vs {b:?}");
        }
        for arm in 0..3 {
            assert_eq!(
                rebuilt.pulls(Action::new(arm)).unwrap(),
                trained.pulls(Action::new(arm)).unwrap()
            );
        }
    }

    #[test]
    fn from_sufficient_statistics_validates_shapes() {
        let cfg = LinUcbConfig::new(2, 2);
        let good = ArmStatistics {
            design: Matrix::identity(2),
            reward_vector: Vector::zeros(2),
            pulls: 0,
        };
        // Wrong arm count.
        assert!(LinUcb::from_sufficient_statistics(cfg, std::slice::from_ref(&good)).is_err());
        // Wrong matrix shape.
        let bad_design = ArmStatistics {
            design: Matrix::identity(3),
            ..good.clone()
        };
        assert!(LinUcb::from_sufficient_statistics(cfg, &[good.clone(), bad_design]).is_err());
        // Wrong vector length.
        let bad_vector = ArmStatistics {
            reward_vector: Vector::zeros(3),
            ..good.clone()
        };
        assert!(LinUcb::from_sufficient_statistics(cfg, &[good.clone(), bad_vector]).is_err());
        // Non-SPD design matrix.
        let mut indefinite = Matrix::identity(2);
        indefinite.set(0, 0, -1.0);
        let non_spd = ArmStatistics {
            design: indefinite,
            ..good.clone()
        };
        assert!(matches!(
            LinUcb::from_sufficient_statistics(cfg, &[good, non_spd]),
            Err(BanditError::Linalg(_))
        ));
    }

    #[test]
    fn cold_start_breaks_ties_randomly() {
        let mut rng = rng();
        let mut policy = LinUcb::new(LinUcbConfig::new(2, 10)).unwrap();
        let ctx = Vector::from(vec![0.5, 0.5]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(policy.select_action(&ctx, &mut rng).unwrap().index());
        }
        // All arms have identical statistics, so over 100 draws we should see
        // substantially more than one distinct arm.
        assert!(seen.len() > 3, "tie-breaking looks deterministic: {seen:?}");
    }
}
