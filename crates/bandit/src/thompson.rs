//! Linear Thompson sampling (Agrawal & Goyal 2013 style, diagonal-Gaussian posterior sampling).

use crate::policy::{check_action, check_context, check_reward, random_action};
use crate::{Action, BanditError, ContextualPolicy, Reward};
use p2b_linalg::{RankOneInverse, Vector};
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Configuration of a [`LinearThompsonSampling`] policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThompsonConfig {
    /// Context dimension `d`.
    pub context_dimension: usize,
    /// Number of arms `A`.
    pub num_actions: usize,
    /// Posterior scale `v`; larger values explore more aggressively.
    pub posterior_scale: f64,
    /// Ridge regularization of the per-arm design matrix.
    pub regularizer: f64,
}

impl ThompsonConfig {
    /// Creates a configuration with posterior scale 1 and λ = 1.
    #[must_use]
    pub fn new(context_dimension: usize, num_actions: usize) -> Self {
        Self {
            context_dimension,
            num_actions,
            posterior_scale: 1.0,
            regularizer: 1.0,
        }
    }

    /// Sets the posterior scale `v`.
    #[must_use]
    pub fn with_posterior_scale(mut self, scale: f64) -> Self {
        self.posterior_scale = scale;
        self
    }

    fn validate(&self) -> Result<(), BanditError> {
        if self.context_dimension == 0 || self.num_actions == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "dimensions",
                message: "context_dimension and num_actions must be at least 1".to_owned(),
            });
        }
        if !self.posterior_scale.is_finite() || self.posterior_scale <= 0.0 {
            return Err(BanditError::InvalidConfig {
                parameter: "posterior_scale",
                message: format!(
                    "must be a finite positive number, got {}",
                    self.posterior_scale
                ),
            });
        }
        if !self.regularizer.is_finite() || self.regularizer <= 0.0 {
            return Err(BanditError::InvalidConfig {
                parameter: "regularizer",
                message: format!("must be a finite positive number, got {}", self.regularizer),
            });
        }
        Ok(())
    }
}

/// Linear Thompson sampling with per-arm Gaussian posteriors.
///
/// Each arm keeps the same ridge statistics as LinUCB; instead of an upper
/// confidence bound, the policy samples a score
/// `θ̃ᵀx` where `θ̃ ~ 𝒩(θ̂, v²·diag(A⁻¹))` (a cheap diagonal approximation of
/// the full posterior covariance) and plays the argmax. The paper lists
/// alternative contextual bandit algorithms as future work; this policy is
/// included so that the interplay of P2B with posterior-sampling exploration
/// can be studied with the same harness.
#[derive(Debug, Clone)]
pub struct LinearThompsonSampling {
    config: ThompsonConfig,
    inverses: Vec<RankOneInverse>,
    reward_vectors: Vec<Vector>,
    observations: u64,
}

impl LinearThompsonSampling {
    /// Creates a cold-start Thompson-sampling policy.
    ///
    /// # Example
    ///
    /// A minimal pull/update loop:
    ///
    /// ```
    /// use p2b_bandit::{ContextualPolicy, LinearThompsonSampling, ThompsonConfig};
    /// use p2b_linalg::Vector;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), p2b_bandit::BanditError> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    /// let mut policy =
    ///     LinearThompsonSampling::new(ThompsonConfig::new(2, 2).with_posterior_scale(0.5))?;
    /// let context = Vector::from(vec![0.6, 0.4]);
    /// for _ in 0..4 {
    ///     let action = policy.select_action(&context, &mut rng)?;
    ///     policy.update(&context, action, 0.3)?;
    /// }
    /// assert_eq!(policy.observations(), 4);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] for invalid configurations.
    pub fn new(config: ThompsonConfig) -> Result<Self, BanditError> {
        config.validate()?;
        let inverses = (0..config.num_actions)
            .map(|_| RankOneInverse::identity(config.context_dimension, config.regularizer))
            .collect::<Result<Vec<_>, _>>()?;
        let reward_vectors = (0..config.num_actions)
            .map(|_| Vector::zeros(config.context_dimension))
            .collect();
        Ok(Self {
            config,
            inverses,
            reward_vectors,
            observations: 0,
        })
    }

    /// The configuration the policy was built with.
    #[must_use]
    pub fn config(&self) -> &ThompsonConfig {
        &self.config
    }

    fn sample_score(
        &self,
        arm: usize,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<f64, BanditError> {
        let inv = &self.inverses[arm];
        let theta = inv.solve(&self.reward_vectors[arm])?;
        let mean = theta.dot(context)?;
        // Diagonal posterior approximation: the sampled deviation along the
        // context direction has variance v² · xᵀA⁻¹x.
        let var = inv.quadratic_form(context)?.max(0.0);
        let noise: f64 = StandardNormal.sample(&mut *rng);
        Ok(mean + self.config.posterior_scale * var.sqrt() * noise)
    }
}

impl ContextualPolicy for LinearThompsonSampling {
    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn context_dimension(&self) -> usize {
        self.config.context_dimension
    }

    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        check_context(self.config.context_dimension, context)?;
        let mut scores = Vec::with_capacity(self.config.num_actions);
        for arm in 0..self.config.num_actions {
            scores.push(self.sample_score(arm, context, rng)?);
        }
        match p2b_linalg::argmax(&scores) {
            Some(idx) => Ok(Action::new(idx)),
            None => Ok(random_action(self.config.num_actions, rng)),
        }
    }

    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError> {
        check_context(self.config.context_dimension, context)?;
        check_action(self.config.num_actions, action)?;
        check_reward(reward)?;
        self.inverses[action.index()].update(context)?;
        self.reward_vectors[action.index()].axpy(reward, context)?;
        self.observations += 1;
        Ok(())
    }

    fn observations(&self) -> u64 {
        self.observations
    }

    fn name(&self) -> &'static str {
        "linear-thompson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_configurations() {
        assert!(LinearThompsonSampling::new(ThompsonConfig::new(0, 2)).is_err());
        assert!(LinearThompsonSampling::new(ThompsonConfig::new(2, 0)).is_err());
        assert!(
            LinearThompsonSampling::new(ThompsonConfig::new(2, 2).with_posterior_scale(0.0))
                .is_err()
        );
    }

    #[test]
    fn learns_the_better_arm() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut policy =
            LinearThompsonSampling::new(ThompsonConfig::new(2, 2).with_posterior_scale(0.3))
                .unwrap();
        let ctx = Vector::from(vec![0.6, 0.4]);
        for _ in 0..400 {
            let a = policy.select_action(&ctx, &mut rng).unwrap();
            let r = if a.index() == 1 { 1.0 } else { 0.0 };
            policy.update(&ctx, a, r).unwrap();
        }
        // Count selections over a fresh evaluation window.
        let mut arm1 = 0;
        for _ in 0..100 {
            if policy.select_action(&ctx, &mut rng).unwrap().index() == 1 {
                arm1 += 1;
            }
        }
        assert!(arm1 > 70, "arm 1 selected only {arm1}/100 times");
    }

    #[test]
    fn exploration_covers_all_arms_early() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut policy = LinearThompsonSampling::new(ThompsonConfig::new(1, 6)).unwrap();
        let ctx = Vector::from(vec![1.0]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let a = policy.select_action(&ctx, &mut rng).unwrap();
            seen.insert(a.index());
            policy.update(&ctx, a, 0.5).unwrap();
        }
        assert!(seen.len() >= 5, "saw only {seen:?}");
    }

    #[test]
    fn validates_update_inputs() {
        let mut policy = LinearThompsonSampling::new(ThompsonConfig::new(2, 2)).unwrap();
        assert!(policy
            .update(&Vector::zeros(1), Action::new(0), 0.5)
            .is_err());
        assert!(policy
            .update(&Vector::zeros(2), Action::new(3), 0.5)
            .is_err());
        assert!(policy
            .update(&Vector::zeros(2), Action::new(0), f64::INFINITY)
            .is_err());
    }
}
