//! The contextual-bandit policy abstraction shared by all algorithms.

use crate::BanditError;
use p2b_linalg::Vector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reward obtained for a proposed action, constrained to `[0, 1]` as in the
/// paper's problem statement (`r_{t,a} ∈ [0, 1]`).
pub type Reward = f64;

/// A selected arm / action.
///
/// Newtype over the arm index so that the action space cannot be confused
/// with context codes or label indices elsewhere in the workspace.
///
/// ```
/// let a = p2b_bandit::Action::new(3);
/// assert_eq!(a.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action(usize);

impl Action {
    /// Wraps an arm index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying arm index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Action {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl From<Action> for usize {
    fn from(action: Action) -> Self {
        action.0
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A contextual-bandit policy.
///
/// At each round the agent observes a `d`-dimensional context, proposes one
/// of `A` actions and then observes the reward of the *chosen* action only
/// (bandit feedback). Implementations must be deterministic given the RNG
/// passed in, so that experiments are reproducible from a seed.
///
/// The trait is object-safe: the simulation engine stores heterogeneous
/// policies as `Box<dyn ContextualPolicy>`.
pub trait ContextualPolicy: Send {
    /// Number of arms the policy selects between.
    fn num_actions(&self) -> usize;

    /// Dimension of the context vectors the policy expects.
    fn context_dimension(&self) -> usize;

    /// Proposes an action for the observed context.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] when the context
    /// dimension is wrong.
    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError>;

    /// Feeds back the reward observed for `action` under `context`.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions,
    /// [`BanditError::InvalidReward`] for rewards outside `[0, 1]` and
    /// [`BanditError::ContextDimensionMismatch`] for mis-sized contexts.
    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError>;

    /// Total number of `update` calls the policy has absorbed.
    fn observations(&self) -> u64;

    /// Short human-readable policy name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Validates that a context matches the expected dimension.
pub(crate) fn check_context(expected: usize, context: &Vector) -> Result<(), BanditError> {
    if context.len() != expected {
        return Err(BanditError::ContextDimensionMismatch {
            expected,
            found: context.len(),
        });
    }
    Ok(())
}

/// Validates that an action index is within range.
pub(crate) fn check_action(num_actions: usize, action: Action) -> Result<(), BanditError> {
    if action.index() >= num_actions {
        return Err(BanditError::InvalidAction {
            action: action.index(),
            num_actions,
        });
    }
    Ok(())
}

/// Validates that a reward lies in `[0, 1]`.
pub(crate) fn check_reward(reward: Reward) -> Result<(), BanditError> {
    if !reward.is_finite() || !(0.0..=1.0).contains(&reward) {
        return Err(BanditError::InvalidReward { reward });
    }
    Ok(())
}

/// Draws a uniformly random action, used by several policies for exploration.
pub(crate) fn random_action(num_actions: usize, rng: &mut dyn rand::RngCore) -> Action {
    // `gen_range` needs a `Rng`, which `&mut dyn RngCore` provides via the
    // blanket impl for mutable references.
    let idx = (*rng).gen_range(0..num_actions);
    Action::new(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_round_trips_through_usize() {
        let a = Action::from(5usize);
        assert_eq!(usize::from(a), 5);
        assert_eq!(a.to_string(), "a5");
    }

    #[test]
    fn validators_accept_valid_input() {
        assert!(check_context(3, &Vector::zeros(3)).is_ok());
        assert!(check_action(4, Action::new(3)).is_ok());
        assert!(check_reward(0.0).is_ok());
        assert!(check_reward(1.0).is_ok());
    }

    #[test]
    fn validators_reject_invalid_input() {
        assert!(check_context(3, &Vector::zeros(2)).is_err());
        assert!(check_action(4, Action::new(4)).is_err());
        assert!(check_reward(-0.1).is_err());
        assert!(check_reward(1.1).is_err());
        assert!(check_reward(f64::NAN).is_err());
    }

    #[test]
    fn random_action_is_in_range() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        for _ in 0..50 {
            let a = random_action(7, &mut rng);
            assert!(a.index() < 7);
        }
    }
}
