//! Cumulative reward and regret accounting.

use serde::{Deserialize, Serialize};

/// Running statistics over the rewards obtained by a policy.
///
/// The experiments report *average reward* (synthetic benchmarks),
/// *accuracy* (multi-label, where the reward is 0/1 correctness) and *CTR*
/// (Criteo, where the reward is 0/1 click-through); all three are the mean of
/// the observed rewards, which this tracker maintains in O(1) per step along
/// with optional regret against the per-round optimum.
///
/// ```
/// let mut t = p2b_bandit::RewardTracker::new();
/// t.record(1.0);
/// t.record_with_optimum(0.0, 1.0);
/// assert_eq!(t.count(), 2);
/// assert!((t.average_reward() - 0.5).abs() < 1e-12);
/// assert!((t.cumulative_regret() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RewardTracker {
    count: u64,
    total_reward: f64,
    total_squared_reward: f64,
    total_optimum: f64,
}

/// Immutable summary of a [`RewardTracker`], convenient for serialization
/// into experiment result files.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardSummary {
    /// Number of recorded rounds.
    pub count: u64,
    /// Mean observed reward.
    pub average_reward: f64,
    /// Standard deviation of the observed rewards.
    pub reward_stddev: f64,
    /// Cumulative regret against the recorded optima (0 when no optima were recorded).
    pub cumulative_regret: f64,
}

impl RewardTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed reward without regret accounting.
    pub fn record(&mut self, reward: f64) {
        self.record_with_optimum(reward, reward);
    }

    /// Records an observed reward along with the best achievable reward of
    /// the round, enabling regret computation.
    pub fn record_with_optimum(&mut self, reward: f64, optimum: f64) {
        self.count += 1;
        self.total_reward += reward;
        self.total_squared_reward += reward * reward;
        self.total_optimum += optimum;
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded rewards.
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.total_reward
    }

    /// Mean recorded reward (0.0 when nothing was recorded).
    #[must_use]
    pub fn average_reward(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_reward / self.count as f64
    }

    /// Standard deviation of the recorded rewards.
    #[must_use]
    pub fn reward_stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.total_reward / n;
        (self.total_squared_reward / n - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Total regret `Σ (optimum − reward)` over rounds recorded with an optimum.
    #[must_use]
    pub fn cumulative_regret(&self) -> f64 {
        self.total_optimum - self.total_reward
    }

    /// Merges the counts of another tracker into this one.
    pub fn merge(&mut self, other: &RewardTracker) {
        self.count += other.count;
        self.total_reward += other.total_reward;
        self.total_squared_reward += other.total_squared_reward;
        self.total_optimum += other.total_optimum;
    }

    /// Produces an immutable summary snapshot.
    #[must_use]
    pub fn summary(&self) -> RewardSummary {
        RewardSummary {
            count: self.count,
            average_reward: self.average_reward(),
            reward_stddev: self.reward_stddev(),
            cumulative_regret: self.cumulative_regret(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zeros() {
        let t = RewardTracker::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.average_reward(), 0.0);
        assert_eq!(t.reward_stddev(), 0.0);
        assert_eq!(t.cumulative_regret(), 0.0);
    }

    #[test]
    fn averages_and_regret() {
        let mut t = RewardTracker::new();
        t.record_with_optimum(0.5, 1.0);
        t.record_with_optimum(1.0, 1.0);
        t.record_with_optimum(0.0, 0.5);
        assert_eq!(t.count(), 3);
        assert!((t.average_reward() - 0.5).abs() < 1e-12);
        assert!((t.cumulative_regret() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_matches_population_formula() {
        let mut t = RewardTracker::new();
        for r in [0.0, 0.0, 1.0, 1.0] {
            t.record(r);
        }
        assert!((t.reward_stddev() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one_tracker() {
        let rewards_a = [0.2, 0.4, 0.9];
        let rewards_b = [0.1, 1.0];
        let mut a = RewardTracker::new();
        let mut b = RewardTracker::new();
        let mut combined = RewardTracker::new();
        for &r in &rewards_a {
            a.record(r);
            combined.record(r);
        }
        for &r in &rewards_b {
            b.record(r);
            combined.record(r);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn summary_round_trips_fields() {
        let mut t = RewardTracker::new();
        t.record_with_optimum(0.25, 1.0);
        let s = t.summary();
        assert_eq!(s.count, 1);
        assert!((s.average_reward - 0.25).abs() < 1e-12);
        assert!((s.cumulative_regret - 0.75).abs() < 1e-12);
    }
}
