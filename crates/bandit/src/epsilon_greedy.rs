//! ε-greedy contextual baseline with per-arm linear value estimates.

use crate::policy::{check_action, check_context, check_reward, random_action};
use crate::{Action, BanditError, ContextualPolicy, Reward};
use p2b_linalg::{RankOneInverse, Vector};
use serde::{Deserialize, Serialize};

/// Configuration of an [`EpsilonGreedy`] policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedyConfig {
    /// Context dimension `d`.
    pub context_dimension: usize,
    /// Number of arms `A`.
    pub num_actions: usize,
    /// Probability of taking a uniformly random exploratory action.
    pub epsilon: f64,
    /// Ridge regularization of the per-arm linear value estimate.
    pub regularizer: f64,
}

impl EpsilonGreedyConfig {
    /// Creates a configuration with ε = 0.1 and λ = 1.
    #[must_use]
    pub fn new(context_dimension: usize, num_actions: usize) -> Self {
        Self {
            context_dimension,
            num_actions,
            epsilon: 0.1,
            regularizer: 1.0,
        }
    }

    /// Sets the exploration probability ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    fn validate(&self) -> Result<(), BanditError> {
        if self.context_dimension == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_actions == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "num_actions",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.epsilon.is_finite() || !(0.0..=1.0).contains(&self.epsilon) {
            return Err(BanditError::InvalidConfig {
                parameter: "epsilon",
                message: format!("must lie in [0, 1], got {}", self.epsilon),
            });
        }
        if !self.regularizer.is_finite() || self.regularizer <= 0.0 {
            return Err(BanditError::InvalidConfig {
                parameter: "regularizer",
                message: format!("must be a finite positive number, got {}", self.regularizer),
            });
        }
        Ok(())
    }
}

/// ε-greedy linear contextual bandit.
///
/// With probability ε the policy explores uniformly at random; otherwise it
/// exploits the per-arm ridge-regression estimate `θ_aᵀ x`. It is used as an
/// ablation baseline against LinUCB's confidence-driven exploration.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    config: EpsilonGreedyConfig,
    inverses: Vec<RankOneInverse>,
    reward_vectors: Vec<Vector>,
    observations: u64,
}

impl EpsilonGreedy {
    /// Creates a cold-start ε-greedy policy.
    ///
    /// # Example
    ///
    /// A minimal pull/update loop:
    ///
    /// ```
    /// use p2b_bandit::{ContextualPolicy, EpsilonGreedy, EpsilonGreedyConfig};
    /// use p2b_linalg::Vector;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), p2b_bandit::BanditError> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let mut policy = EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 3).with_epsilon(0.2))?;
    /// let context = Vector::from(vec![0.7, 0.3]);
    /// for _ in 0..5 {
    ///     let action = policy.select_action(&context, &mut rng)?;
    ///     policy.update(&context, action, 0.5)?;
    /// }
    /// assert_eq!(policy.observations(), 5);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] for invalid configurations.
    pub fn new(config: EpsilonGreedyConfig) -> Result<Self, BanditError> {
        config.validate()?;
        let inverses = (0..config.num_actions)
            .map(|_| RankOneInverse::identity(config.context_dimension, config.regularizer))
            .collect::<Result<Vec<_>, _>>()?;
        let reward_vectors = (0..config.num_actions)
            .map(|_| Vector::zeros(config.context_dimension))
            .collect();
        Ok(Self {
            config,
            inverses,
            reward_vectors,
            observations: 0,
        })
    }

    /// The configuration the policy was built with.
    #[must_use]
    pub fn config(&self) -> &EpsilonGreedyConfig {
        &self.config
    }

    /// Greedy value estimates `θ_aᵀ x` for every arm.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::ContextDimensionMismatch`] for mis-sized contexts.
    pub fn estimates(&self, context: &Vector) -> Result<Vec<f64>, BanditError> {
        check_context(self.config.context_dimension, context)?;
        self.inverses
            .iter()
            .zip(self.reward_vectors.iter())
            .map(|(inv, b)| {
                let theta = inv.solve(b)?;
                Ok(theta.dot(context)?)
            })
            .collect()
    }
}

impl ContextualPolicy for EpsilonGreedy {
    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn context_dimension(&self) -> usize {
        self.config.context_dimension
    }

    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        check_context(self.config.context_dimension, context)?;
        use rand::Rng as _;
        if (*rng).gen::<f64>() < self.config.epsilon {
            return Ok(random_action(self.config.num_actions, rng));
        }
        let estimates = self.estimates(context)?;
        let best = p2b_linalg::argmax(&estimates).unwrap_or(0);
        Ok(Action::new(best))
    }

    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError> {
        check_context(self.config.context_dimension, context)?;
        check_action(self.config.num_actions, action)?;
        check_reward(reward)?;
        self.inverses[action.index()].update(context)?;
        self.reward_vectors[action.index()].axpy(reward, context)?;
        self.observations += 1;
        Ok(())
    }

    fn observations(&self) -> u64 {
        self.observations
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_configurations() {
        assert!(EpsilonGreedy::new(EpsilonGreedyConfig::new(0, 2)).is_err());
        assert!(EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 0)).is_err());
        assert!(EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 2).with_epsilon(1.5)).is_err());
        assert!(EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 2).with_epsilon(f64::NAN)).is_err());
    }

    #[test]
    fn zero_epsilon_is_fully_greedy() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy =
            EpsilonGreedy::new(EpsilonGreedyConfig::new(1, 2).with_epsilon(0.0)).unwrap();
        let ctx = Vector::from(vec![1.0]);
        policy.update(&ctx, Action::new(1), 1.0).unwrap();
        policy.update(&ctx, Action::new(0), 0.0).unwrap();
        for _ in 0..20 {
            assert_eq!(policy.select_action(&ctx, &mut rng).unwrap().index(), 1);
        }
    }

    #[test]
    fn full_epsilon_explores_all_arms() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy =
            EpsilonGreedy::new(EpsilonGreedyConfig::new(1, 5).with_epsilon(1.0)).unwrap();
        let ctx = Vector::from(vec![1.0]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(policy.select_action(&ctx, &mut rng).unwrap().index());
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn learns_context_dependent_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut policy =
            EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 2).with_epsilon(0.2)).unwrap();
        let ctx_a = Vector::from(vec![1.0, 0.0]);
        let ctx_b = Vector::from(vec![0.0, 1.0]);
        for _ in 0..300 {
            for (ctx, good) in [(&ctx_a, 0usize), (&ctx_b, 1usize)] {
                let a = policy.select_action(ctx, &mut rng).unwrap();
                let r = if a.index() == good { 1.0 } else { 0.0 };
                policy.update(ctx, a, r).unwrap();
            }
        }
        let ea = policy.estimates(&ctx_a).unwrap();
        let eb = policy.estimates(&ctx_b).unwrap();
        assert!(ea[0] > ea[1]);
        assert!(eb[1] > eb[0]);
    }

    #[test]
    fn update_validates_inputs() {
        let mut policy = EpsilonGreedy::new(EpsilonGreedyConfig::new(2, 2)).unwrap();
        assert!(policy
            .update(&Vector::zeros(3), Action::new(0), 0.5)
            .is_err());
        assert!(policy
            .update(&Vector::zeros(2), Action::new(9), 0.5)
            .is_err());
        assert!(policy
            .update(&Vector::zeros(2), Action::new(0), -1.0)
            .is_err());
    }
}
