//! Contextual-bandit substrate for the P2B reproduction.
//!
//! The paper's local agents run LinUCB (Chu et al. 2011; Li et al. 2010) —
//! a linear upper-confidence-bound contextual bandit. This crate provides:
//!
//! * the [`ContextualPolicy`] trait shared by every policy,
//! * [`LinUcb`], the disjoint-arm LinUCB implementation used throughout the
//!   paper's experiments,
//! * baselines used for comparison and ablation: [`EpsilonGreedy`],
//!   [`Ucb1`] (context-free), [`LinearThompsonSampling`] and
//!   [`RandomPolicy`],
//! * [`RewardTracker`] for cumulative-reward / regret accounting.
//!
//! # Example
//!
//! ```
//! use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig};
//! use p2b_linalg::Vector;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), p2b_bandit::BanditError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut policy = LinUcb::new(LinUcbConfig::new(4, 3))?;
//! let context = Vector::from(vec![0.1, 0.4, 0.3, 0.2]);
//! let action = policy.select_action(&context, &mut rng)?;
//! policy.update(&context, action, 1.0)?;
//! assert!(action.index() < 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod epsilon_greedy;
mod error;
mod linucb;
mod policy;
mod random;
mod thompson;
mod tracker;
mod ucb1;

pub use epsilon_greedy::{EpsilonGreedy, EpsilonGreedyConfig};
pub use error::BanditError;
pub use linucb::{
    ArmStatistics, CoalescedUpdate, F32Scorer, IngestScratch, LinUcb, LinUcbConfig, SelectScratch,
    SelectScratchF32,
};
pub use policy::{Action, ContextualPolicy, Reward};
pub use random::RandomPolicy;
pub use thompson::{LinearThompsonSampling, ThompsonConfig};
pub use tracker::{RewardSummary, RewardTracker};
pub use ucb1::Ucb1;
