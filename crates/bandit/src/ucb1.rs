//! Context-free UCB1 baseline (Auer et al. 2002).

use crate::policy::{check_action, check_context, check_reward, random_action};
use crate::{Action, BanditError, ContextualPolicy, Reward};
use p2b_linalg::Vector;

/// The classic context-free UCB1 algorithm.
///
/// UCB1 ignores the context entirely and therefore lower-bounds the value of
/// contextual information: comparing LinUCB against UCB1 on the synthetic
/// preference benchmark shows how much of the reward comes from
/// personalization rather than from identifying the globally best arm.
///
/// Scores are `μ̂_a + √(2 ln t / n_a)`; unpulled arms are always tried first.
#[derive(Debug, Clone, PartialEq)]
pub struct Ucb1 {
    context_dimension: usize,
    sums: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Ucb1 {
    /// Creates a cold-start UCB1 policy.
    ///
    /// `context_dimension` is recorded only so the policy can validate the
    /// contexts it is handed (it never uses their values).
    ///
    /// # Example
    ///
    /// A minimal pull/update loop (UCB1 tries every arm once first):
    ///
    /// ```
    /// use p2b_bandit::{ContextualPolicy, Ucb1};
    /// use p2b_linalg::Vector;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), p2b_bandit::BanditError> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    /// let mut policy = Ucb1::new(2, 3)?;
    /// let context = Vector::from(vec![0.5, 0.5]);
    /// for _ in 0..3 {
    ///     let action = policy.select_action(&context, &mut rng)?;
    ///     policy.update(&context, action, 0.8)?;
    /// }
    /// // Every arm has been pulled exactly once.
    /// for arm in 0..3 {
    ///     assert_eq!(policy.pulls(p2b_bandit::Action::new(arm))?, 1);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidConfig`] when `num_actions == 0` or
    /// `context_dimension == 0`.
    pub fn new(context_dimension: usize, num_actions: usize) -> Result<Self, BanditError> {
        if num_actions == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "num_actions",
                message: "must be at least 1".to_owned(),
            });
        }
        if context_dimension == 0 {
            return Err(BanditError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(Self {
            context_dimension,
            sums: vec![0.0; num_actions],
            counts: vec![0; num_actions],
            total: 0,
        })
    }

    /// Empirical mean reward of an arm (0.0 if the arm was never pulled).
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn empirical_mean(&self, action: Action) -> Result<f64, BanditError> {
        check_action(self.sums.len(), action)?;
        let n = self.counts[action.index()];
        if n == 0 {
            return Ok(0.0);
        }
        Ok(self.sums[action.index()] / n as f64)
    }

    /// Number of pulls of an arm.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidAction`] for out-of-range actions.
    pub fn pulls(&self, action: Action) -> Result<u64, BanditError> {
        check_action(self.sums.len(), action)?;
        Ok(self.counts[action.index()])
    }
}

impl ContextualPolicy for Ucb1 {
    fn num_actions(&self) -> usize {
        self.sums.len()
    }

    fn context_dimension(&self) -> usize {
        self.context_dimension
    }

    fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, BanditError> {
        check_context(self.context_dimension, context)?;
        // Pull any arm that has never been tried, in index order.
        if let Some(idx) = self.counts.iter().position(|&c| c == 0) {
            return Ok(Action::new(idx));
        }
        let t = self.total.max(1) as f64;
        let scores: Vec<f64> = self
            .sums
            .iter()
            .zip(self.counts.iter())
            .map(|(&s, &n)| s / n as f64 + (2.0 * t.ln() / n as f64).sqrt())
            .collect();
        match p2b_linalg::argmax(&scores) {
            Some(idx) => Ok(Action::new(idx)),
            None => Ok(random_action(self.sums.len(), rng)),
        }
    }

    fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: Reward,
    ) -> Result<(), BanditError> {
        check_context(self.context_dimension, context)?;
        check_action(self.sums.len(), action)?;
        check_reward(reward)?;
        self.sums[action.index()] += reward;
        self.counts[action.index()] += 1;
        self.total += 1;
        Ok(())
    }

    fn observations(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "ucb1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tries_every_arm_before_repeating() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = Ucb1::new(1, 4).unwrap();
        let ctx = Vector::from(vec![1.0]);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let a = policy.select_action(&ctx, &mut rng).unwrap();
            seen.push(a.index());
            policy.update(&ctx, a, 0.5).unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn converges_to_best_arm() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = Ucb1::new(1, 3).unwrap();
        let ctx = Vector::from(vec![1.0]);
        // Arm 2 has the highest deterministic reward.
        let means = [0.1, 0.3, 0.9];
        for _ in 0..500 {
            let a = policy.select_action(&ctx, &mut rng).unwrap();
            policy.update(&ctx, a, means[a.index()]).unwrap();
        }
        let best_pulls = policy.pulls(Action::new(2)).unwrap();
        assert!(best_pulls > 300, "best arm pulled only {best_pulls} times");
        assert!((policy.empirical_mean(Action::new(2)).unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        assert!(Ucb1::new(1, 0).is_err());
        assert!(Ucb1::new(0, 3).is_err());
        let mut policy = Ucb1::new(2, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(policy.select_action(&Vector::zeros(1), &mut rng).is_err());
        assert!(policy
            .update(&Vector::zeros(2), Action::new(0), 2.0)
            .is_err());
        assert!(policy.empirical_mean(Action::new(5)).is_err());
    }
}
