//! Agreement pins between the LinUCB ingest paths.
//!
//! Three ways to fold coalesced sufficient statistics exist after the
//! raw-speed pass on the ingest hot path:
//!
//! 1. the historical reference (`update_coalesced` / `update_batch`), which
//!    allocates its linalg scratch internally and re-syncs the scoring arena
//!    after every fold,
//! 2. the per-update scratch path (`update_coalesced_with`), which threads a
//!    caller-owned [`IngestScratch`] through the same weighted
//!    Sherman–Morrison kernel,
//! 3. the batched fast path (`update_batch_with`), which additionally defers
//!    the arena sync to **once per touched arm per batch**.
//!
//! All three must produce **bit-for-bit** identical models: designs, reward
//! vectors, pulls, thetas, arena-resident scores, and the downstream action
//! stream an agent would draw from the model. The incremental-assembly
//! primitives (`reset_arm` / `merge_arm`) are pinned here too: re-deriving
//! an arm by reset + per-shard merge must reproduce the full-merge bits.

use p2b_bandit::{Action, CoalescedUpdate, ContextualPolicy, IngestScratch, LinUcb, LinUcbConfig};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_context(d: usize, rng: &mut StdRng) -> Vector {
    let raw: Vector = (0..d).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    raw.normalized_l1().unwrap()
}

/// A random batch of well-formed coalesced updates: counts in `1..20`,
/// reward sums in `[0, count]`, actions across the whole arm range.
fn random_batch(d: usize, a: usize, len: usize, rng: &mut StdRng) -> Vec<CoalescedUpdate> {
    (0..len)
        .map(|_| {
            let count = rng.gen_range(1u64..20);
            let reward_sum = rng.gen_range(0.0..=count as f64);
            CoalescedUpdate::new(
                random_context(d, rng),
                Action::new(rng.gen_range(0..a)),
                count,
                reward_sum,
            )
            .unwrap()
        })
        .collect()
}

/// Asserts two models carry bit-identical state: observation counts, per-arm
/// pulls, design matrices, reward vectors, thetas, and the arena-resident
/// scores actually served to agents.
fn check_models_bit_identical(left: &LinUcb, right: &LinUcb, seed: u64) {
    let d = left.config().context_dimension;
    let a = left.config().num_actions;
    prop_assert_eq!(left.observations(), right.observations());
    for arm in 0..a {
        let action = Action::new(arm);
        prop_assert_eq!(left.pulls(action).unwrap(), right.pulls(action).unwrap());
        let (dl, dr) = (left.design(action).unwrap(), right.design(action).unwrap());
        for (x, y) in dl.as_slice().iter().zip(dr.as_slice().iter()) {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "design bits diverged on arm {}",
                arm
            );
        }
        let (bl, br) = (
            left.reward_vector(action).unwrap(),
            right.reward_vector(action).unwrap(),
        );
        for (x, y) in bl.iter().zip(br.iter()) {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "reward vector diverged on arm {}",
                arm
            );
        }
        let (tl, tr) = (left.theta(action).unwrap(), right.theta(action).unwrap());
        for (x, y) in tl.iter().zip(tr.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "theta diverged on arm {}", arm);
        }
    }
    // Scores go through the flat arena — this is what pins the deferred
    // arena sync: a missed or stale lane shows up here even when the arm
    // statistics above agree.
    let mut ctx_rng = StdRng::seed_from_u64(seed.wrapping_add(101));
    for _ in 0..4 {
        let ctx = random_context(d, &mut ctx_rng);
        let (sl, sr) = (left.scores(&ctx).unwrap(), right.scores(&ctx).unwrap());
        for (arm, (x, y)) in sl.iter().zip(sr.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "arena score diverged on arm {}",
                arm
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over random dims, arm counts and batch shapes, the batched scratch
    /// path and the per-update scratch path must produce models bit-identical
    /// to the reference fold — state, scores, and the downstream action
    /// stream drawn with identical RNGs.
    #[test]
    fn scratch_ingest_paths_are_bit_identical_to_the_reference(
        seed in any::<u64>(),
        d in 1usize..8,
        a in 1usize..10,
        batches in 1usize..4,
        len in 1usize..12,
    ) {
        let mut reference = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut batched = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut single = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut scratch = IngestScratch::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..batches {
            let batch = random_batch(d, a, len, &mut rng);
            let folded_reference = reference.update_batch(&batch).unwrap();
            let folded_batched = batched.update_batch_with(&batch, &mut scratch).unwrap();
            prop_assert_eq!(folded_reference, folded_batched);
            for update in &batch {
                single.update_coalesced_with(update, &mut scratch).unwrap();
            }
            check_models_bit_identical(&reference, &batched, seed);
            check_models_bit_identical(&reference, &single, seed);
        }

        // The models must be indistinguishable downstream: identical action
        // streams under identical randomness.
        let mut ctx_rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let mut rng_reference = StdRng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(1));
        let mut rng_batched = rng_reference.clone();
        let mut rng_single = rng_reference.clone();
        for _ in 0..10 {
            let ctx = random_context(d, &mut ctx_rng);
            let via_reference = reference.select_action(&ctx, &mut rng_reference).unwrap();
            let via_batched = batched.select_action(&ctx, &mut rng_batched).unwrap();
            let via_single = single.select_action(&ctx, &mut rng_single).unwrap();
            prop_assert_eq!(via_reference, via_batched);
            prop_assert_eq!(via_batched, via_single);
        }
        prop_assert_eq!(&rng_reference, &rng_batched);
        prop_assert_eq!(&rng_batched, &rng_single);
    }

    /// After a batched fold, [`IngestScratch::touched`] lists exactly the
    /// distinct arms the batch mutated, in order of first touch.
    #[test]
    fn touched_reports_distinct_arms_in_first_touch_order(
        seed in any::<u64>(),
        d in 1usize..6,
        a in 1usize..8,
        len in 1usize..20,
    ) {
        let mut model = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut scratch = IngestScratch::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = random_batch(d, a, len, &mut rng);
        model.update_batch_with(&batch, &mut scratch).unwrap();
        let mut expected = Vec::new();
        for update in &batch {
            let idx = update.action().index();
            if !expected.contains(&idx) {
                expected.push(idx);
            }
        }
        prop_assert_eq!(scratch.touched(), expected.as_slice());
    }

    /// Re-deriving every arm of a stale model via `reset_arm` + per-shard
    /// `merge_arm` reproduces a full from-scratch merge bit-for-bit — the
    /// incremental epoch assembly primitive.
    #[test]
    fn reset_and_merge_arm_rebuild_matches_a_full_merge(
        seed in any::<u64>(),
        d in 1usize..6,
        a in 1usize..6,
        len in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shard_one = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut shard_two = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        shard_one.update_batch(&random_batch(d, a, len, &mut rng)).unwrap();
        shard_two.update_batch(&random_batch(d, a, len, &mut rng)).unwrap();

        // Reference: a from-scratch rebuild over both shards.
        let mut rebuilt = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        rebuilt.merge(&shard_one).unwrap();
        rebuilt.merge(&shard_two).unwrap();

        // Incremental: start from a *stale* assembly (shard one only, an
        // extra batch folded in) and re-derive every arm.
        let mut incremental = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        incremental.merge(&shard_one).unwrap();
        incremental.update_batch(&random_batch(d, a, len, &mut rng)).unwrap();
        for arm in 0..a {
            let action = Action::new(arm);
            incremental.reset_arm(action).unwrap();
            incremental.merge_arm(action, &shard_one).unwrap();
            incremental.merge_arm(action, &shard_two).unwrap();
        }
        check_models_bit_identical(&rebuilt, &incremental, seed);
    }
}

/// A failing update mid-batch must leave the model internally consistent:
/// the folds before the failure stay applied and their arms are re-synced,
/// so the model equals a reference that folded the valid prefix.
#[test]
fn mid_batch_failure_keeps_touched_arms_synced() {
    let mut rng = StdRng::seed_from_u64(3);
    let (d, a) = (4, 3);
    let mut reference = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    let mut fast = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    let mut scratch = IngestScratch::new();

    let prefix = random_batch(d, a, 6, &mut rng);
    let mut batch = prefix.clone();
    // A mis-dimensioned context passes construction but fails at fold time.
    batch.push(CoalescedUpdate::new(Vector::zeros(d + 1), Action::new(0), 1, 1.0).unwrap());
    batch.extend(random_batch(d, a, 2, &mut rng));

    reference.update_batch(&prefix).unwrap();
    assert!(fast.update_batch_with(&batch, &mut scratch).is_err());

    assert_eq!(reference.observations(), fast.observations());
    let probe = random_context(d, &mut rng);
    let scores_reference = reference.scores(&probe).unwrap();
    let scores_fast = fast.scores(&probe).unwrap();
    for (x, y) in scores_reference.iter().zip(scores_fast.iter()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "arena lanes must reflect the applied prefix after a failed batch"
        );
    }
}

/// One scratch serves models of different shapes back to back: every
/// `ensure_*` resize leaves no stale state behind.
#[test]
fn one_ingest_scratch_serves_models_of_different_shapes() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut scratch = IngestScratch::new();
    for &(d, a) in &[(2usize, 3usize), (6, 2), (3, 7), (2, 3)] {
        let mut reference = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let mut fast = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
        let batch = random_batch(d, a, 8, &mut rng);
        reference.update_batch(&batch).unwrap();
        fast.update_batch_with(&batch, &mut scratch).unwrap();
        assert_eq!(reference.observations(), fast.observations());
        let probe = random_context(d, &mut rng);
        let scores_reference = reference.scores(&probe).unwrap();
        let scores_fast = fast.scores(&probe).unwrap();
        for (x, y) in scores_reference.iter().zip(scores_fast.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Resetting an arm restores its cold-start statistics (and only its own):
/// other arms keep their exact bits and the observation count drops by the
/// reset arm's pulls.
#[test]
fn reset_arm_restores_cold_start_statistics() {
    let mut rng = StdRng::seed_from_u64(21);
    let (d, a) = (3, 4);
    let mut model = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    model
        .update_batch(&random_batch(d, a, 20, &mut rng))
        .unwrap();
    let cold = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();

    let target = Action::new(1);
    let before = model.clone();
    let target_pulls = model.pulls(target).unwrap();
    model.reset_arm(target).unwrap();

    assert_eq!(model.pulls(target).unwrap(), 0);
    assert_eq!(
        model.observations(),
        before.observations() - target_pulls,
        "observations must drop by exactly the reset arm's pulls"
    );
    for (x, y) in model
        .design(target)
        .unwrap()
        .as_slice()
        .iter()
        .zip(cold.design(target).unwrap().as_slice().iter())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for arm in 0..a {
        if arm == target.index() {
            continue;
        }
        let action = Action::new(arm);
        assert_eq!(model.pulls(action).unwrap(), before.pulls(action).unwrap());
        for (x, y) in model
            .design(action)
            .unwrap()
            .as_slice()
            .iter()
            .zip(before.design(action).unwrap().as_slice().iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "untouched arm {arm} changed");
        }
    }
}

/// `merge_arm` rejects shape-incompatible models and out-of-range arms with
/// typed errors, never panics.
#[test]
fn merge_arm_rejects_incompatible_inputs() {
    let mut model = LinUcb::new(LinUcbConfig::new(3, 4)).unwrap();
    let other_dim = LinUcb::new(LinUcbConfig::new(5, 4)).unwrap();
    let other_arms = LinUcb::new(LinUcbConfig::new(3, 2)).unwrap();
    let compatible = LinUcb::new(LinUcbConfig::new(3, 4)).unwrap();
    assert!(model.merge_arm(Action::new(0), &other_dim).is_err());
    assert!(model.merge_arm(Action::new(0), &other_arms).is_err());
    assert!(model.merge_arm(Action::new(9), &compatible).is_err());
    assert!(model.reset_arm(Action::new(9)).is_err());
    assert!(model.merge_arm(Action::new(0), &compatible).is_ok());
}
