//! Property-based and cross-policy integration tests for the bandit substrate.

use p2b_bandit::{
    Action, ContextualPolicy, EpsilonGreedy, EpsilonGreedyConfig, LinUcb, LinUcbConfig,
    LinearThompsonSampling, RandomPolicy, RewardTracker, ThompsonConfig, Ucb1,
};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds one instance of every policy with the same action/context space.
fn all_policies(d: usize, a: usize) -> Vec<Box<dyn ContextualPolicy>> {
    vec![
        Box::new(LinUcb::new(LinUcbConfig::new(d, a)).unwrap()),
        Box::new(EpsilonGreedy::new(EpsilonGreedyConfig::new(d, a)).unwrap()),
        Box::new(LinearThompsonSampling::new(ThompsonConfig::new(d, a)).unwrap()),
        Box::new(Ucb1::new(d, a).unwrap()),
        Box::new(RandomPolicy::new(d, a).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every policy must return an in-range action for any valid context and
    /// accept the resulting update without error.
    #[test]
    fn policies_always_return_valid_actions(
        seed in any::<u64>(),
        d in 1usize..6,
        a in 1usize..8,
        raw in prop::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut context_data = raw.clone();
        context_data.resize(d, 0.5);
        let context = Vector::from(context_data).normalized_l1().unwrap();
        for mut policy in all_policies(d, a) {
            let action = policy.select_action(&context, &mut rng).unwrap();
            prop_assert!(action.index() < a);
            policy.update(&context, action, 0.5).unwrap();
            prop_assert_eq!(policy.observations(), 1);
        }
    }

    /// Policies reject contexts whose dimension does not match the configuration.
    #[test]
    fn policies_reject_mis_sized_contexts(seed in any::<u64>(), d in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wrong = Vector::zeros(d - 1);
        for mut policy in all_policies(d, 3) {
            prop_assert!(policy.select_action(&wrong, &mut rng).is_err());
            prop_assert!(policy.update(&wrong, Action::new(0), 0.5).is_err());
        }
    }

    /// Rewards outside [0, 1] are rejected by every policy.
    #[test]
    fn policies_reject_out_of_range_rewards(bad in prop_oneof![Just(-0.5f64), Just(1.5f64), Just(f64::NAN)]) {
        let ctx = Vector::from(vec![0.5, 0.5]);
        for mut policy in all_policies(2, 2) {
            prop_assert!(policy.update(&ctx, Action::new(0), bad).is_err());
        }
    }
}

/// A simple deterministic environment where arm (i mod A) is optimal for
/// basis-vector context e_i. Learning policies must beat the random baseline.
#[test]
fn learning_policies_beat_random_baseline() {
    let d = 4;
    let a = 4;
    let rounds = 1500;

    let run = |policy: &mut dyn ContextualPolicy, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = RewardTracker::new();
        for t in 0..rounds {
            let ctx = Vector::basis(d, t % d);
            let action = policy.select_action(&ctx, &mut rng).unwrap();
            let reward = if action.index() == t % a { 1.0 } else { 0.0 };
            policy.update(&ctx, action, reward).unwrap();
            tracker.record_with_optimum(reward, 1.0);
        }
        tracker.average_reward()
    };

    let mut linucb = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    let mut egreedy = EpsilonGreedy::new(EpsilonGreedyConfig::new(d, a)).unwrap();
    let mut thompson = LinearThompsonSampling::new(ThompsonConfig::new(d, a)).unwrap();
    let mut random = RandomPolicy::new(d, a).unwrap();

    let r_linucb = run(&mut linucb, 1);
    let r_egreedy = run(&mut egreedy, 2);
    let r_thompson = run(&mut thompson, 3);
    let r_random = run(&mut random, 4);

    assert!(
        r_linucb > r_random + 0.2,
        "LinUCB {r_linucb:.3} vs random {r_random:.3}"
    );
    assert!(
        r_egreedy > r_random + 0.2,
        "eps-greedy {r_egreedy:.3} vs random {r_random:.3}"
    );
    assert!(
        r_thompson > r_random + 0.2,
        "Thompson {r_thompson:.3} vs random {r_random:.3}"
    );
}

/// LinUCB with a warm-start merge should reach high reward faster than a cold
/// model over a short horizon — the micro-scale version of the paper's
/// cold/warm comparison.
#[test]
fn warm_started_linucb_outperforms_cold_start_on_short_horizon() {
    let d = 3;
    let a = 5;
    let ctxs: Vec<Vector> = (0..d).map(|i| Vector::basis(d, i)).collect();
    let optimal = |ctx: &Vector| ctx.argmax().unwrap() % a;

    // Train a "server" model on plenty of data.
    let mut server = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    for t in 0..3000 {
        let ctx = &ctxs[t % d];
        let action = server.select_action(ctx, &mut rng).unwrap();
        let reward = if action.index() == optimal(ctx) {
            1.0
        } else {
            0.0
        };
        server.update(ctx, action, reward).unwrap();
    }

    let evaluate = |policy: &mut LinUcb, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = RewardTracker::new();
        for t in 0..30 {
            let ctx = &ctxs[t % d];
            let action = policy.select_action(ctx, &mut rng).unwrap();
            let reward = if action.index() == optimal(ctx) {
                1.0
            } else {
                0.0
            };
            policy.update(ctx, action, reward).unwrap();
            tracker.record(reward);
        }
        tracker.average_reward()
    };

    let mut cold = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    let mut warm = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    warm.merge(&server).unwrap();

    let cold_reward = evaluate(&mut cold, 20);
    let warm_reward = evaluate(&mut warm, 21);
    assert!(
        warm_reward > cold_reward,
        "warm {warm_reward:.3} should beat cold {cold_reward:.3} on a 30-step horizon"
    );
}
