//! Agreement pins between the LinUCB scoring paths.
//!
//! Three paths exist after the raw-speed pass on the select hot path:
//!
//! 1. the historical scalar reference (`scores_reference` /
//!    `select_action_reference`) — the f64 source of truth,
//! 2. the flat arena path (`scores` / `select_action_with` /
//!    `select_action_ref` and the trait `select_action`), which must be
//!    **bit-for-bit** equal to the reference,
//! 3. the derived f32 tier ([`F32Scorer`]), whose *chosen actions* are
//!    pinned against the f64 path across golden seeds.

use p2b_bandit::{
    ContextualPolicy, F32Scorer, LinUcb, LinUcbConfig, SelectScratch, SelectScratchF32,
};
use p2b_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trains a LinUCB model on a deterministic synthetic stream.
fn train(d: usize, a: usize, rounds: usize, seed: u64) -> LinUcb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut policy = LinUcb::new(LinUcbConfig::new(d, a)).unwrap();
    for _ in 0..rounds {
        let ctx = random_context(d, &mut rng);
        let action = policy.select_action(&ctx, &mut rng).unwrap();
        let reward = if action.index() == ctx.argmax().unwrap_or(0) % a {
            1.0
        } else {
            0.0
        };
        policy.update(&ctx, action, reward).unwrap();
    }
    policy
}

fn random_context(d: usize, rng: &mut StdRng) -> Vector {
    let raw: Vector = (0..d).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    raw.normalized_l1().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The proptest extension of `select_action_ref_agrees_with_the_trait_path`:
    /// over random dims, arm counts, training lengths and seeds, the trait
    /// path, the scratch path and the scalar reference path must pick the
    /// same action given identical RNG streams — and the score vectors must
    /// be bit-identical.
    #[test]
    fn all_select_paths_agree_over_random_models(
        seed in any::<u64>(),
        d in 1usize..8,
        a in 1usize..10,
        rounds in 0usize..40,
    ) {
        let mut policy = train(d, a, rounds, seed);
        let frozen = policy.clone();
        let mut scratch = SelectScratch::new();
        let mut ctx_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut rng_trait = StdRng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(7));
        let mut rng_with = rng_trait.clone();
        let mut rng_reference = rng_trait.clone();
        for _ in 0..12 {
            let ctx = random_context(d, &mut ctx_rng);

            let scores = frozen.scores(&ctx).unwrap();
            let reference = frozen.scores_reference(&ctx).unwrap();
            for (arm, (s, r)) in scores.iter().zip(reference.iter()).enumerate() {
                prop_assert_eq!(
                    s.to_bits(),
                    r.to_bits(),
                    "arena score for arm {} diverged from the scalar reference",
                    arm
                );
            }

            let via_trait = policy.select_action(&ctx, &mut rng_trait).unwrap();
            let via_with = frozen
                .select_action_with(&ctx, &mut rng_with, &mut scratch)
                .unwrap();
            let via_reference = frozen
                .select_action_reference(&ctx, &mut rng_reference)
                .unwrap();
            prop_assert_eq!(via_trait, via_with);
            prop_assert_eq!(via_with, via_reference);
        }
        // All three paths must have consumed randomness identically.
        prop_assert_eq!(&rng_trait, &rng_with);
        prop_assert_eq!(&rng_with, &rng_reference);
    }

    /// The batched variant consumes randomness and picks actions exactly as
    /// repeated single-context selections would.
    #[test]
    fn batched_selection_matches_sequential(
        seed in any::<u64>(),
        d in 1usize..6,
        a in 1usize..8,
        n in 1usize..10,
    ) {
        let policy = train(d, a, 20, seed);
        let mut ctx_rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let contexts: Vec<Vector> = (0..n).map(|_| random_context(d, &mut ctx_rng)).collect();

        let mut scratch = SelectScratch::new();
        let mut rng_batch = StdRng::seed_from_u64(seed.wrapping_mul(5).wrapping_add(3));
        let mut rng_seq = rng_batch.clone();

        let mut batch = Vec::new();
        policy
            .select_actions_with(&contexts, &mut rng_batch, &mut scratch, &mut batch)
            .unwrap();
        let sequential: Vec<_> = contexts
            .iter()
            .map(|ctx| {
                policy
                    .select_action_with(ctx, &mut rng_seq, &mut scratch)
                    .unwrap()
            })
            .collect();
        prop_assert_eq!(batch, sequential);
        prop_assert_eq!(&rng_batch, &rng_seq);
    }
}

/// The f32 tier's *chosen actions* are pinned against the f64 path across
/// golden seeds: deterministic models, deterministic contexts, identical RNG
/// streams. (Scores differ by ~1e-7 relative error, but the argmax — what
/// the system actually serves — must not.)
#[test]
fn f32_tier_chosen_actions_match_f64_on_golden_seeds() {
    for seed in [0u64, 7, 42, 1234, 99991] {
        let policy = train(6, 8, 300, seed);
        let scorer = F32Scorer::new(&policy);
        let mut scratch64 = SelectScratch::new();
        let mut scratch32 = SelectScratchF32::new();
        let mut ctx_rng = StdRng::seed_from_u64(seed.wrapping_add(17));
        let mut rng64 = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(1));
        let mut rng32 = rng64.clone();
        for round in 0..200 {
            let ctx = random_context(6, &mut ctx_rng);
            let a64 = policy
                .select_action_with(&ctx, &mut rng64, &mut scratch64)
                .unwrap();
            let a32 = scorer
                .select_action_with(&ctx, &mut rng32, &mut scratch32)
                .unwrap();
            assert_eq!(
                a64, a32,
                "seed {seed}, round {round}: f32 tier chose a different action"
            );
        }
        assert_eq!(rng64, rng32, "seed {seed}: RNG streams diverged");
    }
}

/// Cold-start models tie across all arms in both tiers: the f32 widening
/// preserves exact equality, so the shared tie-breaking consumes the same
/// randomness and picks the same arm.
#[test]
fn f32_tier_matches_f64_on_cold_start_ties() {
    let policy = LinUcb::new(LinUcbConfig::new(4, 10)).unwrap();
    let scorer = F32Scorer::new(&policy);
    let ctx = Vector::from(vec![0.25; 4]);
    let mut scratch64 = SelectScratch::new();
    let mut scratch32 = SelectScratchF32::new();
    let mut rng64 = StdRng::seed_from_u64(5);
    let mut rng32 = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let a64 = policy
            .select_action_with(&ctx, &mut rng64, &mut scratch64)
            .unwrap();
        let a32 = scorer
            .select_action_with(&ctx, &mut rng32, &mut scratch32)
            .unwrap();
        assert_eq!(a64, a32);
    }
}

/// Negative shape tests: the scratch-based paths return typed errors, never
/// panic, for mis-sized contexts.
#[test]
fn scratch_paths_reject_mis_sized_contexts() {
    let policy = train(3, 4, 10, 1);
    let scorer = F32Scorer::new(&policy);
    let mut scratch = SelectScratch::new();
    let mut scratch32 = SelectScratchF32::new();
    let mut rng = StdRng::seed_from_u64(0);
    let wrong = Vector::zeros(2);
    assert!(policy
        .select_action_with(&wrong, &mut rng, &mut scratch)
        .is_err());
    assert!(scorer
        .select_action_with(&wrong, &mut rng, &mut scratch32)
        .is_err());
    assert!(policy.scores(&wrong).is_err());
    assert!(policy.scores_reference(&wrong).is_err());
    let mut out = Vec::new();
    assert!(policy
        .select_actions_with(
            &[Vector::zeros(3), Vector::zeros(5)],
            &mut rng,
            &mut scratch,
            &mut out
        )
        .is_err());
    // The well-formed prefix was still selected.
    assert_eq!(out.len(), 1);
}
