//! Property-based tests for the workload substrate.

use p2b_datasets::{
    ContextualEnvironment, CriteoConfig, CriteoLikeGenerator, MultiLabelConfig, MultiLabelDataset,
    SyntheticConfig, SyntheticPreferenceEnvironment,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The synthetic environment always produces simplex contexts and rewards
    /// inside [0, 1], for any dimension/action combination.
    #[test]
    fn synthetic_environment_invariants(
        d in 2usize..16,
        a in 2usize..30,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env =
            SyntheticPreferenceEnvironment::new(SyntheticConfig::new(d, a), &mut rng).unwrap();
        for _ in 0..5 {
            let ctx = env.sample_context(&mut rng);
            prop_assert_eq!(ctx.len(), d);
            prop_assert!((ctx.sum() - 1.0).abs() < 1e-9);
            for action in 0..a {
                let r = env.sample_reward(&ctx, action, &mut rng).unwrap();
                prop_assert!((0.0..=1.0).contains(&r));
                let mean = env.expected_reward(&ctx, action).unwrap();
                prop_assert!((0.0..=0.1 + 1e-12).contains(&mean));
            }
            let opt = env.optimal_reward(&ctx).unwrap();
            for action in 0..a {
                prop_assert!(env.expected_reward(&ctx, action).unwrap() <= opt + 1e-12);
            }
        }
    }

    /// Multi-label instances never carry labels outside the configured range
    /// and the reward function agrees with label membership.
    #[test]
    fn multilabel_rewards_match_membership(
        instances in 50usize..200,
        labels in 3usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = MultiLabelDataset::generate(
            MultiLabelConfig::new(instances, 8, labels),
            &mut rng,
        ).unwrap();
        prop_assert_eq!(ds.len(), instances);
        for instance in ds.instances() {
            for action in 0..labels {
                let expected = if instance.labels().contains(&action) { 1.0 } else { 0.0 };
                prop_assert_eq!(instance.reward(action), expected);
            }
        }
    }

    /// Agent splits never duplicate an instance (sampling without replacement).
    #[test]
    fn multilabel_split_has_no_duplicates(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = MultiLabelDataset::generate(MultiLabelConfig::new(600, 6, 5), &mut rng).unwrap();
        let agents = ds.split_agents(5, 100, &mut rng).unwrap();
        // Serialize contexts to compare identity-ish: with continuous noise the
        // probability of two generated instances being bitwise identical is
        // negligible, so duplicates indicate replacement.
        let mut seen = std::collections::HashSet::new();
        let mut duplicates = 0usize;
        for agent in &agents {
            for inst in agent {
                let key: Vec<u64> = inst.context().iter().map(|x| x.to_bits()).collect();
                if !seen.insert(key) {
                    duplicates += 1;
                }
            }
        }
        prop_assert!(duplicates <= 1, "found {duplicates} duplicated instances");
    }

    /// Criteo impressions always carry codes below the configured action count.
    #[test]
    fn criteo_codes_are_in_range(codes in 4usize..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = CriteoLikeGenerator::new(
            CriteoConfig::new().with_product_codes(codes),
            &mut rng,
        ).unwrap();
        let impressions = generator.generate(2000, &mut rng).unwrap();
        prop_assert!(!impressions.is_empty());
        for imp in &impressions {
            prop_assert!(imp.product_code() < codes);
            prop_assert!((imp.context().sum() - 1.0).abs() < 1e-9);
        }
    }
}
