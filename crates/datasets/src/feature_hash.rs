//! Feature hashing (Weinberger et al. 2009).

use crate::DatasetError;
use p2b_linalg::Vector;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The hashing trick: maps arbitrary (feature, value) pairs into a
/// fixed-dimensional vector, and categorical value tuples into a single
/// bucket index.
///
/// The Criteo pipeline of Section 5.3 reduces 26 hashed categorical features
/// to one product code via feature hashing before keeping only the 40 most
/// frequent codes; [`FeatureHasher::hash_category_tuple`] implements that
/// reduction and [`FeatureHasher::hash_features`] provides the standard
/// signed-hash vector embedding for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureHasher {
    num_buckets: usize,
    seed: u64,
}

impl FeatureHasher {
    /// Creates a hasher with `num_buckets` output buckets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when `num_buckets == 0`.
    pub fn new(num_buckets: usize, seed: u64) -> Result<Self, DatasetError> {
        if num_buckets == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_buckets",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(Self { num_buckets, seed })
    }

    /// Number of output buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Hashes a tuple of categorical values (one per categorical feature)
    /// into a single bucket — the "26 categorical features → one product
    /// code" reduction of the Criteo pipeline.
    #[must_use]
    pub fn hash_category_tuple(&self, values: &[u32]) -> usize {
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        for (index, value) in values.iter().enumerate() {
            index.hash(&mut hasher);
            value.hash(&mut hasher);
        }
        (hasher.finish() % self.num_buckets as u64) as usize
    }

    /// Embeds a sparse set of named features into a dense signed-hash vector
    /// of dimension `num_buckets` (Weinberger et al. 2009): each feature adds
    /// `±weight` to the bucket selected by its hash, with the sign drawn from
    /// a second hash to keep the embedding unbiased.
    #[must_use]
    pub fn hash_features(&self, features: &[(&str, f64)]) -> Vector {
        let mut out = vec![0.0; self.num_buckets];
        for (name, weight) in features {
            let mut hasher = DefaultHasher::new();
            self.seed.hash(&mut hasher);
            name.hash(&mut hasher);
            let h = hasher.finish();
            let bucket = (h % self.num_buckets as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            out[bucket] += sign * weight;
        }
        Vector::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_buckets() {
        assert!(FeatureHasher::new(0, 1).is_err());
        assert!(FeatureHasher::new(8, 1).is_ok());
    }

    #[test]
    fn tuple_hashing_is_deterministic_and_in_range() {
        let hasher = FeatureHasher::new(40, 7).unwrap();
        let tuple = [1u32, 2, 3, 4, 5];
        let a = hasher.hash_category_tuple(&tuple);
        let b = hasher.hash_category_tuple(&tuple);
        assert_eq!(a, b);
        assert!(a < 40);
    }

    #[test]
    fn tuple_hashing_is_order_sensitive() {
        let hasher = FeatureHasher::new(1000, 7).unwrap();
        let a = hasher.hash_category_tuple(&[1, 2]);
        let b = hasher.hash_category_tuple(&[2, 1]);
        // Not guaranteed in general, but with 1000 buckets a collision of
        // these two specific tuples would indicate the position is ignored.
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_give_different_hashes() {
        let a = FeatureHasher::new(1000, 1)
            .unwrap()
            .hash_category_tuple(&[9, 9, 9]);
        let b = FeatureHasher::new(1000, 2)
            .unwrap()
            .hash_category_tuple(&[9, 9, 9]);
        assert_ne!(a, b);
    }

    #[test]
    fn feature_vector_embedding_has_requested_dimension() {
        let hasher = FeatureHasher::new(16, 3).unwrap();
        let v = hasher.hash_features(&[("color=red", 1.0), ("size=42", 2.0)]);
        assert_eq!(v.len(), 16);
        // The embedding must be non-trivial.
        assert!(v.norm1() > 0.0);
    }

    #[test]
    fn identical_features_collide_into_the_same_bucket() {
        let hasher = FeatureHasher::new(16, 3).unwrap();
        let a = hasher.hash_features(&[("country=gb", 1.0)]);
        let b = hasher.hash_features(&[("country=gb", 1.0)]);
        assert_eq!(a, b);
    }
}
