//! Preference drift: the synthetic benchmark with rotating reward means.
//!
//! Warm-starting from a privatized central model is stress-tested hardest
//! when the reward structure is *non-stationary* — the regime LDP bandit
//! work (Han et al., *Generalized Linear Bandits with Local Differential
//! Privacy*) and multi-party contextual-bandit work (Hannun et al.) care
//! about. [`DriftingPreferenceEnvironment`] makes the stationary benchmark
//! of Section 5.1 drift: every [`DriftConfig::period_rounds`] rounds the
//! action→reward mapping rotates by one position, so the action that used
//! to be optimal for a context hands its reward mass to the next one.
//! Policies (and the warm starts feeding them) must keep re-learning.

use crate::{ContextualEnvironment, DatasetError, SyntheticConfig, SyntheticPreferenceEnvironment};
use p2b_linalg::Vector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`DriftingPreferenceEnvironment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Rounds between drift steps: after every `period_rounds` rounds the
    /// reward means rotate by one action.
    pub period_rounds: u64,
}

impl DriftConfig {
    /// Creates a drift configuration rotating every `period_rounds` rounds.
    #[must_use]
    pub fn new(period_rounds: u64) -> Self {
        Self { period_rounds }
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.period_rounds == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "period_rounds",
                message: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// The synthetic preference benchmark with rotating reward means.
///
/// Wraps a [`SyntheticPreferenceEnvironment`]; at round `t` the mean reward
/// of action `a` is the base environment's mean of action
/// `(a + t / period) mod A`. The context distribution is untouched — only
/// the reward structure drifts, which isolates the policy's (and warm
/// start's) tracking ability from encoder effects.
///
/// The environment is round-aware: callers advance it explicitly with
/// [`DriftingPreferenceEnvironment::advance_round`], so one environment can
/// serve any number of users per round.
#[derive(Debug, Clone)]
pub struct DriftingPreferenceEnvironment {
    base: SyntheticPreferenceEnvironment,
    drift: DriftConfig,
    round: u64,
}

impl DriftingPreferenceEnvironment {
    /// Creates a drifting environment over a freshly sampled base benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn new<R: Rng + ?Sized>(
        config: SyntheticConfig,
        drift: DriftConfig,
        rng: &mut R,
    ) -> Result<Self, DatasetError> {
        drift.validate()?;
        Ok(Self {
            base: SyntheticPreferenceEnvironment::new(config, rng)?,
            drift,
            round: 0,
        })
    }

    /// Wraps an existing base environment (useful for comparing the drifted
    /// and stationary views of the same latent preferences).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid drift parameters.
    pub fn from_base(
        base: SyntheticPreferenceEnvironment,
        drift: DriftConfig,
    ) -> Result<Self, DatasetError> {
        drift.validate()?;
        Ok(Self {
            base,
            drift,
            round: 0,
        })
    }

    /// The drift configuration.
    #[must_use]
    pub fn drift(&self) -> &DriftConfig {
        &self.drift
    }

    /// The current round.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current rotation offset applied to action indices.
    #[must_use]
    pub fn shift(&self) -> usize {
        let num_actions = self.base.config().num_actions as u64;
        ((self.round / self.drift.period_rounds) % num_actions) as usize
    }

    /// Advances the environment by one round.
    pub fn advance_round(&mut self) {
        self.round += 1;
    }

    /// The base action whose reward the drifted `action` currently pays.
    fn rotated(&self, action: usize) -> usize {
        (action + self.shift()) % self.base.config().num_actions
    }
}

impl ContextualEnvironment for DriftingPreferenceEnvironment {
    fn context_dimension(&self) -> usize {
        self.base.context_dimension()
    }

    fn num_actions(&self) -> usize {
        self.base.num_actions()
    }

    fn sample_context(&mut self, rng: &mut dyn rand::RngCore) -> Vector {
        self.base.sample_context(rng)
    }

    fn sample_reward(
        &mut self,
        context: &Vector,
        action: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<f64, DatasetError> {
        if action >= self.num_actions() {
            // Validate against the *drifted* action space before rotating.
            return self.base.sample_reward(context, action, rng);
        }
        let rotated = self.rotated(action);
        self.base.sample_reward(context, rotated, rng)
    }

    fn expected_reward(&self, context: &Vector, action: usize) -> Result<f64, DatasetError> {
        if action >= self.num_actions() {
            return self.base.expected_reward(context, action);
        }
        self.base.expected_reward(context, self.rotated(action))
    }

    fn name(&self) -> &'static str {
        "synthetic-drift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(period: u64) -> DriftingPreferenceEnvironment {
        let mut rng = StdRng::seed_from_u64(1);
        DriftingPreferenceEnvironment::new(
            SyntheticConfig::new(4, 3).with_beta(0.9),
            DriftConfig::new(period),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_period() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(DriftingPreferenceEnvironment::new(
            SyntheticConfig::new(4, 3),
            DriftConfig::new(0),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn before_the_first_period_rewards_match_the_base() {
        let drifting = env(10);
        // Same seed, same construction stream: the base environment carries
        // the same latent weight matrix.
        let base = SyntheticPreferenceEnvironment::new(
            SyntheticConfig::new(4, 3).with_beta(0.9),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let ctx = Vector::from(vec![0.4, 0.3, 0.2, 0.1]);
        for a in 0..3 {
            assert_eq!(
                drifting.expected_reward(&ctx, a).unwrap().to_bits(),
                base.expected_reward(&ctx, a).unwrap().to_bits()
            );
        }
        assert_eq!(drifting.shift(), 0);
    }

    #[test]
    fn rotation_moves_the_optimal_action() {
        let mut env = env(5);
        let ctx = Vector::from(vec![0.7, 0.1, 0.1, 0.1]);
        let means_before: Vec<f64> = (0..3)
            .map(|a| env.expected_reward(&ctx, a).unwrap())
            .collect();
        for _ in 0..5 {
            env.advance_round();
        }
        assert_eq!(env.shift(), 1);
        let means_after: Vec<f64> = (0..3)
            .map(|a| env.expected_reward(&ctx, a).unwrap())
            .collect();
        // A one-step rotation: action a now pays what a+1 paid before.
        for a in 0..3 {
            assert_eq!(
                means_after[a].to_bits(),
                means_before[(a + 1) % 3].to_bits()
            );
        }
    }

    #[test]
    fn shift_wraps_around_the_action_count() {
        let mut env = env(1);
        for _ in 0..3 {
            env.advance_round();
        }
        assert_eq!(env.shift(), 0, "3 steps over 3 actions wraps to identity");
        assert_eq!(env.round(), 3);
    }

    #[test]
    fn out_of_range_actions_still_error() {
        let env = env(4);
        let ctx = Vector::filled(4, 0.25);
        assert!(env.expected_reward(&ctx, 3).is_err());
    }

    #[test]
    fn sampled_rewards_follow_the_rotated_means() {
        // Zero noise makes sampling exact, so the rotation is observable
        // without any statistical tolerance.
        let mut rng = StdRng::seed_from_u64(9);
        let mut env = DriftingPreferenceEnvironment::new(
            SyntheticConfig::new(4, 3)
                .with_beta(0.9)
                .with_noise_variance(0.0),
            DriftConfig::new(2),
            &mut rng,
        )
        .unwrap();
        let ctx = env.sample_context(&mut rng);
        for _ in 0..4 {
            env.advance_round();
        }
        for action in 0..3 {
            let expected = env.expected_reward(&ctx, action).unwrap();
            let sampled = env.sample_reward(&ctx, action, &mut rng).unwrap();
            assert_eq!(sampled.to_bits(), expected.to_bits());
        }
    }
}
