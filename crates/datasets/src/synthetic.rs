//! The synthetic preference benchmark of Section 5.1.

use crate::environment::check_action;
use crate::{ContextualEnvironment, DatasetError};
use p2b_linalg::{softmax, Matrix, Vector};
use rand::Rng;
use rand_distr::{Distribution, Normal, StandardNormal};
use serde::{Deserialize, Serialize};

/// Configuration of a [`SyntheticPreferenceEnvironment`].
///
/// Defaults follow the paper: `β = 0.1`, `σ² = 0.01`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Context dimension `d`.
    pub context_dimension: usize,
    /// Number of actions `A`.
    pub num_actions: usize,
    /// Reward scaling factor `β ∈ [0, 1]`.
    pub beta: f64,
    /// Variance `σ²` of the additive Gaussian reward noise.
    pub noise_variance: f64,
    /// When `true`, realized rewards are Bernoulli draws with the mean
    /// `β·softmax(Wx)_a` instead of the mean plus Gaussian noise. Expected
    /// rewards (and hence regret accounting) are identical in both modes.
    pub bernoulli_rewards: bool,
}

impl SyntheticConfig {
    /// Creates a configuration with the paper's default `β = 0.1`,
    /// `σ² = 0.01` and Gaussian reward noise.
    #[must_use]
    pub fn new(context_dimension: usize, num_actions: usize) -> Self {
        Self {
            context_dimension,
            num_actions,
            beta: 0.1,
            noise_variance: 0.01,
            bernoulli_rewards: false,
        }
    }

    /// Sets the reward scaling factor `β`.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the reward noise variance `σ²`.
    #[must_use]
    pub fn with_noise_variance(mut self, noise_variance: f64) -> Self {
        self.noise_variance = noise_variance;
        self
    }

    /// Switches realized rewards to Bernoulli draws with mean
    /// `β·softmax(Wx)_a` (click-like 0/1 feedback).
    #[must_use]
    pub fn with_bernoulli_rewards(mut self) -> Self {
        self.bernoulli_rewards = true;
        self
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.context_dimension == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_actions == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_actions",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.beta.is_finite() || !(0.0..=1.0).contains(&self.beta) {
            return Err(DatasetError::InvalidConfig {
                parameter: "beta",
                message: format!("must lie in [0, 1], got {}", self.beta),
            });
        }
        if !self.noise_variance.is_finite() || self.noise_variance < 0.0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "noise_variance",
                message: format!(
                    "must be a finite non-negative number, got {}",
                    self.noise_variance
                ),
            });
        }
        Ok(())
    }
}

/// The synthetic preference benchmark.
///
/// A fixed random weight matrix `W ∈ ℝ^{A×d}` relates contexts to action
/// preferences. The mean reward of action `a` under context `x` is
/// `r̄_{t,a} = β·softmax(Wx)_a + z` with `z ~ 𝒩(0, σ²)`; sampled rewards are
/// clipped to `[0, 1]` to satisfy the bandit setting's reward range.
/// Contexts are drawn uniformly from the probability simplex (normalized
/// exponentials), matching P2B's assumption of normalized context vectors
/// with no informative prior.
#[derive(Debug, Clone)]
pub struct SyntheticPreferenceEnvironment {
    config: SyntheticConfig,
    weights: Matrix,
}

impl SyntheticPreferenceEnvironment {
    /// Creates an environment with a freshly sampled weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn new<R: Rng + ?Sized>(
        config: SyntheticConfig,
        rng: &mut R,
    ) -> Result<Self, DatasetError> {
        config.validate()?;
        let mut rows = Vec::with_capacity(config.num_actions);
        for _ in 0..config.num_actions {
            let row: Vec<f64> = (0..config.context_dimension)
                .map(|_| {
                    let x: f64 = StandardNormal.sample(rng);
                    // Spread the preferences so the softmax is peaked: the best
                    // action for a context then carries most of the β reward
                    // mass, which is what makes the cold/warm gap of Figure 4
                    // observable above the reward noise.
                    8.0 * x
                })
                .collect();
            rows.push(row);
        }
        let weights = Matrix::from_rows(&rows)?;
        Ok(Self { config, weights })
    }

    /// The configuration of this environment.
    #[must_use]
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The latent preference weight matrix `W`.
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mean rewards `β·softmax(Wx)` of every action under `context`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Linalg`] when the context dimension is wrong.
    pub fn mean_rewards(&self, context: &Vector) -> Result<Vec<f64>, DatasetError> {
        let logits = self.weights.matvec(context)?;
        Ok(softmax(logits.as_slice())
            .into_iter()
            .map(|p| self.config.beta * p)
            .collect())
    }

    /// The index of the best action under `context`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Linalg`] when the context dimension is wrong.
    pub fn optimal_action(&self, context: &Vector) -> Result<usize, DatasetError> {
        let means = self.mean_rewards(context)?;
        Ok(p2b_linalg::argmax(&means).unwrap_or(0))
    }
}

impl ContextualEnvironment for SyntheticPreferenceEnvironment {
    fn context_dimension(&self) -> usize {
        self.config.context_dimension
    }

    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn sample_context(&mut self, rng: &mut dyn rand::RngCore) -> Vector {
        // Uniform Dirichlet(1, ..., 1) sample: normalized exponentials.
        let raw: Vec<f64> = (0..self.config.context_dimension)
            .map(|_| {
                let u: f64 = (*rng).gen::<f64>().max(1e-12);
                -u.ln()
            })
            .collect();
        Vector::from(raw)
            .normalized_l1()
            .expect("dimension validated at construction")
    }

    fn sample_reward(
        &mut self,
        context: &Vector,
        action: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<f64, DatasetError> {
        let mean = self.expected_reward(context, action)?;
        if self.config.bernoulli_rewards {
            let draw: f64 = (*rng).gen();
            return Ok(if draw < mean { 1.0 } else { 0.0 });
        }
        let noise = if self.config.noise_variance > 0.0 {
            let normal = Normal::new(0.0, self.config.noise_variance.sqrt()).map_err(|_| {
                DatasetError::InvalidConfig {
                    parameter: "noise_variance",
                    message: "not representable".to_owned(),
                }
            })?;
            normal.sample(&mut *rng)
        } else {
            0.0
        };
        Ok((mean + noise).clamp(0.0, 1.0))
    }

    fn expected_reward(&self, context: &Vector, action: usize) -> Result<f64, DatasetError> {
        check_action(self.config.num_actions, action)?;
        let means = self.mean_rewards(context)?;
        Ok(means[action])
    }

    fn name(&self) -> &'static str {
        "synthetic-preference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(d: usize, a: usize, seed: u64) -> SyntheticPreferenceEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticPreferenceEnvironment::new(SyntheticConfig::new(d, a), &mut rng).unwrap()
    }

    #[test]
    fn rejects_invalid_configurations() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(SyntheticPreferenceEnvironment::new(SyntheticConfig::new(0, 5), &mut rng).is_err());
        assert!(SyntheticPreferenceEnvironment::new(SyntheticConfig::new(5, 0), &mut rng).is_err());
        assert!(SyntheticPreferenceEnvironment::new(
            SyntheticConfig::new(5, 5).with_beta(1.5),
            &mut rng
        )
        .is_err());
        assert!(SyntheticPreferenceEnvironment::new(
            SyntheticConfig::new(5, 5).with_noise_variance(-0.1),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn contexts_live_on_the_simplex() {
        let mut env = env(10, 20, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let ctx = env.sample_context(&mut rng);
            assert_eq!(ctx.len(), 10);
            assert!((ctx.sum() - 1.0).abs() < 1e-9);
            assert!(ctx.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn mean_rewards_sum_to_beta_and_are_bounded() {
        let env = env(5, 10, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let ctx = {
            let mut e = env.clone();
            e.sample_context(&mut rng)
        };
        let means = env.mean_rewards(&ctx).unwrap();
        assert_eq!(means.len(), 10);
        assert!((means.iter().sum::<f64>() - 0.1).abs() < 1e-9);
        assert!(means.iter().all(|&m| (0.0..=0.1).contains(&m)));
    }

    #[test]
    fn sampled_rewards_stay_in_unit_interval() {
        let mut env = env(5, 10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let ctx = env.sample_context(&mut rng);
        for action in 0..10 {
            for _ in 0..20 {
                let r = env.sample_reward(&ctx, action, &mut rng).unwrap();
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn expected_reward_validates_action() {
        let env = env(5, 10, 7);
        let ctx = Vector::filled(5, 0.2);
        assert!(env.expected_reward(&ctx, 10).is_err());
        assert!(env.expected_reward(&ctx, 9).is_ok());
    }

    #[test]
    fn optimal_action_maximizes_expected_reward() {
        let env = env(4, 6, 8);
        let ctx = Vector::from(vec![0.4, 0.3, 0.2, 0.1]);
        let best = env.optimal_action(&ctx).unwrap();
        let best_reward = env.expected_reward(&ctx, best).unwrap();
        for a in 0..6 {
            assert!(env.expected_reward(&ctx, a).unwrap() <= best_reward + 1e-12);
        }
        assert!((env.optimal_reward(&ctx).unwrap() - best_reward).abs() < 1e-12);
    }

    #[test]
    fn different_contexts_can_prefer_different_actions() {
        // With a spread-out weight matrix, at least two of a handful of very
        // different contexts should have different optimal actions.
        let env = env(6, 12, 9);
        let optima: std::collections::HashSet<usize> = (0..6)
            .map(|i| env.optimal_action(&Vector::basis(6, i)).unwrap())
            .collect();
        assert!(
            optima.len() > 1,
            "environment has a context-independent optimum"
        );
    }

    #[test]
    fn zero_noise_makes_rewards_deterministic() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut env = SyntheticPreferenceEnvironment::new(
            SyntheticConfig::new(4, 5).with_noise_variance(0.0),
            &mut rng,
        )
        .unwrap();
        let ctx = Vector::filled(4, 0.25);
        let a = env.sample_reward(&ctx, 2, &mut rng).unwrap();
        let b = env.sample_reward(&ctx, 2, &mut rng).unwrap();
        assert_eq!(a, b);
        assert!((a - env.expected_reward(&ctx, 2).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_rewards_are_binary_with_the_right_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut env = SyntheticPreferenceEnvironment::new(
            SyntheticConfig::new(4, 3)
                .with_beta(0.9)
                .with_bernoulli_rewards(),
            &mut rng,
        )
        .unwrap();
        let ctx = env.sample_context(&mut rng);
        let mean = env.expected_reward(&ctx, 1).unwrap();
        let trials = 20_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let r = env.sample_reward(&ctx, 1, &mut rng).unwrap();
            assert!(r == 0.0 || r == 1.0, "Bernoulli rewards must be 0/1");
            if r == 1.0 {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!(
            (rate - mean).abs() < 0.02,
            "observed click rate {rate}, expected {mean}"
        );
    }
}
