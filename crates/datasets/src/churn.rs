//! User churn: arrival/departure schedules and a cohort-churn environment.
//!
//! The paper's deployment population is never static — users install, go
//! quiet and return, which is exactly what forces a serving tier to evict
//! and rehydrate agents instead of keeping one per user forever. This
//! module provides the two non-stationary population primitives:
//!
//! * [`ChurnProcess`] — a seeded arrival/departure schedule over user ids.
//!   Each round a Poisson-like number of fresh users arrives (integer part
//!   deterministic, fractional part Bernoulli) and every active user departs
//!   independently with a fixed probability. The simulation harness drives
//!   the bounded agent pool with it.
//! * [`CohortChurnEnvironment`] — the population-composition view of churn
//!   for the experiment matrix: contexts are drawn from a rotating set of
//!   *cohorts* (tight context clusters standing in for user segments); every
//!   [`CohortChurnConfig::rotation_period`] rounds the oldest cohort departs
//!   and a freshly sampled one arrives, so the context distribution the
//!   encoder and policies face keeps moving while the latent reward weights
//!   stay fixed.

use crate::{ContextualEnvironment, DatasetError, SyntheticConfig, SyntheticPreferenceEnvironment};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of a [`ChurnProcess`].
///
/// Rates are expressed in per-mille (thousandths) so the configuration stays
/// hashable and exactly serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Users active before the first round.
    pub initial_users: usize,
    /// Expected fresh arrivals per round, in thousandths of a user
    /// (e.g. `2500` = 2.5 users per round).
    pub arrivals_per_mille: u32,
    /// Per-round departure probability of each active user, in thousandths
    /// (e.g. `50` = 5% per round).
    pub departure_per_mille: u32,
    /// Hard ceiling on concurrently active users (arrivals are dropped at
    /// the ceiling).
    pub max_users: usize,
}

impl ChurnConfig {
    /// Creates a churn configuration with the given initial population,
    /// 1 arrival per round, 5% departure per round and a ceiling of
    /// `4 × initial_users`.
    #[must_use]
    pub fn new(initial_users: usize) -> Self {
        Self {
            initial_users,
            arrivals_per_mille: 1000,
            departure_per_mille: 50,
            max_users: initial_users.saturating_mul(4).max(1),
        }
    }

    /// Sets the expected arrivals per round (in thousandths).
    #[must_use]
    pub fn with_arrivals_per_mille(mut self, arrivals_per_mille: u32) -> Self {
        self.arrivals_per_mille = arrivals_per_mille;
        self
    }

    /// Sets the per-round departure probability (in thousandths).
    #[must_use]
    pub fn with_departure_per_mille(mut self, departure_per_mille: u32) -> Self {
        self.departure_per_mille = departure_per_mille;
        self
    }

    /// Sets the active-user ceiling.
    #[must_use]
    pub fn with_max_users(mut self, max_users: usize) -> Self {
        self.max_users = max_users;
        self
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.initial_users == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "initial_users",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.departure_per_mille > 1000 {
            return Err(DatasetError::InvalidConfig {
                parameter: "departure_per_mille",
                message: format!("must be at most 1000, got {}", self.departure_per_mille),
            });
        }
        if self.max_users < self.initial_users {
            return Err(DatasetError::InvalidConfig {
                parameter: "max_users",
                message: format!(
                    "must be at least initial_users ({}), got {}",
                    self.initial_users, self.max_users
                ),
            });
        }
        Ok(())
    }
}

/// What one round of churn did to the population.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnRound {
    /// User ids that arrived this round.
    pub arrivals: Vec<u64>,
    /// User ids that departed this round.
    pub departures: Vec<u64>,
}

/// A seeded arrival/departure schedule over user ids; see the module docs.
///
/// The process owns its RNG, so two processes built from the same
/// configuration and seed produce identical schedules regardless of what
/// the surrounding simulation does with its own randomness.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    config: ChurnConfig,
    active: BTreeSet<u64>,
    next_user: u64,
    total_departed: u64,
    rng: StdRng,
}

impl ChurnProcess {
    /// Creates a churn process with users `0..initial_users` active.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn new(config: ChurnConfig, seed: u64) -> Result<Self, DatasetError> {
        config.validate()?;
        Ok(Self {
            config,
            active: (0..config.initial_users as u64).collect(),
            next_user: config.initial_users as u64,
            total_departed: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// The currently active user ids, in id order.
    #[must_use]
    pub fn active_users(&self) -> &BTreeSet<u64> {
        &self.active
    }

    /// Number of currently active users.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total users that ever arrived (including the initial population).
    #[must_use]
    pub fn total_arrived(&self) -> u64 {
        self.next_user
    }

    /// Total users that departed so far.
    #[must_use]
    pub fn total_departed(&self) -> u64 {
        self.total_departed
    }

    /// Advances the population by one round: samples departures (each
    /// active user independently), then arrivals (up to the ceiling).
    pub fn next_round(&mut self) -> ChurnRound {
        let mut round = ChurnRound::default();
        let departure = f64::from(self.config.departure_per_mille) / 1000.0;
        // BTreeSet iteration is id-ordered, so the schedule is reproducible.
        for &user in &self.active.clone() {
            if self.rng.gen::<f64>() < departure {
                round.departures.push(user);
            }
        }
        for user in &round.departures {
            self.active.remove(user);
            self.total_departed += 1;
        }
        let guaranteed = self.config.arrivals_per_mille / 1000;
        let fractional = f64::from(self.config.arrivals_per_mille % 1000) / 1000.0;
        let mut arrivals = guaranteed as usize;
        if self.rng.gen::<f64>() < fractional {
            arrivals += 1;
        }
        for _ in 0..arrivals {
            if self.active.len() >= self.config.max_users {
                break;
            }
            let user = self.next_user;
            self.next_user += 1;
            self.active.insert(user);
            round.arrivals.push(user);
        }
        round
    }
}

/// Configuration of a [`CohortChurnEnvironment`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohortChurnConfig {
    /// The stationary reward model (dimension, actions, β, noise).
    pub synthetic: SyntheticConfig,
    /// Number of concurrently active cohorts.
    pub num_cohorts: usize,
    /// Rounds between cohort replacements (oldest out, fresh one in).
    pub rotation_period: u64,
    /// Mixing weight of the cohort center in a sampled context
    /// (`0` = ignore cohorts, `1` = contexts sit exactly on the center).
    pub concentration: f64,
}

impl CohortChurnConfig {
    /// Creates a cohort-churn configuration with 4 cohorts, rotation every
    /// 50 rounds and concentration 0.8.
    #[must_use]
    pub fn new(synthetic: SyntheticConfig) -> Self {
        Self {
            synthetic,
            num_cohorts: 4,
            rotation_period: 50,
            concentration: 0.8,
        }
    }

    /// Sets the number of concurrently active cohorts.
    #[must_use]
    pub fn with_num_cohorts(mut self, num_cohorts: usize) -> Self {
        self.num_cohorts = num_cohorts;
        self
    }

    /// Sets the rotation period in rounds.
    #[must_use]
    pub fn with_rotation_period(mut self, rotation_period: u64) -> Self {
        self.rotation_period = rotation_period;
        self
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.num_cohorts == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_cohorts",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.rotation_period == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "rotation_period",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.concentration.is_finite() || !(0.0..=1.0).contains(&self.concentration) {
            return Err(DatasetError::InvalidConfig {
                parameter: "concentration",
                message: format!("must lie in [0, 1], got {}", self.concentration),
            });
        }
        Ok(())
    }
}

/// The population-composition view of user churn; see the module docs.
#[derive(Debug, Clone)]
pub struct CohortChurnEnvironment {
    config: CohortChurnConfig,
    base: SyntheticPreferenceEnvironment,
    cohorts: Vec<Vector>,
    round: u64,
    rotations: u64,
}

impl CohortChurnEnvironment {
    /// Creates the environment, sampling the latent reward weights and the
    /// initial cohort centers from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn new<R: Rng>(config: CohortChurnConfig, rng: &mut R) -> Result<Self, DatasetError> {
        config.validate()?;
        let mut base = SyntheticPreferenceEnvironment::new(config.synthetic, rng)?;
        let cohorts = (0..config.num_cohorts)
            .map(|_| base.sample_context(rng))
            .collect();
        Ok(Self {
            config,
            base,
            cohorts,
            round: 0,
            rotations: 0,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CohortChurnConfig {
        &self.config
    }

    /// Number of cohort replacements performed so far.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The active cohort centers.
    #[must_use]
    pub fn cohorts(&self) -> &[Vector] {
        &self.cohorts
    }

    /// Advances one round; on rotation boundaries the oldest cohort departs
    /// and a freshly sampled center (drawn from `rng`) arrives.
    pub fn advance_round(&mut self, rng: &mut dyn rand::RngCore) {
        self.round += 1;
        if self.round % self.config.rotation_period == 0 {
            self.cohorts.remove(0);
            let fresh = self.base.sample_context(rng);
            self.cohorts.push(fresh);
            self.rotations += 1;
        }
    }
}

impl ContextualEnvironment for CohortChurnEnvironment {
    fn context_dimension(&self) -> usize {
        self.base.context_dimension()
    }

    fn num_actions(&self) -> usize {
        self.base.num_actions()
    }

    fn sample_context(&mut self, rng: &mut dyn rand::RngCore) -> Vector {
        let cohort = (*rng).gen_range(0..self.cohorts.len());
        let center = self.cohorts[cohort].clone();
        let fresh = self.base.sample_context(rng);
        // Convex mix of the cohort center and an individual draw: both are
        // simplex points, so the mix is one too.
        let c = self.config.concentration;
        let mixed: Vec<f64> = center
            .iter()
            .zip(fresh.iter())
            .map(|(&m, &f)| c * m + (1.0 - c) * f)
            .collect();
        Vector::from(mixed)
            .normalized_l1()
            .expect("dimension validated at construction")
    }

    fn sample_reward(
        &mut self,
        context: &Vector,
        action: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<f64, DatasetError> {
        self.base.sample_reward(context, action, rng)
    }

    fn expected_reward(&self, context: &Vector, action: usize) -> Result<f64, DatasetError> {
        self.base.expected_reward(context, action)
    }

    fn name(&self) -> &'static str {
        "cohort-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_config_validation() {
        assert!(ChurnProcess::new(ChurnConfig::new(0), 0).is_err());
        assert!(ChurnProcess::new(ChurnConfig::new(5).with_departure_per_mille(1001), 0).is_err());
        assert!(ChurnProcess::new(ChurnConfig::new(5).with_max_users(3), 0).is_err());
        assert!(ChurnProcess::new(ChurnConfig::new(5), 0).is_ok());
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let config = ChurnConfig::new(20)
            .with_arrivals_per_mille(1500)
            .with_departure_per_mille(100);
        let mut a = ChurnProcess::new(config, 7).unwrap();
        let mut b = ChurnProcess::new(config, 7).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_round(), b.next_round());
        }
        assert_eq!(a.active_users(), b.active_users());
    }

    #[test]
    fn population_turns_over_but_respects_the_ceiling() {
        let config = ChurnConfig::new(10)
            .with_arrivals_per_mille(3000)
            .with_departure_per_mille(100)
            .with_max_users(25);
        let mut process = ChurnProcess::new(config, 3).unwrap();
        for _ in 0..200 {
            process.next_round();
            assert!(process.active_count() <= 25);
        }
        assert!(process.total_departed() > 0, "users must depart");
        assert!(
            process.total_arrived() > 10,
            "fresh users must arrive beyond the initial population"
        );
        // Conservation: arrived = active + departed.
        assert_eq!(
            process.total_arrived(),
            process.active_count() as u64 + process.total_departed()
        );
    }

    #[test]
    fn zero_departure_keeps_everyone() {
        let config = ChurnConfig::new(5)
            .with_arrivals_per_mille(0)
            .with_departure_per_mille(0);
        let mut process = ChurnProcess::new(config, 1).unwrap();
        for _ in 0..20 {
            let round = process.next_round();
            assert!(round.arrivals.is_empty());
            assert!(round.departures.is_empty());
        }
        assert_eq!(process.active_count(), 5);
    }

    #[test]
    fn cohort_environment_rotates_on_schedule() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = CohortChurnConfig::new(SyntheticConfig::new(4, 3)).with_rotation_period(10);
        let mut env = CohortChurnEnvironment::new(config, &mut rng).unwrap();
        let before = env.cohorts().to_vec();
        for _ in 0..9 {
            env.advance_round(&mut rng);
        }
        assert_eq!(env.rotations(), 0);
        env.advance_round(&mut rng);
        assert_eq!(env.rotations(), 1);
        let after = env.cohorts();
        assert_eq!(after.len(), before.len());
        // The oldest departed, the rest shifted down.
        assert_eq!(after[0].as_slice(), before[1].as_slice());
    }

    #[test]
    fn cohort_contexts_stay_on_the_simplex() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = CohortChurnConfig::new(SyntheticConfig::new(6, 4));
        let mut env = CohortChurnEnvironment::new(config, &mut rng).unwrap();
        for _ in 0..50 {
            let ctx = env.sample_context(&mut rng);
            assert_eq!(ctx.len(), 6);
            assert!((ctx.sum() - 1.0).abs() < 1e-9);
            assert!(ctx.iter().all(|&x| x >= 0.0));
            env.advance_round(&mut rng);
        }
    }

    #[test]
    fn cohort_validation_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let base = SyntheticConfig::new(4, 3);
        assert!(CohortChurnEnvironment::new(
            CohortChurnConfig::new(base).with_num_cohorts(0),
            &mut rng
        )
        .is_err());
        assert!(CohortChurnEnvironment::new(
            CohortChurnConfig::new(base).with_rotation_period(0),
            &mut rng
        )
        .is_err());
        let mut bad = CohortChurnConfig::new(base);
        bad.concentration = 1.5;
        assert!(CohortChurnEnvironment::new(bad, &mut rng).is_err());
    }
}
