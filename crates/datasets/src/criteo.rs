//! Criteo-like online-advertising workload (Section 5.3).

use crate::{DatasetError, FeatureHasher};
use p2b_linalg::{softmax, Matrix, Vector};
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a [`CriteoLikeGenerator`].
///
/// Defaults mirror the paper's pipeline: 13 numeric features of which the
/// experiment uses the first 10 as the context, 26 categorical features
/// hashed into the 40 most frequent product codes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriteoConfig {
    /// Number of numeric features used as the context vector `d`.
    pub context_dimension: usize,
    /// Number of categorical features per record (the raw log has 26).
    pub num_categorical_features: usize,
    /// Number of product codes kept after frequency ranking (the paper keeps 40).
    pub num_product_codes: usize,
    /// Number of distinct values each categorical feature can take.
    pub categorical_cardinality: u32,
    /// Baseline click probability before context/product affinity is added.
    pub base_click_rate: f64,
    /// Strength of the context–product affinity in the click model.
    pub affinity_strength: f64,
}

impl CriteoConfig {
    /// Creates the paper's configuration: `d = 10`, 26 categorical features,
    /// 40 product codes.
    #[must_use]
    pub fn new() -> Self {
        Self {
            context_dimension: 10,
            num_categorical_features: 26,
            num_product_codes: 40,
            categorical_cardinality: 1000,
            base_click_rate: 0.2,
            affinity_strength: 0.6,
        }
    }

    /// Sets the context dimension.
    #[must_use]
    pub fn with_context_dimension(mut self, context_dimension: usize) -> Self {
        self.context_dimension = context_dimension;
        self
    }

    /// Sets the number of retained product codes (the action count `A`).
    #[must_use]
    pub fn with_product_codes(mut self, num_product_codes: usize) -> Self {
        self.num_product_codes = num_product_codes;
        self
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.context_dimension == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_categorical_features == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_categorical_features",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_product_codes < 2 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_product_codes",
                message: "must be at least 2".to_owned(),
            });
        }
        if self.categorical_cardinality == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "categorical_cardinality",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.base_click_rate.is_finite() || !(0.0..=1.0).contains(&self.base_click_rate) {
            return Err(DatasetError::InvalidConfig {
                parameter: "base_click_rate",
                message: format!("must lie in [0, 1], got {}", self.base_click_rate),
            });
        }
        if !self.affinity_strength.is_finite() || self.affinity_strength < 0.0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "affinity_strength",
                message: format!(
                    "must be a finite non-negative number, got {}",
                    self.affinity_strength
                ),
            });
        }
        Ok(())
    }
}

impl Default for CriteoConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One logged advertising impression after the preprocessing pipeline:
/// numeric context, product code (the logged action) and click outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedImpression {
    context: Vector,
    product_code: usize,
    clicked: bool,
}

impl LoggedImpression {
    /// The (normalized) numeric context features.
    #[must_use]
    pub fn context(&self) -> &Vector {
        &self.context
    }

    /// The logged product code (the action the production system took).
    #[must_use]
    pub fn product_code(&self) -> usize {
        self.product_code
    }

    /// Whether the logged impression was clicked.
    #[must_use]
    pub fn clicked(&self) -> bool {
        self.clicked
    }

    /// The paper's off-policy reward: 1.0 iff the proposed action matches the
    /// logged action *and* the logged impression was clicked.
    #[must_use]
    pub fn reward(&self, proposed_action: usize) -> f64 {
        if proposed_action == self.product_code && self.clicked {
            1.0
        } else {
            0.0
        }
    }
}

/// Generator of a Criteo-like click log.
///
/// A latent preference matrix relates numeric contexts to product codes;
/// categorical features are generated so that they correlate with the latent
/// product preference (as real product-describing categoricals would), hashed
/// with [`FeatureHasher`] into a large bucket space, frequency-ranked, and
/// only the records whose hashed code lands in the top
/// [`CriteoConfig::num_product_codes`] buckets are kept — exactly the paper's
/// preprocessing.
#[derive(Debug, Clone)]
pub struct CriteoLikeGenerator {
    config: CriteoConfig,
    preference: Matrix,
    hasher: FeatureHasher,
}

impl CriteoLikeGenerator {
    /// Raw hash space for the categorical tuple before frequency ranking.
    const RAW_BUCKETS: usize = 1 << 16;

    /// Creates a generator with a freshly sampled latent preference model.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn new<R: Rng + ?Sized>(config: CriteoConfig, rng: &mut R) -> Result<Self, DatasetError> {
        config.validate()?;
        let mut rows = Vec::with_capacity(config.num_product_codes);
        for _ in 0..config.num_product_codes {
            let row: Vec<f64> = (0..config.context_dimension)
                .map(|_| {
                    let x: f64 = StandardNormal.sample(rng);
                    2.5 * x
                })
                .collect();
            rows.push(row);
        }
        let preference = Matrix::from_rows(&rows)?;
        let hasher = FeatureHasher::new(Self::RAW_BUCKETS, rng.gen())?;
        Ok(Self {
            config,
            preference,
            hasher,
        })
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &CriteoConfig {
        &self.config
    }

    /// Generates `num_records` raw records, applies the feature-hashing and
    /// top-`A` frequency filtering, and returns the retained impressions.
    ///
    /// The number of returned impressions is at most `num_records`; records
    /// whose hashed product code falls outside the top-`A` most frequent
    /// codes are discarded, as in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when `num_records == 0` and
    /// [`DatasetError::InsufficientData`] when fewer than
    /// `num_product_codes` distinct hashed codes were observed.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        num_records: usize,
        rng: &mut R,
    ) -> Result<Vec<LoggedImpression>, DatasetError> {
        if num_records == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_records",
                message: "must be at least 1".to_owned(),
            });
        }

        // Pass 1: raw records with hashed categorical tuples.
        struct RawRecord {
            context: Vector,
            hashed_code: usize,
            clicked: bool,
        }
        let mut raw_records = Vec::with_capacity(num_records);
        let mut code_frequencies: HashMap<usize, usize> = HashMap::new();

        for _ in 0..num_records {
            let context = self.sample_context(rng);
            // Latent product preference for this context.
            let logits = self.preference.matvec(&context)?;
            let probabilities = softmax(logits.as_slice());
            let latent_product = sample_categorical(&probabilities, rng);

            // Categorical features describe the latent product: derive them
            // deterministically from the product with a little noise, so the
            // hashed tuple is strongly correlated with the product identity.
            let categoricals: Vec<u32> = (0..self.config.num_categorical_features)
                .map(|f| {
                    let noise: u32 = if rng.gen::<f64>() < 0.02 {
                        rng.gen_range(0..self.config.categorical_cardinality)
                    } else {
                        0
                    };
                    ((latent_product as u32)
                        .wrapping_mul(31)
                        .wrapping_add(f as u32)
                        .wrapping_add(noise))
                        % self.config.categorical_cardinality
                })
                .collect();
            let hashed_code = self.hasher.hash_category_tuple(&categoricals);
            *code_frequencies.entry(hashed_code).or_insert(0) += 1;

            // Click model: base rate plus affinity between the context and the
            // *logged* product, clipped to a probability.
            let affinity = probabilities[latent_product];
            let click_probability = (self.config.base_click_rate
                + self.config.affinity_strength * affinity)
                .clamp(0.0, 1.0);
            let clicked = rng.gen::<f64>() < click_probability;

            raw_records.push(RawRecord {
                context,
                hashed_code,
                clicked,
            });
        }

        // Frequency ranking: most frequent hashed code becomes product code 0.
        if code_frequencies.len() < self.config.num_product_codes {
            return Err(DatasetError::InsufficientData {
                requested: self.config.num_product_codes,
                available: code_frequencies.len(),
            });
        }
        let mut ranked: Vec<(usize, usize)> = code_frequencies.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank_of: HashMap<usize, usize> = ranked
            .iter()
            .take(self.config.num_product_codes)
            .enumerate()
            .map(|(rank, &(code, _))| (code, rank))
            .collect();

        // Pass 2: keep only records whose code survived the ranking.
        Ok(raw_records
            .into_iter()
            .filter_map(|r| {
                rank_of.get(&r.hashed_code).map(|&rank| LoggedImpression {
                    context: r.context,
                    product_code: rank,
                    clicked: r.clicked,
                })
            })
            .collect())
    }

    /// Partitions impressions into per-agent streams of equal length,
    /// mirroring the paper's "3000 agents × 300 interactions" setup.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InsufficientData`] when there are not enough
    /// impressions and [`DatasetError::InvalidConfig`] for zero arguments.
    pub fn split_agents(
        impressions: &[LoggedImpression],
        num_agents: usize,
        per_agent: usize,
    ) -> Result<Vec<Vec<LoggedImpression>>, DatasetError> {
        if num_agents == 0 || per_agent == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_agents/per_agent",
                message: "must both be at least 1".to_owned(),
            });
        }
        let required = num_agents * per_agent;
        if impressions.len() < required {
            return Err(DatasetError::InsufficientData {
                requested: required,
                available: impressions.len(),
            });
        }
        Ok((0..num_agents)
            .map(|a| impressions[a * per_agent..(a + 1) * per_agent].to_vec())
            .collect())
    }

    fn sample_context<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let raw: Vec<f64> = (0..self.config.context_dimension)
            .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
            .collect();
        Vector::from(raw)
            .normalized_l1()
            .expect("dimension validated at construction")
    }
}

/// Samples an index from a probability vector.
fn sample_categorical<R: Rng + ?Sized>(probabilities: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut cumulative = 0.0;
    for (i, &p) in probabilities.iter().enumerate() {
        cumulative += p;
        if u < cumulative {
            return i;
        }
    }
    probabilities.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(seed: u64) -> CriteoLikeGenerator {
        let mut rng = StdRng::seed_from_u64(seed);
        CriteoLikeGenerator::new(CriteoConfig::new(), &mut rng).unwrap()
    }

    #[test]
    fn rejects_invalid_configurations() {
        let mut rng = StdRng::seed_from_u64(0);
        let bad = CriteoConfig::new().with_context_dimension(0);
        assert!(CriteoLikeGenerator::new(bad, &mut rng).is_err());
        let bad = CriteoConfig::new().with_product_codes(1);
        assert!(CriteoLikeGenerator::new(bad, &mut rng).is_err());
        let mut bad = CriteoConfig::new();
        bad.base_click_rate = 1.5;
        assert!(CriteoLikeGenerator::new(bad, &mut rng).is_err());
    }

    #[test]
    fn generated_impressions_have_valid_fields() {
        let generator = generator(1);
        let mut rng = StdRng::seed_from_u64(2);
        let impressions = generator.generate(5000, &mut rng).unwrap();
        assert!(!impressions.is_empty());
        for imp in &impressions {
            assert_eq!(imp.context().len(), 10);
            assert!((imp.context().sum() - 1.0).abs() < 1e-9);
            assert!(imp.product_code() < 40);
        }
    }

    #[test]
    fn product_code_zero_is_the_most_frequent() {
        let generator = generator(3);
        let mut rng = StdRng::seed_from_u64(4);
        let impressions = generator.generate(8000, &mut rng).unwrap();
        let mut counts = vec![0usize; 40];
        for imp in &impressions {
            counts[imp.product_code()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "frequency ranking violated: {counts:?}");
        // All 40 codes should be populated in a large sample.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn click_rate_is_plausible() {
        let generator = generator(5);
        let mut rng = StdRng::seed_from_u64(6);
        let impressions = generator.generate(5000, &mut rng).unwrap();
        let ctr =
            impressions.iter().filter(|i| i.clicked()).count() as f64 / impressions.len() as f64;
        // Base rate 0.2 plus a small affinity bonus: CTR should land between
        // 0.15 and 0.6 for any seed.
        assert!((0.15..0.6).contains(&ctr), "ctr = {ctr}");
    }

    #[test]
    fn reward_requires_match_and_click() {
        let imp = LoggedImpression {
            context: Vector::filled(2, 0.5),
            product_code: 7,
            clicked: true,
        };
        assert_eq!(imp.reward(7), 1.0);
        assert_eq!(imp.reward(6), 0.0);
        let not_clicked = LoggedImpression {
            clicked: false,
            ..imp
        };
        assert_eq!(not_clicked.reward(7), 0.0);
    }

    #[test]
    fn contexts_predict_logged_products_better_than_chance() {
        // The whole point of the workload: the numeric context must carry
        // signal about which product was logged, otherwise no contextual
        // bandit can beat the random baseline. A nearest-centroid classifier
        // fitted on half the data must beat the 1/40 chance level on the rest.
        let generator = generator(7);
        let mut rng = StdRng::seed_from_u64(8);
        let impressions = generator.generate(12_000, &mut rng).unwrap();
        let split = impressions.len() / 2;
        let (train, test) = impressions.split_at(split);

        let dim = generator.config().context_dimension;
        let mut sums = vec![Vector::zeros(dim); 40];
        let mut counts = vec![0usize; 40];
        for imp in train {
            sums[imp.product_code()].axpy(1.0, imp.context()).unwrap();
            counts[imp.product_code()] += 1;
        }
        let centroids: Vec<Vector> = sums
            .into_iter()
            .zip(counts.iter())
            .map(|(s, &c)| {
                if c > 0 {
                    s.scaled(1.0 / c as f64)
                } else {
                    Vector::filled(dim, 1.0 / dim as f64)
                }
            })
            .collect();

        let mut correct = 0usize;
        for imp in test {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for (code, centroid) in centroids.iter().enumerate() {
                let dist = centroid.squared_distance(imp.context()).unwrap();
                if dist < best_dist {
                    best = code;
                    best_dist = dist;
                }
            }
            if best == imp.product_code() {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / test.len() as f64;
        assert!(
            accuracy > 2.0 / 40.0,
            "centroid accuracy {accuracy} is at chance level"
        );
    }

    #[test]
    fn split_agents_partitions_impressions() {
        let generator = generator(9);
        let mut rng = StdRng::seed_from_u64(10);
        let impressions = generator.generate(3000, &mut rng).unwrap();
        let agents = CriteoLikeGenerator::split_agents(&impressions, 5, 100).unwrap();
        assert_eq!(agents.len(), 5);
        assert!(agents.iter().all(|a| a.len() == 100));
        assert!(CriteoLikeGenerator::split_agents(&impressions, 0, 10).is_err());
        assert!(CriteoLikeGenerator::split_agents(&impressions, 1_000_000, 100).is_err());
    }

    #[test]
    fn generate_validates_record_count() {
        let generator = generator(11);
        let mut rng = StdRng::seed_from_u64(12);
        assert!(generator.generate(0, &mut rng).is_err());
    }
}
