//! The contextual-environment abstraction driven by the simulation engine.

use crate::DatasetError;
use p2b_linalg::Vector;
use rand::RngCore;

/// A stochastic contextual-bandit environment.
///
/// At each round the environment produces a context; the agent proposes an
/// action; the environment reveals the (bandit-feedback) reward of that
/// action only. Environments also expose the *expected* reward of every
/// action so the harness can compute the per-round optimum and hence regret,
/// something the real world would not reveal but a simulator can.
///
/// The trait is object-safe so experiments can hold `Box<dyn ContextualEnvironment>`.
pub trait ContextualEnvironment: Send {
    /// Dimension of the context vectors produced by this environment.
    fn context_dimension(&self) -> usize;

    /// Number of actions an agent may propose.
    fn num_actions(&self) -> usize;

    /// Draws the next context.
    fn sample_context(&mut self, rng: &mut dyn RngCore) -> Vector;

    /// Samples the reward of proposing `action` under `context`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidAction`] when the action is out of
    /// range and [`DatasetError::Linalg`] when the context is malformed.
    fn sample_reward(
        &mut self,
        context: &Vector,
        action: usize,
        rng: &mut dyn RngCore,
    ) -> Result<f64, DatasetError>;

    /// Expected reward of `action` under `context` (no noise).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Self::sample_reward`].
    fn expected_reward(&self, context: &Vector, action: usize) -> Result<f64, DatasetError>;

    /// Expected reward of the best action under `context` — the per-round
    /// optimum used for regret accounting.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Linalg`] when the context is malformed.
    fn optimal_reward(&self, context: &Vector) -> Result<f64, DatasetError> {
        let mut best = f64::NEG_INFINITY;
        for action in 0..self.num_actions() {
            best = best.max(self.expected_reward(context, action)?);
        }
        Ok(best)
    }

    /// Short human-readable environment name for experiment reports.
    fn name(&self) -> &'static str;
}

/// Validates an action index against the environment's action count.
pub(crate) fn check_action(num_actions: usize, action: usize) -> Result<(), DatasetError> {
    if action >= num_actions {
        return Err(DatasetError::InvalidAction {
            action,
            num_actions,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic environment used to test the default method.
    struct Toy;

    impl ContextualEnvironment for Toy {
        fn context_dimension(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            3
        }
        fn sample_context(&mut self, _rng: &mut dyn RngCore) -> Vector {
            Vector::from(vec![1.0])
        }
        fn sample_reward(
            &mut self,
            context: &Vector,
            action: usize,
            _rng: &mut dyn RngCore,
        ) -> Result<f64, DatasetError> {
            self.expected_reward(context, action)
        }
        fn expected_reward(&self, _context: &Vector, action: usize) -> Result<f64, DatasetError> {
            check_action(3, action)?;
            Ok(action as f64 / 4.0)
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }

    #[test]
    fn optimal_reward_is_the_max_over_actions() {
        let toy = Toy;
        let ctx = Vector::from(vec![1.0]);
        assert!((toy.optimal_reward(&ctx).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn check_action_validates_range() {
        assert!(check_action(3, 2).is_ok());
        assert!(check_action(3, 3).is_err());
    }
}
