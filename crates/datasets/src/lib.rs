//! Workload substrate for the P2B reproduction.
//!
//! The paper evaluates P2B on three workloads; none of the original datasets
//! can be redistributed here, so this crate builds synthetic equivalents that
//! exercise exactly the same code paths (see DESIGN.md for the substitution
//! rationale):
//!
//! * [`SyntheticPreferenceEnvironment`] — the synthetic benchmark of
//!   Section 5.1: the mean reward of action `a` under context `x` is
//!   `β·softmax(Wx)_a` plus Gaussian noise, for a random weight matrix `W`.
//! * [`MultiLabelDataset`] — multi-label classification with bandit feedback
//!   (Section 5.2). Generators produce MediaMill-like and TextMining-like
//!   datasets with clustered contexts and label sets; the reward of proposing
//!   label `a` for an instance is 1 when `a` is among the instance's labels.
//! * [`CriteoLikeGenerator`] — the online-advertising workload of Section 5.3:
//!   logged records with numeric context features, 26 categorical features
//!   that are feature-hashed ([`FeatureHasher`]) into the 40 most frequent
//!   product codes, and click labels from a latent preference model. The
//!   reward of an action is 1 iff it matches the logged action *and* the
//!   logged impression was clicked.
//!
//! On top of the stationary workloads, two non-stationary population axes
//! stress-test privatized warm-starting:
//!
//! * [`DriftingPreferenceEnvironment`] — preference drift: the synthetic
//!   benchmark's reward means rotate by one action every
//!   [`DriftConfig::period_rounds`] rounds.
//! * [`ChurnProcess`] / [`CohortChurnEnvironment`] — user churn: a seeded
//!   arrival/departure schedule over user ids (driving the bounded agent
//!   pool), and its population-composition view where the context
//!   distribution follows a rotating set of cohorts.
//!
//! The [`ContextualEnvironment`] trait unifies the environments so the
//! simulation engine can drive any of them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod churn;
mod criteo;
mod drift;
mod environment;
mod error;
mod feature_hash;
mod multilabel;
mod synthetic;

pub use churn::{ChurnConfig, ChurnProcess, ChurnRound, CohortChurnConfig, CohortChurnEnvironment};
pub use criteo::{CriteoConfig, CriteoLikeGenerator, LoggedImpression};
pub use drift::{DriftConfig, DriftingPreferenceEnvironment};
pub use environment::ContextualEnvironment;
pub use error::DatasetError;
pub use feature_hash::FeatureHasher;
pub use multilabel::{MultiLabelConfig, MultiLabelDataset, MultiLabelInstance};
pub use synthetic::{SyntheticConfig, SyntheticPreferenceEnvironment};
