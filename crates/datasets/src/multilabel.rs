//! Multi-label classification with bandit feedback (Section 5.2).

use crate::DatasetError;
use p2b_linalg::Vector;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic multi-label dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelConfig {
    /// Number of instances to generate.
    pub num_instances: usize,
    /// Context (feature) dimension `d`.
    pub context_dimension: usize,
    /// Number of distinct labels, which is also the action count `A`.
    pub num_labels: usize,
    /// Number of latent topic clusters used to generate the data.
    pub num_clusters: usize,
    /// Average number of labels attached to an instance (at least 1).
    pub labels_per_instance: usize,
    /// Standard deviation of the context noise around the cluster center.
    pub context_noise: f64,
}

impl MultiLabelConfig {
    /// Creates a configuration with `num_clusters = num_labels`,
    /// `labels_per_instance = 2` and moderate context noise.
    #[must_use]
    pub fn new(num_instances: usize, context_dimension: usize, num_labels: usize) -> Self {
        Self {
            num_instances,
            context_dimension,
            num_labels,
            num_clusters: num_labels,
            labels_per_instance: 2,
            context_noise: 0.05,
        }
    }

    /// Sets the number of latent clusters.
    #[must_use]
    pub fn with_clusters(mut self, num_clusters: usize) -> Self {
        self.num_clusters = num_clusters;
        self
    }

    /// Sets the average number of labels per instance.
    #[must_use]
    pub fn with_labels_per_instance(mut self, labels: usize) -> Self {
        self.labels_per_instance = labels;
        self
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.num_instances == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_instances",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.context_dimension == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "context_dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_labels == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_labels",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_clusters == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_clusters",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.labels_per_instance == 0 || self.labels_per_instance > self.num_labels {
            return Err(DatasetError::InvalidConfig {
                parameter: "labels_per_instance",
                message: format!(
                    "must be between 1 and num_labels ({}), got {}",
                    self.num_labels, self.labels_per_instance
                ),
            });
        }
        if !self.context_noise.is_finite() || self.context_noise < 0.0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "context_noise",
                message: format!(
                    "must be a finite non-negative number, got {}",
                    self.context_noise
                ),
            });
        }
        Ok(())
    }
}

/// One instance: a normalized context vector plus its set of true labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelInstance {
    context: Vector,
    labels: Vec<usize>,
}

impl MultiLabelInstance {
    /// Creates an instance from a context and a non-empty sorted label set.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the label set is empty.
    pub fn new(context: Vector, mut labels: Vec<usize>) -> Result<Self, DatasetError> {
        if labels.is_empty() {
            return Err(DatasetError::InvalidConfig {
                parameter: "labels",
                message: "an instance must carry at least one label".to_owned(),
            });
        }
        labels.sort_unstable();
        labels.dedup();
        Ok(Self { context, labels })
    }

    /// The instance's context vector.
    #[must_use]
    pub fn context(&self) -> &Vector {
        &self.context
    }

    /// The instance's true labels (sorted, deduplicated).
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns `true` if `label` is among the instance's true labels.
    #[must_use]
    pub fn has_label(&self, label: usize) -> bool {
        self.labels.binary_search(&label).is_ok()
    }

    /// Bandit-feedback reward of proposing `label`: 1.0 if correct, else 0.0.
    #[must_use]
    pub fn reward(&self, label: usize) -> f64 {
        if self.has_label(label) {
            1.0
        } else {
            0.0
        }
    }
}

/// A synthetic multi-label dataset with clustered contexts.
///
/// Instances are generated from latent topic clusters: every cluster has a
/// center on the probability simplex and a characteristic label set; an
/// instance is a noisy copy of its cluster's center carrying (a subset of)
/// the cluster's labels. This reproduces the property the paper's multi-label
/// experiments rely on — contexts are clustered and nearby contexts share
/// labels — without redistributing MediaMill or TextMining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelDataset {
    config: MultiLabelConfig,
    instances: Vec<MultiLabelInstance>,
}

impl MultiLabelDataset {
    /// Generates a dataset from the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for invalid configurations.
    pub fn generate<R: Rng + ?Sized>(
        config: MultiLabelConfig,
        rng: &mut R,
    ) -> Result<Self, DatasetError> {
        config.validate()?;
        let d = config.context_dimension;

        // Cluster centers: peaked distributions on the simplex so clusters are
        // well separated, plus each cluster's characteristic label set.
        let mut centers = Vec::with_capacity(config.num_clusters);
        let mut cluster_labels = Vec::with_capacity(config.num_clusters);
        let mut all_labels: Vec<usize> = (0..config.num_labels).collect();
        for c in 0..config.num_clusters {
            let mut center = vec![0.2 / d as f64; d];
            // Each cluster peaks on a small set of coordinates derived from its index.
            center[c % d] += 0.6;
            center[(c * 7 + 3) % d] += 0.2;
            centers.push(Vector::from(center).normalized_l1()?);

            all_labels.shuffle(rng);
            let mut labels: Vec<usize> = Vec::with_capacity(config.labels_per_instance);
            // Deterministically include a "primary" label so every label is
            // reachable when num_clusters >= num_labels.
            labels.push(c % config.num_labels);
            labels.extend(
                all_labels
                    .iter()
                    .copied()
                    .filter(|&l| l != c % config.num_labels)
                    .take(config.labels_per_instance.saturating_sub(1)),
            );
            cluster_labels.push(labels);
        }

        let mut instances = Vec::with_capacity(config.num_instances);
        for _ in 0..config.num_instances {
            let cluster = rng.gen_range(0..config.num_clusters);
            let center = &centers[cluster];
            let noisy: Vec<f64> = center
                .iter()
                .map(|&x| {
                    let noise = rng.gen_range(-1.0..1.0) * config.context_noise;
                    (x + noise).max(0.0)
                })
                .collect();
            let context = Vector::from(noisy).normalized_l1()?;
            instances.push(MultiLabelInstance::new(
                context,
                cluster_labels[cluster].clone(),
            )?);
        }

        Ok(Self { config, instances })
    }

    /// A MediaMill-like dataset: the paper's experiment operates at `d = 20`
    /// features and `A = 40` actions over a video corpus of ~44k instances.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::generate`] errors (none for this fixed configuration).
    pub fn mediamill_like<R: Rng + ?Sized>(
        num_instances: usize,
        rng: &mut R,
    ) -> Result<Self, DatasetError> {
        Self::generate(
            MultiLabelConfig::new(num_instances, 20, 40)
                .with_clusters(60)
                .with_labels_per_instance(3),
            rng,
        )
    }

    /// A TextMining-like dataset: `d = 20` features, `A = 22` actions.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::generate`] errors (none for this fixed configuration).
    pub fn textmining_like<R: Rng + ?Sized>(
        num_instances: usize,
        rng: &mut R,
    ) -> Result<Self, DatasetError> {
        Self::generate(
            MultiLabelConfig::new(num_instances, 20, 22)
                .with_clusters(33)
                .with_labels_per_instance(2),
            rng,
        )
    }

    /// The configuration used to generate the dataset.
    #[must_use]
    pub fn config(&self) -> &MultiLabelConfig {
        &self.config
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` if the dataset has no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Borrows the instances.
    #[must_use]
    pub fn instances(&self) -> &[MultiLabelInstance] {
        &self.instances
    }

    /// Context dimension of the dataset.
    #[must_use]
    pub fn context_dimension(&self) -> usize {
        self.config.context_dimension
    }

    /// Number of labels / actions.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.config.num_labels
    }

    /// Partitions the dataset into per-agent slices, sampling without
    /// replacement: the paper gives each local agent access to at most 100
    /// samples drawn from the full dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InsufficientData`] if
    /// `num_agents * samples_per_agent` exceeds the dataset size and
    /// [`DatasetError::InvalidConfig`] if either argument is zero.
    pub fn split_agents<R: Rng + ?Sized>(
        &self,
        num_agents: usize,
        samples_per_agent: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec<MultiLabelInstance>>, DatasetError> {
        if num_agents == 0 || samples_per_agent == 0 {
            return Err(DatasetError::InvalidConfig {
                parameter: "num_agents/samples_per_agent",
                message: "must both be at least 1".to_owned(),
            });
        }
        let required = num_agents * samples_per_agent;
        if required > self.instances.len() {
            return Err(DatasetError::InsufficientData {
                requested: required,
                available: self.instances.len(),
            });
        }
        let mut indices: Vec<usize> = (0..self.instances.len()).collect();
        indices.shuffle(rng);
        let mut agents = Vec::with_capacity(num_agents);
        for a in 0..num_agents {
            let slice = &indices[a * samples_per_agent..(a + 1) * samples_per_agent];
            agents.push(slice.iter().map(|&i| self.instances[i].clone()).collect());
        }
        Ok(agents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_configurations() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MultiLabelDataset::generate(MultiLabelConfig::new(0, 5, 5), &mut rng).is_err());
        assert!(MultiLabelDataset::generate(MultiLabelConfig::new(10, 0, 5), &mut rng).is_err());
        assert!(MultiLabelDataset::generate(MultiLabelConfig::new(10, 5, 0), &mut rng).is_err());
        assert!(MultiLabelDataset::generate(
            MultiLabelConfig::new(10, 5, 5).with_labels_per_instance(9),
            &mut rng
        )
        .is_err());
        assert!(MultiLabelDataset::generate(
            MultiLabelConfig::new(10, 5, 5).with_clusters(0),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn generated_instances_have_valid_contexts_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = MultiLabelDataset::generate(MultiLabelConfig::new(500, 10, 8), &mut rng).unwrap();
        assert_eq!(ds.len(), 500);
        for instance in ds.instances() {
            assert_eq!(instance.context().len(), 10);
            assert!((instance.context().sum() - 1.0).abs() < 1e-9);
            assert!(!instance.labels().is_empty());
            assert!(instance.labels().iter().all(|&l| l < 8));
        }
    }

    #[test]
    fn rewards_reflect_label_membership() {
        let instance =
            MultiLabelInstance::new(Vector::filled(3, 1.0 / 3.0), vec![5, 2, 2]).unwrap();
        assert_eq!(instance.labels(), &[2, 5]);
        assert_eq!(instance.reward(2), 1.0);
        assert_eq!(instance.reward(5), 1.0);
        assert_eq!(instance.reward(3), 0.0);
        assert!(MultiLabelInstance::new(Vector::zeros(3), vec![]).is_err());
    }

    #[test]
    fn every_label_appears_somewhere_in_a_large_dataset() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = MultiLabelDataset::generate(
            MultiLabelConfig::new(2000, 10, 12).with_clusters(24),
            &mut rng,
        )
        .unwrap();
        let mut seen = vec![false; 12];
        for instance in ds.instances() {
            for &l in instance.labels() {
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "labels missing: {seen:?}");
    }

    #[test]
    fn contexts_within_a_cluster_share_labels() {
        // Two instances with nearly identical contexts should usually carry
        // the same label set in a clustered generator. We verify the weaker
        // structural property: instances with identical label sets have
        // closer contexts (on average) than instances with disjoint sets.
        let mut rng = StdRng::seed_from_u64(3);
        let ds = MultiLabelDataset::generate(
            MultiLabelConfig::new(400, 10, 6).with_clusters(6),
            &mut rng,
        )
        .unwrap();
        let instances = ds.instances();
        let mut same_label_dist = Vec::new();
        let mut diff_label_dist = Vec::new();
        for i in 0..100 {
            for j in (i + 1)..100 {
                let a = &instances[i];
                let b = &instances[j];
                let dist = a.context().squared_distance(b.context()).unwrap();
                if a.labels() == b.labels() {
                    same_label_dist.push(dist);
                } else {
                    diff_label_dist.push(dist);
                }
            }
        }
        assert!(
            p2b_linalg::mean(&same_label_dist) < p2b_linalg::mean(&diff_label_dist),
            "clustered structure is missing"
        );
    }

    #[test]
    fn mediamill_and_textmining_presets_match_paper_dimensions() {
        let mut rng = StdRng::seed_from_u64(4);
        let mm = MultiLabelDataset::mediamill_like(300, &mut rng).unwrap();
        assert_eq!(mm.context_dimension(), 20);
        assert_eq!(mm.num_labels(), 40);
        let tm = MultiLabelDataset::textmining_like(300, &mut rng).unwrap();
        assert_eq!(tm.context_dimension(), 20);
        assert_eq!(tm.num_labels(), 22);
    }

    #[test]
    fn agent_split_is_a_partition_without_replacement() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = MultiLabelDataset::generate(MultiLabelConfig::new(1000, 6, 5), &mut rng).unwrap();
        let agents = ds.split_agents(8, 100, &mut rng).unwrap();
        assert_eq!(agents.len(), 8);
        assert!(agents.iter().all(|a| a.len() == 100));
        // Count how many times each context appears across agents; with
        // sampling without replacement every sampled instance appears once.
        let total: usize = agents.iter().map(Vec::len).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn agent_split_validates_arguments() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = MultiLabelDataset::generate(MultiLabelConfig::new(50, 4, 3), &mut rng).unwrap();
        assert!(ds.split_agents(0, 10, &mut rng).is_err());
        assert!(ds.split_agents(10, 0, &mut rng).is_err());
        assert!(matches!(
            ds.split_agents(10, 10, &mut rng),
            Err(DatasetError::InsufficientData { .. })
        ));
    }
}
