//! Error type for the dataset substrate.

use std::error::Error;
use std::fmt;

/// Error returned by dataset generators and environments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// A request asked for more data than the dataset contains.
    InsufficientData {
        /// Number of samples requested.
        requested: usize,
        /// Number of samples available.
        available: usize,
    },
    /// An action index was outside the environment's action space.
    InvalidAction {
        /// Offending action index.
        action: usize,
        /// Number of actions in the environment.
        num_actions: usize,
    },
    /// An underlying numeric operation failed.
    Linalg(p2b_linalg::LinalgError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            DatasetError::InsufficientData {
                requested,
                available,
            } => write!(
                f,
                "insufficient data: {requested} samples requested, {available} available"
            ),
            DatasetError::InvalidAction {
                action,
                num_actions,
            } => write!(
                f,
                "action index {action} out of range for {num_actions} actions"
            ),
            DatasetError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<p2b_linalg::LinalgError> for DatasetError {
    fn from(e: p2b_linalg::LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::InsufficientData {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = DatasetError::InvalidAction {
            action: 50,
            num_actions: 40,
        };
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DatasetError>();
    }
}
