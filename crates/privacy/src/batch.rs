//! Per-batch amplification accounting for batched shuffler deployments.
//!
//! The paper's guarantee (Section 4) is stated for one reporting
//! opportunity under a *configured* crowd-blending threshold `l`. A batched
//! shuffler actually enforces thresholding batch by batch, and each released
//! batch achieves its own *empirical* crowd size — the smallest per-code
//! frequency among the reports it released, which is never below the
//! configured `l`. The [`AmplificationLedger`] records the `(ε, δ)` pair
//! achieved by every batch, keeping the amplification accounting explicit
//! per batch (in the spirit of the per-round accounting of Azize & Basu,
//! *Concentrated Differential Privacy for Bandits*) instead of quoting a
//! single whole-deployment bound.

use crate::{
    amplified_delta, amplified_epsilon, compare_composition, CompositionComparison, Participation,
    PrivacyError, PrivacyGuarantee,
};
use serde::{Deserialize, Serialize};

/// The amplification record of one released batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchAmplification {
    /// Zero-based index of the batch in delivery order.
    pub batch_index: u64,
    /// Number of reports the batch released after thresholding.
    pub released: usize,
    /// Empirical crowd size: the smallest per-code frequency among the
    /// released reports (0 for an empty batch).
    pub crowd_size: u64,
    /// The `(ε, δ)` guarantee of one reporting opportunity that landed in
    /// this batch.
    pub guarantee: PrivacyGuarantee,
}

/// Accumulates per-batch `(ε, δ)` amplification records for a batched
/// shuffler run.
///
/// ε is fixed by the participation probability (Equation 3 with ε̄ = 0 — the
/// encoder releases exact codes); δ varies per batch with the empirical
/// crowd size via the Gehrke et al. bound `δ = e^(−Ω·l·(1−p)²)`
/// ([`amplified_delta`]). An empty batch releases nothing and is recorded
/// with the perfect guarantee `(0, 0)`.
///
/// # Examples
///
/// ```
/// use p2b_privacy::{AmplificationLedger, Participation};
///
/// # fn main() -> Result<(), p2b_privacy::PrivacyError> {
/// let mut ledger = AmplificationLedger::new(Participation::new(0.5)?, 0.1)?;
/// ledger.record_batch(120, 10)?; // 120 released, smallest crowd 10
/// ledger.record_batch(48, 3)?;   // a sparser batch: weaker δ
/// let weakest = ledger.weakest().expect("two batches recorded");
/// assert_eq!(weakest.batch_index, 1);
/// assert!(weakest.guarantee.delta() > ledger.records()[0].guarantee.delta());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmplificationLedger {
    participation: Participation,
    omega: f64,
    epsilon: f64,
    records: Vec<BatchAmplification>,
}

impl AmplificationLedger {
    /// Creates an empty ledger for the given participation probability and
    /// δ-bound constant Ω.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `omega` is not a
    /// finite positive number.
    pub fn new(participation: Participation, omega: f64) -> Result<Self, PrivacyError> {
        if !omega.is_finite() || omega <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "omega",
                message: format!("must be a finite positive number, got {omega}"),
            });
        }
        let epsilon = amplified_epsilon(participation, 0.0)?;
        Ok(Self {
            participation,
            omega,
            epsilon,
            records: Vec::new(),
        })
    }

    /// The per-report ε shared by every non-empty batch (Equation 3).
    #[must_use]
    pub fn per_report_epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The participation probability the ledger accounts under.
    #[must_use]
    pub fn participation(&self) -> Participation {
        self.participation
    }

    /// Records one released batch and returns its amplification record.
    ///
    /// `crowd_size` is the batch's empirical crowd-blending parameter: the
    /// smallest per-code frequency among the released reports. Pass 0 for a
    /// batch that released nothing; it is recorded with the perfect
    /// guarantee `(0, 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `released > 0` but
    /// `crowd_size == 0`, which would claim released data with no crowd.
    pub fn record_batch(
        &mut self,
        released: usize,
        crowd_size: u64,
    ) -> Result<BatchAmplification, PrivacyError> {
        if released > 0 && crowd_size == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "crowd_size",
                message: format!("must be at least 1 for a batch releasing {released} reports"),
            });
        }
        let guarantee = if released == 0 {
            PrivacyGuarantee::new(0.0, 0.0)?
        } else {
            let delta = amplified_delta(self.participation, crowd_size, self.omega)?;
            PrivacyGuarantee::new(self.epsilon, delta)?
        };
        let record = BatchAmplification {
            batch_index: self.records.len() as u64,
            released,
            crowd_size,
            guarantee,
        };
        self.records.push(record);
        Ok(record)
    }

    /// All per-batch records, in delivery order.
    #[must_use]
    pub fn records(&self) -> &[BatchAmplification] {
        &self.records
    }

    /// The weakest recorded batch: the one with the largest δ (ε is shared),
    /// i.e. the smallest non-zero crowd. `None` if no non-empty batch was
    /// recorded.
    #[must_use]
    pub fn weakest(&self) -> Option<&BatchAmplification> {
        self.records
            .iter()
            .filter(|r| r.released > 0)
            .max_by(|a, b| a.guarantee.delta().total_cmp(&b.guarantee.delta()))
    }

    /// Total reports released across every recorded batch.
    #[must_use]
    pub fn total_released(&self) -> usize {
        self.records.iter().map(|r| r.released).sum()
    }

    /// The guarantee for an agent whose reports landed in `batches` distinct
    /// recorded batches, by sequential composition of the weakest batch
    /// guarantee — a conservative `(kε, kδ_max)` bound.
    #[must_use]
    pub fn composed_over(&self, batches: u32) -> Option<PrivacyGuarantee> {
        self.weakest().map(|w| w.guarantee.compose_n(batches))
    }

    /// Routes the ledger's weakest batch guarantee through the
    /// [`crate::ZcdpAccountant`]: composes `batches` copies of it in ρ-zCDP
    /// and reports the resulting ε at `target_delta` side by side with the
    /// pure sequential-composition ε from [`AmplificationLedger::composed_over`].
    /// Over long horizons the zCDP ε grows as `O(√k)` instead of `O(k)` and
    /// is strictly tighter. `None` if no non-empty batch was recorded.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for a zero horizon or a
    /// `target_delta` outside `(0, 1)`.
    pub fn zcdp_composed_over(
        &self,
        batches: u32,
        target_delta: f64,
    ) -> Result<Option<CompositionComparison>, PrivacyError> {
        match self.weakest() {
            Some(w) => compare_composition(w.guarantee, batches, target_delta).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> AmplificationLedger {
        AmplificationLedger::new(Participation::new(0.5).unwrap(), 0.1).unwrap()
    }

    #[test]
    fn construction_validates_omega() {
        let p = Participation::new(0.5).unwrap();
        assert!(AmplificationLedger::new(p, 0.0).is_err());
        assert!(AmplificationLedger::new(p, -1.0).is_err());
        assert!(AmplificationLedger::new(p, f64::NAN).is_err());
        assert!(AmplificationLedger::new(p, 0.1).is_ok());
    }

    #[test]
    fn epsilon_matches_equation_three() {
        assert!((ledger().per_report_epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn records_match_the_closed_form_bounds() {
        let mut ledger = ledger();
        let record = ledger.record_batch(100, 10).unwrap();
        assert_eq!(record.batch_index, 0);
        assert_eq!(record.released, 100);
        assert_eq!(record.crowd_size, 10);
        let expected_delta = amplified_delta(Participation::new(0.5).unwrap(), 10, 0.1).unwrap();
        assert_eq!(record.guarantee.delta().to_bits(), expected_delta.to_bits());
        assert_eq!(
            record.guarantee.epsilon().to_bits(),
            std::f64::consts::LN_2.to_bits()
        );
    }

    #[test]
    fn empty_batches_are_perfectly_private() {
        let mut ledger = ledger();
        let record = ledger.record_batch(0, 0).unwrap();
        assert_eq!(record.guarantee.epsilon(), 0.0);
        assert_eq!(record.guarantee.delta(), 0.0);
        // And they never count as the weakest batch.
        assert!(ledger.weakest().is_none());
    }

    #[test]
    fn released_reports_require_a_crowd() {
        assert!(ledger().record_batch(5, 0).is_err());
    }

    #[test]
    fn weakest_is_the_smallest_crowd() {
        let mut ledger = ledger();
        ledger.record_batch(100, 12).unwrap();
        ledger.record_batch(50, 3).unwrap();
        ledger.record_batch(80, 7).unwrap();
        let weakest = ledger.weakest().unwrap();
        assert_eq!(weakest.batch_index, 1);
        assert_eq!(weakest.crowd_size, 3);
        assert_eq!(ledger.total_released(), 230);
        assert_eq!(ledger.records().len(), 3);
    }

    #[test]
    fn weakest_is_total_ordered_under_ties() {
        // `total_cmp` makes the selection a total order: equal-δ batches
        // cannot panic the comparator (the old `partial_cmp(...).expect`
        // path), and the scan keeps the last maximum deterministically.
        let mut ledger = ledger();
        ledger.record_batch(10, 4).unwrap();
        ledger.record_batch(20, 4).unwrap();
        ledger.record_batch(30, 9).unwrap();
        let weakest = ledger.weakest().unwrap();
        assert_eq!(weakest.crowd_size, 4);
        assert_eq!(weakest.batch_index, 1, "ties keep the last maximum");
    }

    #[test]
    fn composition_over_batches_uses_the_weakest_record() {
        let mut ledger = ledger();
        ledger.record_batch(100, 10).unwrap();
        ledger.record_batch(100, 5).unwrap();
        let composed = ledger.composed_over(3).unwrap();
        let weakest = ledger.weakest().unwrap().guarantee;
        assert!((composed.epsilon() - 3.0 * weakest.epsilon()).abs() < 1e-12);
        assert!((composed.delta() - (3.0 * weakest.delta()).min(1.0)).abs() < 1e-12);
    }

    #[test]
    fn zcdp_route_tightens_long_horizons_and_matches_pure_route_inputs() {
        let mut ledger = ledger();
        ledger.record_batch(100, 10).unwrap();
        let cmp = ledger.zcdp_composed_over(10_000, 1e-6).unwrap().unwrap();
        let pure = ledger.composed_over(10_000).unwrap();
        assert_eq!(cmp.pure_epsilon.to_bits(), pure.epsilon().to_bits());
        assert!(
            cmp.zcdp_epsilon < cmp.pure_epsilon,
            "zCDP ε {} must be strictly tighter than pure ε {} at horizon 10^4",
            cmp.zcdp_epsilon,
            cmp.pure_epsilon
        );
        assert!(ledger.zcdp_composed_over(0, 1e-6).is_err());
        assert!(
            AmplificationLedger::new(Participation::new(0.5).unwrap(), 0.1)
                .unwrap()
                .zcdp_composed_over(5, 1e-6)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn empty_ledger_has_no_weakest_or_composition() {
        let ledger = ledger();
        assert!(ledger.weakest().is_none());
        assert!(ledger.composed_over(2).is_none());
        assert_eq!(ledger.total_released(), 0);
    }
}
